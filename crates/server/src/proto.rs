//! Wire protocol for the GKBMS service.
//!
//! # Frame layout
//!
//! Every message — request or response — travels as one *frame* with
//! exactly the layout of a [`storage::record`] record:
//!
//! ```text
//! +---------------+----------------+---------------------+
//! | len: u32 (LE) | crc32: u32(LE) | payload: len * u8   |
//! +---------------+----------------+---------------------+
//! ```
//!
//! `len` is the payload length (capped at
//! [`storage::record::MAX_RECORD_LEN`], 16 MiB); `crc32` is the IEEE
//! CRC-32 of the payload. Frames are written with
//! [`storage::record::write_record`] so the service speaks the same
//! hand-rolled record dialect as the persistence layer — a corrupted
//! or truncated frame is detected exactly like a torn log record.
//!
//! # Payload layout
//!
//! The payload is encoded with [`storage::record::codec`] primitives
//! (little-endian integers, `u32`-length-prefixed UTF-8 strings). The
//! first field is always a `u32` *opcode*; the remaining fields depend
//! on the opcode:
//!
//! ```text
//! request  := op:u32 fields*
//! response := op:u32 fields*
//! ```
//!
//! ## Request opcodes
//!
//! | op | name                 | fields after the opcode                    |
//! |----|----------------------|--------------------------------------------|
//! |  1 | `Hello`              | —                                          |
//! |  2 | `Bye`                | `session:u64`                              |
//! |  3 | `Refresh`            | `session:u64`                              |
//! |  4 | `Ping`               | —                                          |
//! |  5 | `Tell`               | `session:u64 src:str`                      |
//! |  6 | `Untell`             | `session:u64 name:str`                     |
//! |  7 | `Ask`                | `session:u64 var:str class:str expr:str`   |
//! |  8 | `Holds`              | `session:u64 expr:str`                     |
//! |  9 | `Show`               | `session:u64 name:str`                     |
//! | 10 | `ApplicableDecisions`| `session:u64 object:str`                   |
//! | 11 | `Execute`            | `session:u64` + decision request (below)   |
//! | 12 | `RetractDecision`    | `session:u64 name:str`                     |
//! | 13 | `History`            | `session:u64`                              |
//! | 14 | `ObjectHistory`      | `session:u64 object:str`                   |
//! | 15 | `SessionStats`       | `session:u64`                              |
//! | 16 | `Save`               | `session:u64 path:str`                     |
//! | 17 | `Load`               | `session:u64 path:str`                     |
//! | 18 | `Shutdown`           | `session:u64`                              |
//! | 19 | `Sleep`              | `session:u64 millis:u64` (diagnostic)      |
//! | 20 | `RegisterObject`     | `session:u64 name:str class:str source:str`|
//! | 21 | `Status`             | `session:u64`                              |
//! | 22 | `Metrics`            | —                                          |
//! | 23 | `Checkpoint`         | `session:u64`                              |
//! | 24 | `Lint`               | `session:u64 src:str`                      |
//! | 25 | `Replicate`          | `applied_seq:u64 epoch:u64`                |
//! | 26 | `Promote`            | `session:u64`                              |
//! | 27 | `ReplStatus`         | —                                          |
//! | 28 | `RegisterView`       | `session:u64 name:str rules:str`           |
//! | 29 | `ViewAsk`            | `session:u64 name:str pred:str`            |
//! | 30 | `Recall`             | `session:u64 name:str limit:u32`           |
//! | 31 | `Explain`            | `session:u64 src:str`                      |
//!
//! `Replicate` is the subscription handshake of the replication
//! subsystem: a follower (or any tailer) announces the last op
//! sequence it has applied and its sequence epoch. The leader answers
//! either with an `Error` (e.g. [`ErrorCode::Fenced`] when the
//! subscriber's epoch is newer than the leader's own) or by taking the
//! connection over as a *push stream* of `replication::ReplMsg`
//! frames — snapshot transfer if the subscriber is behind the
//! checkpoint horizon, then the WAL tail, then live group commits.
//! Those stream frames use opcodes at or above
//! `replication::msg::MSG_BASE` (100) so they can never be confused
//! with the `Response` opcodes below.
//!
//! The `Execute` decision request is encoded as:
//!
//! ```text
//! class:str name:str performer:str
//! has_tool:u32 [tool:str]
//! n_inputs:u32 input:str*
//! n_outputs:u32 (name:str class:str)*
//! n_discharges:u32 (kind:u32 obligation:str [by:str])*   // kind 0=Formal, 1=Signature
//! ```
//!
//! ## Response opcodes
//!
//! | op | name          | fields after the opcode                          |
//! |----|---------------|--------------------------------------------------|
//! |  1 | `Welcome`     | `session:u64 watermark:i64`                      |
//! |  2 | `Done`        | `text:str`                                       |
//! |  3 | `Names`       | `probes:u64 scanned:u64 n:u32 name:str*`         |
//! |  4 | `Truth`       | `value:u32` (0 = false, 1 = true)                |
//! |  5 | `Table`       | `text:str` (rendered table / frame text)         |
//! |  6 | `SessionInfo` | `session:u64 watermark:i64 kb_now:i64 requests:u64 believed:u64 probes:u64 scanned:u64` |
//! |  7 | `Error`       | `code:u32 message:str`                           |
//! |  8 | `Metrics`     | `text:str` (Prometheus text exposition)          |
//! |  9 | `Diagnostics` | `n:u32` + diagnostic* (below)                    |
//! | 10 | `Redirect`    | `leader:str`                                     |
//! | 11 | `Stale`       | `applied_seq:u64 lag:u64 inner:bytes`            |
//! | 12 | `ReplInfo`    | `is_leader:u32 leader:str applied_seq:u64 leader_seq:u64 epoch:u64 connected:u32` |
//! | 13 | `RecallHits`  | `n:u32 (decision:str score_bits:u64 retracted:u32)*` |
//!
//! `Redirect` answers writes sent to a read replica: the payload
//! names the leader's address so the client can fail fast and retry
//! there. `Stale` wraps every *read* served by a follower: it carries
//! the follower's applied sequence, its lag behind the leader in ops,
//! and the ordinary encoded response as a nested payload — bounded
//! staleness is surfaced on every reply rather than discovered by
//! side-channel.
//!
//! Each `Diagnostics` entry is encoded as:
//!
//! ```text
//! severity:u32 (0 = warning, 1 = error)
//! code:str subject:str message:str
//! has_witness:u32 [witness:str]
//! has_line:u32 [line:u64]
//! ```
//!
//! `Names.probes`/`Names.scanned` carry the deductive [`EvalStats`]
//! counters for `Ask` answers and are zero for other `Names` replies
//! (e.g. retraction cascades).
//!
//! # Sessions and snapshot isolation
//!
//! `Hello` opens a session and pins its *watermark* — the knowledge
//! base's belief-time clock at that instant. Every read the session
//! performs afterwards (`Ask`, `Holds`, `History`, …) is evaluated
//! against a [`telos::Snapshot`] at that watermark: the session sees a
//! consistent state of belief, unaffected by concurrent writers,
//! because the knowledge base never destroys propositions — an
//! `UNTELL` merely closes a belief interval, and writers tick the
//! clock *before* mutating, so everything they add starts strictly
//! after every pinned watermark. `Refresh` re-pins the watermark to
//! "now"; sessions that write typically refresh to observe their own
//! writes. `Show` is the one deliberate exception: it renders the
//! *current* object frame (its purpose is inspection, not repeatable
//! reads).
//!
//! # Errors and backpressure
//!
//! Work-carrying requests pass through a bounded admission gate; when
//! the server is saturated it answers [`ErrorCode::Overloaded`]
//! without touching the knowledge base, and the client is expected to
//! back off and retry. Control requests (`Hello`, `Bye`, `Ping`,
//! `Shutdown`) bypass the gate so a saturated server can still be
//! inspected and stopped. After shutdown begins, in-flight requests
//! drain normally and subsequent ones get [`ErrorCode::ShuttingDown`].
//! `Metrics` is also a control request: a saturated server must still
//! be scrapable, otherwise the one moment observability matters most
//! is the one moment it goes dark.

use std::io::{self, Read, Write};
use storage::record::{self, codec};

/// Discharge of a dependency obligation, mirroring
/// [`gkbms::system::Discharge`] on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireDischarge {
    /// Formally verified discharge.
    Formal {
        /// Name of the obligation object being discharged.
        obligation: String,
    },
    /// Discharge by a signed-off decision.
    Signature {
        /// Name of the obligation object being discharged.
        obligation: String,
        /// Name of the agent signing off.
        by: String,
    },
}

/// A decision execution request, mirroring [`gkbms::system::DecisionRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDecision {
    /// Decision class to instantiate.
    pub class: String,
    /// Name of the new decision object.
    pub name: String,
    /// Performing agent.
    pub performer: String,
    /// Optional tool used.
    pub tool: Option<String>,
    /// Input design objects.
    pub inputs: Vec<String>,
    /// Output design objects as `(name, class)`.
    pub outputs: Vec<(String, String)>,
    /// Obligations discharged by this decision.
    pub discharges: Vec<WireDischarge>,
}

/// One diagnostic from the rule-base static analyzer, mirroring
/// [`analysis::Diagnostic`] on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDiagnostic {
    /// True for an error, false for a warning.
    pub is_error: bool,
    /// Stable diagnostic code (`CB001`, `CB002`, …).
    pub code: String,
    /// What the diagnostic is about (a rule, a frame section, …).
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
    /// Optional witness (offending variable, cycle path, …).
    pub witness: Option<String>,
    /// Optional 1-based line in the submitted source.
    pub line: Option<u64>,
}

impl WireDiagnostic {
    /// Converts an analyzer diagnostic into its wire form.
    pub fn from_diagnostic(d: &analysis::Diagnostic) -> WireDiagnostic {
        WireDiagnostic {
            is_error: d.severity == analysis::Severity::Error,
            code: d.code.to_string(),
            subject: d.subject.clone(),
            message: d.message.clone(),
            witness: (!d.witness.is_empty()).then(|| d.witness.clone()),
            line: d.line.map(|l| l as u64),
        }
    }

    /// Compact single-line rendering, matching
    /// [`analysis::Diagnostic::one_line`].
    pub fn one_line(&self) -> String {
        let sev = if self.is_error { "error" } else { "warning" };
        let mut s = format!("{sev}[{}] {}: {}", self.code, self.subject, self.message);
        if let Some(w) = &self.witness {
            s.push_str(&format!(" (witness: {w})"));
        }
        s
    }
}

/// A client-to-server request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Open a session; the reply pins the snapshot watermark.
    Hello,
    /// Close a session.
    Bye {
        /// Session to close.
        session: u64,
    },
    /// Re-pin the session watermark to the current belief time.
    Refresh {
        /// Session to refresh.
        session: u64,
    },
    /// Liveness probe; bypasses admission control.
    Ping,
    /// TELL one or more objects in objectbase concrete syntax.
    Tell {
        /// Issuing session.
        session: u64,
        /// Source text (`tell … end`, possibly several frames).
        src: String,
    },
    /// UNTELL an object by name.
    Untell {
        /// Issuing session.
        session: u64,
        /// Object to untell.
        name: String,
    },
    /// Deductive query: instances of `class` satisfying `expr`.
    Ask {
        /// Issuing session (answers are snapshot-pinned).
        session: u64,
        /// Query variable name.
        var: String,
        /// Class the variable ranges over.
        class: String,
        /// Assertion-language body.
        expr: String,
    },
    /// Evaluate a closed assertion against the session snapshot.
    Holds {
        /// Issuing session.
        session: u64,
        /// Assertion-language expression.
        expr: String,
    },
    /// Render the *current* frame of an object (not snapshot-pinned).
    Show {
        /// Issuing session.
        session: u64,
        /// Object to show.
        name: String,
    },
    /// Decision classes applicable to a design object.
    ApplicableDecisions {
        /// Issuing session.
        session: u64,
        /// Design object name.
        object: String,
    },
    /// Execute a design decision.
    Execute {
        /// Issuing session.
        session: u64,
        /// The decision to perform.
        decision: WireDecision,
    },
    /// Retract a decision and its dependents.
    RetractDecision {
        /// Issuing session.
        session: u64,
        /// Decision object to retract.
        name: String,
    },
    /// The process view: all decisions in causal order.
    History {
        /// Issuing session.
        session: u64,
    },
    /// Belief-time history of one object.
    ObjectHistory {
        /// Issuing session.
        session: u64,
        /// Object to trace.
        object: String,
    },
    /// Per-session statistics (watermark, counters, last ASK stats).
    SessionStats {
        /// Session to inspect.
        session: u64,
    },
    /// Persist the knowledge base to a server-side path.
    Save {
        /// Issuing session.
        session: u64,
        /// Server-side file path.
        path: String,
    },
    /// Replace the knowledge base from a server-side path.
    Load {
        /// Issuing session.
        session: u64,
        /// Server-side file path.
        path: String,
    },
    /// Begin graceful shutdown; bypasses admission control.
    Shutdown {
        /// Issuing session.
        session: u64,
    },
    /// Diagnostic: hold an admission slot for `millis` ms. Used by
    /// the backpressure and drain tests to create deterministic load.
    Sleep {
        /// Issuing session.
        session: u64,
        /// How long to hold the slot.
        millis: u64,
    },
    /// Register a design object (name, class, source text).
    RegisterObject {
        /// Issuing session.
        session: u64,
        /// New object name.
        name: String,
        /// Object class.
        class: String,
        /// Source/document text.
        source: String,
    },
    /// The status view of all design objects.
    Status {
        /// Issuing session.
        session: u64,
    },
    /// Scrape the server's metrics registry (Prometheus text format).
    /// Sessionless and admission-exempt, like `Ping`.
    Metrics,
    /// Compact the server's journal: write a crash-atomic snapshot and
    /// truncate the WAL. Rejected if the server runs without a journal.
    Checkpoint {
        /// Issuing session.
        session: u64,
    },
    /// Statically analyze source text against the live knowledge base
    /// without admitting it. Always answers [`Response::Diagnostics`];
    /// a clean bill of health is an empty list.
    Lint {
        /// Issuing session.
        session: u64,
        /// Source text to analyze (CML frames or a datalog program).
        src: String,
    },
    /// Subscribe to the leader's committed record stream. Sessionless;
    /// on success the connection becomes a push stream of
    /// `replication::ReplMsg` frames and never carries requests again.
    Replicate {
        /// Last op sequence the subscriber has applied (0 = nothing).
        applied_seq: u64,
        /// The subscriber's sequence epoch; the leader fences
        /// subscribers from a *newer* epoch (they outrank it).
        epoch: u64,
    },
    /// Seal the follower's log and make it writable: bumps the
    /// sequence epoch, journals a durable seal record, and stops the
    /// apply loop. Records framed with the old epoch are refused from
    /// here on. Rejected on a server that is already the leader.
    Promote {
        /// Issuing session.
        session: u64,
    },
    /// Inspect the server's replication role and positions.
    /// Sessionless and admission-exempt, like `Metrics`.
    ReplStatus,
    /// Register a materialized deductive view: the base closure rules
    /// plus optional user rules, built once and maintained
    /// incrementally under every subsequent TELL/UNTELL.
    RegisterView {
        /// Issuing session.
        session: u64,
        /// View name (unique per knowledge base).
        name: String,
        /// Extra datalog rules layered over the base program (may be
        /// empty).
        rules: String,
    },
    /// Read one predicate of a registered view. Snapshot-pinned: a
    /// session whose watermark predates the view's last refresh gets
    /// answers evaluated at its own watermark, never the newer model.
    ViewAsk {
        /// Issuing session.
        session: u64,
        /// The registered view to read.
        name: String,
        /// Predicate whose tuples are wanted (e.g. `inT`).
        pred: String,
    },
    /// Structure-similarity recall: which past decisions looked like
    /// the named one? Answers [`Response::RecallHits`], best first;
    /// retracted precedents are included and flagged.
    Recall {
        /// Issuing session.
        session: u64,
        /// The probe decision's instance name.
        name: String,
        /// Maximum number of hits.
        limit: u32,
    },
    /// Render the deductive evaluator's join plan and cost estimate
    /// for the base program, the stored rules, and any extra rules in
    /// `src`, against the knowledge base's measured EDB cardinalities.
    /// Read-only; answers [`Response::Done`] with the rendered plan.
    Explain {
        /// Issuing session.
        session: u64,
        /// Extra datalog rules to cost alongside the stored rule base
        /// (may be empty).
        src: String,
    },
}

/// Typed error codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum ErrorCode {
    /// The admission gate is full; back off and retry.
    Overloaded = 1,
    /// The session id is unknown (never opened, or closed).
    UnknownSession = 2,
    /// The session exceeded its idle timeout and was reaped.
    SessionExpired = 3,
    /// The request frame could not be decoded.
    BadRequest = 4,
    /// The knowledge base rejected the operation (parse/eval error).
    Rejected = 5,
    /// The server is draining and no longer accepts work.
    ShuttingDown = 6,
    /// An internal I/O failure (e.g. during SAVE/LOAD).
    Internal = 7,
    /// The static analyzer rejected a TELL at admission time; the
    /// message carries the rendered diagnostics and nothing was
    /// admitted.
    LintRejected = 8,
    /// A follower refused a read because its lag behind the leader
    /// exceeded the configured bound.
    StaleRead = 9,
    /// Sequence-epoch fencing: the peer's epoch outranks this
    /// server's, so the request (or subscription) must be refused.
    Fenced = 10,
}

impl ErrorCode {
    fn from_u32(v: u32) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::UnknownSession,
            3 => ErrorCode::SessionExpired,
            4 => ErrorCode::BadRequest,
            5 => ErrorCode::Rejected,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::Internal,
            8 => ErrorCode::LintRejected,
            9 => ErrorCode::StaleRead,
            10 => ErrorCode::Fenced,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::UnknownSession => "unknown session",
            ErrorCode::SessionExpired => "session expired",
            ErrorCode::BadRequest => "bad request",
            ErrorCode::Rejected => "rejected",
            ErrorCode::ShuttingDown => "shutting down",
            ErrorCode::Internal => "internal error",
            ErrorCode::LintRejected => "rejected by lint",
            ErrorCode::StaleRead => "stale read",
            ErrorCode::Fenced => "fenced",
        };
        f.write_str(s)
    }
}

/// One hit of a structure-similarity recall answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRecallHit {
    /// The matching decision's instance name.
    pub decision: String,
    /// Similarity score as raw `f64` bits (kept as bits so responses
    /// stay `Eq`; decode with [`WireRecallHit::score`]).
    pub score_bits: u64,
    /// True if the precedent was later retracted.
    pub retracted: bool,
}

impl WireRecallHit {
    /// The similarity score in `(0, 1]`.
    pub fn score(&self) -> f64 {
        f64::from_bits(self.score_bits)
    }
}

/// A server-to-client response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Session opened.
    Welcome {
        /// The new session id.
        session: u64,
        /// Belief-time watermark pinned for the session.
        watermark: i64,
    },
    /// Generic success with human-readable detail.
    Done {
        /// What happened.
        text: String,
    },
    /// A list of names (ASK answers, retraction cascades, …).
    Names {
        /// Deductive index probes (ASK only; 0 otherwise).
        probes: u64,
        /// Tuples scanned during evaluation (ASK only; 0 otherwise).
        scanned: u64,
        /// The names.
        names: Vec<String>,
    },
    /// A boolean verdict (HOLDS).
    Truth {
        /// The verdict.
        value: bool,
    },
    /// Rendered tabular or frame text.
    Table {
        /// The rendered text.
        text: String,
    },
    /// Per-session statistics.
    SessionInfo {
        /// Session id.
        session: u64,
        /// Pinned belief-time watermark.
        watermark: i64,
        /// The knowledge base's current belief time.
        kb_now: i64,
        /// Requests served for this session.
        requests: u64,
        /// Propositions believed at the watermark.
        believed: u64,
        /// Index probes of the session's last ASK.
        probes: u64,
        /// Tuples scanned by the session's last ASK.
        scanned: u64,
    },
    /// A typed failure.
    Error {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Metrics scrape result (Prometheus text exposition format).
    Metrics {
        /// The rendered exposition text.
        text: String,
    },
    /// The static analyzer's verdict on a `Lint` request (empty when
    /// the source is clean).
    Diagnostics {
        /// The diagnostics, errors first.
        diags: Vec<WireDiagnostic>,
    },
    /// A write reached a read replica; retry against the leader.
    Redirect {
        /// The leader's address, as configured on the follower.
        leader: String,
    },
    /// A read served by a follower, wrapped with its staleness. The
    /// inner payload is an ordinary encoded [`Response`].
    Stale {
        /// The follower's applied op sequence at answer time.
        applied_seq: u64,
        /// How many committed leader ops the follower still lacks.
        lag: u64,
        /// The encoded inner response.
        inner: Vec<u8>,
    },
    /// The server's replication role and stream positions.
    ReplInfo {
        /// True on the leader (or a promoted follower).
        is_leader: bool,
        /// The leader address a follower ships from (empty on the
        /// leader itself).
        leader: String,
        /// Ops applied locally.
        applied_seq: u64,
        /// The leader's committed sequence as last observed.
        leader_seq: u64,
        /// The server's sequence epoch.
        epoch: u64,
        /// True while a follower's subscription is live.
        connected: bool,
    },
    /// Answer to a structure-similarity recall, best hit first.
    RecallHits {
        /// The scored hits.
        hits: Vec<WireRecallHit>,
    },
}

const REQ_HELLO: u32 = 1;
const REQ_BYE: u32 = 2;
const REQ_REFRESH: u32 = 3;
const REQ_PING: u32 = 4;
const REQ_TELL: u32 = 5;
const REQ_UNTELL: u32 = 6;
const REQ_ASK: u32 = 7;
const REQ_HOLDS: u32 = 8;
const REQ_SHOW: u32 = 9;
const REQ_APPLICABLE: u32 = 10;
const REQ_EXECUTE: u32 = 11;
const REQ_RETRACT: u32 = 12;
const REQ_HISTORY: u32 = 13;
const REQ_OBJECT_HISTORY: u32 = 14;
const REQ_SESSION_STATS: u32 = 15;
const REQ_SAVE: u32 = 16;
const REQ_LOAD: u32 = 17;
const REQ_SHUTDOWN: u32 = 18;
const REQ_SLEEP: u32 = 19;
const REQ_REGISTER: u32 = 20;
const REQ_STATUS: u32 = 21;
const REQ_METRICS: u32 = 22;
const REQ_CHECKPOINT: u32 = 23;
const REQ_LINT: u32 = 24;
const REQ_REPLICATE: u32 = 25;
const REQ_PROMOTE: u32 = 26;
const REQ_REPL_STATUS: u32 = 27;
const REQ_REGISTER_VIEW: u32 = 28;
const REQ_VIEW_ASK: u32 = 29;
const REQ_RECALL: u32 = 30;
const REQ_EXPLAIN: u32 = 31;

const RESP_WELCOME: u32 = 1;
const RESP_DONE: u32 = 2;
const RESP_NAMES: u32 = 3;
const RESP_TRUTH: u32 = 4;
const RESP_TABLE: u32 = 5;
const RESP_SESSION_INFO: u32 = 6;
const RESP_ERROR: u32 = 7;
const RESP_METRICS: u32 = 8;
const RESP_DIAGNOSTICS: u32 = 9;
const RESP_REDIRECT: u32 = 10;
const RESP_STALE: u32 = 11;
const RESP_REPL_INFO: u32 = 12;
const RESP_RECALL_HITS: u32 = 13;

/// Decode failure: the payload did not parse as a valid message.
#[derive(Debug)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

impl From<storage::StorageError> for DecodeError {
    fn from(e: storage::StorageError) -> Self {
        DecodeError(e.to_string())
    }
}

type Decode<T> = Result<T, DecodeError>;

fn encode_decision(out: &mut Vec<u8>, d: &WireDecision) {
    codec::put_str(out, &d.class);
    codec::put_str(out, &d.name);
    codec::put_str(out, &d.performer);
    match &d.tool {
        Some(t) => {
            codec::put_u32(out, 1);
            codec::put_str(out, t);
        }
        None => codec::put_u32(out, 0),
    }
    codec::put_u32(out, d.inputs.len() as u32);
    for i in &d.inputs {
        codec::put_str(out, i);
    }
    codec::put_u32(out, d.outputs.len() as u32);
    for (n, c) in &d.outputs {
        codec::put_str(out, n);
        codec::put_str(out, c);
    }
    codec::put_u32(out, d.discharges.len() as u32);
    for dis in &d.discharges {
        match dis {
            WireDischarge::Formal { obligation } => {
                codec::put_u32(out, 0);
                codec::put_str(out, obligation);
            }
            WireDischarge::Signature { obligation, by } => {
                codec::put_u32(out, 1);
                codec::put_str(out, obligation);
                codec::put_str(out, by);
            }
        }
    }
}

fn decode_decision(c: &mut codec::Cursor<'_>) -> Decode<WireDecision> {
    let class = c.get_str()?.to_string();
    let name = c.get_str()?.to_string();
    let performer = c.get_str()?.to_string();
    let tool = if c.get_u32()? != 0 {
        Some(c.get_str()?.to_string())
    } else {
        None
    };
    let n_in = c.get_u32()? as usize;
    let mut inputs = Vec::with_capacity(n_in.min(1024));
    for _ in 0..n_in {
        inputs.push(c.get_str()?.to_string());
    }
    let n_out = c.get_u32()? as usize;
    let mut outputs = Vec::with_capacity(n_out.min(1024));
    for _ in 0..n_out {
        let n = c.get_str()?.to_string();
        let cl = c.get_str()?.to_string();
        outputs.push((n, cl));
    }
    let n_dis = c.get_u32()? as usize;
    let mut discharges = Vec::with_capacity(n_dis.min(1024));
    for _ in 0..n_dis {
        let kind = c.get_u32()?;
        let obligation = c.get_str()?.to_string();
        discharges.push(match kind {
            0 => WireDischarge::Formal { obligation },
            1 => WireDischarge::Signature {
                obligation,
                by: c.get_str()?.to_string(),
            },
            k => return Err(DecodeError(format!("unknown discharge kind {k}"))),
        });
    }
    Ok(WireDecision {
        class,
        name,
        performer,
        tool,
        inputs,
        outputs,
        discharges,
    })
}

fn encode_diagnostic(out: &mut Vec<u8>, d: &WireDiagnostic) {
    codec::put_u32(out, u32::from(d.is_error));
    codec::put_str(out, &d.code);
    codec::put_str(out, &d.subject);
    codec::put_str(out, &d.message);
    match &d.witness {
        Some(w) => {
            codec::put_u32(out, 1);
            codec::put_str(out, w);
        }
        None => codec::put_u32(out, 0),
    }
    match d.line {
        Some(l) => {
            codec::put_u32(out, 1);
            codec::put_u64(out, l);
        }
        None => codec::put_u32(out, 0),
    }
}

fn decode_diagnostic(c: &mut codec::Cursor<'_>) -> Decode<WireDiagnostic> {
    let is_error = c.get_u32()? != 0;
    let code = c.get_str()?.to_string();
    let subject = c.get_str()?.to_string();
    let message = c.get_str()?.to_string();
    let witness = if c.get_u32()? != 0 {
        Some(c.get_str()?.to_string())
    } else {
        None
    };
    let line = if c.get_u32()? != 0 {
        Some(c.get_u64()?)
    } else {
        None
    };
    Ok(WireDiagnostic {
        is_error,
        code,
        subject,
        message,
        witness,
        line,
    })
}

impl Request {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Hello => codec::put_u32(&mut out, REQ_HELLO),
            Request::Bye { session } => {
                codec::put_u32(&mut out, REQ_BYE);
                codec::put_u64(&mut out, *session);
            }
            Request::Refresh { session } => {
                codec::put_u32(&mut out, REQ_REFRESH);
                codec::put_u64(&mut out, *session);
            }
            Request::Ping => codec::put_u32(&mut out, REQ_PING),
            Request::Tell { session, src } => {
                codec::put_u32(&mut out, REQ_TELL);
                codec::put_u64(&mut out, *session);
                codec::put_str(&mut out, src);
            }
            Request::Untell { session, name } => {
                codec::put_u32(&mut out, REQ_UNTELL);
                codec::put_u64(&mut out, *session);
                codec::put_str(&mut out, name);
            }
            Request::Ask {
                session,
                var,
                class,
                expr,
            } => {
                codec::put_u32(&mut out, REQ_ASK);
                codec::put_u64(&mut out, *session);
                codec::put_str(&mut out, var);
                codec::put_str(&mut out, class);
                codec::put_str(&mut out, expr);
            }
            Request::Holds { session, expr } => {
                codec::put_u32(&mut out, REQ_HOLDS);
                codec::put_u64(&mut out, *session);
                codec::put_str(&mut out, expr);
            }
            Request::Show { session, name } => {
                codec::put_u32(&mut out, REQ_SHOW);
                codec::put_u64(&mut out, *session);
                codec::put_str(&mut out, name);
            }
            Request::ApplicableDecisions { session, object } => {
                codec::put_u32(&mut out, REQ_APPLICABLE);
                codec::put_u64(&mut out, *session);
                codec::put_str(&mut out, object);
            }
            Request::Execute { session, decision } => {
                codec::put_u32(&mut out, REQ_EXECUTE);
                codec::put_u64(&mut out, *session);
                encode_decision(&mut out, decision);
            }
            Request::RetractDecision { session, name } => {
                codec::put_u32(&mut out, REQ_RETRACT);
                codec::put_u64(&mut out, *session);
                codec::put_str(&mut out, name);
            }
            Request::History { session } => {
                codec::put_u32(&mut out, REQ_HISTORY);
                codec::put_u64(&mut out, *session);
            }
            Request::ObjectHistory { session, object } => {
                codec::put_u32(&mut out, REQ_OBJECT_HISTORY);
                codec::put_u64(&mut out, *session);
                codec::put_str(&mut out, object);
            }
            Request::SessionStats { session } => {
                codec::put_u32(&mut out, REQ_SESSION_STATS);
                codec::put_u64(&mut out, *session);
            }
            Request::Save { session, path } => {
                codec::put_u32(&mut out, REQ_SAVE);
                codec::put_u64(&mut out, *session);
                codec::put_str(&mut out, path);
            }
            Request::Load { session, path } => {
                codec::put_u32(&mut out, REQ_LOAD);
                codec::put_u64(&mut out, *session);
                codec::put_str(&mut out, path);
            }
            Request::Shutdown { session } => {
                codec::put_u32(&mut out, REQ_SHUTDOWN);
                codec::put_u64(&mut out, *session);
            }
            Request::Sleep { session, millis } => {
                codec::put_u32(&mut out, REQ_SLEEP);
                codec::put_u64(&mut out, *session);
                codec::put_u64(&mut out, *millis);
            }
            Request::RegisterObject {
                session,
                name,
                class,
                source,
            } => {
                codec::put_u32(&mut out, REQ_REGISTER);
                codec::put_u64(&mut out, *session);
                codec::put_str(&mut out, name);
                codec::put_str(&mut out, class);
                codec::put_str(&mut out, source);
            }
            Request::Status { session } => {
                codec::put_u32(&mut out, REQ_STATUS);
                codec::put_u64(&mut out, *session);
            }
            Request::Metrics => codec::put_u32(&mut out, REQ_METRICS),
            Request::Checkpoint { session } => {
                codec::put_u32(&mut out, REQ_CHECKPOINT);
                codec::put_u64(&mut out, *session);
            }
            Request::Lint { session, src } => {
                codec::put_u32(&mut out, REQ_LINT);
                codec::put_u64(&mut out, *session);
                codec::put_str(&mut out, src);
            }
            Request::Replicate { applied_seq, epoch } => {
                codec::put_u32(&mut out, REQ_REPLICATE);
                codec::put_u64(&mut out, *applied_seq);
                codec::put_u64(&mut out, *epoch);
            }
            Request::Promote { session } => {
                codec::put_u32(&mut out, REQ_PROMOTE);
                codec::put_u64(&mut out, *session);
            }
            Request::ReplStatus => codec::put_u32(&mut out, REQ_REPL_STATUS),
            Request::RegisterView {
                session,
                name,
                rules,
            } => {
                codec::put_u32(&mut out, REQ_REGISTER_VIEW);
                codec::put_u64(&mut out, *session);
                codec::put_str(&mut out, name);
                codec::put_str(&mut out, rules);
            }
            Request::ViewAsk {
                session,
                name,
                pred,
            } => {
                codec::put_u32(&mut out, REQ_VIEW_ASK);
                codec::put_u64(&mut out, *session);
                codec::put_str(&mut out, name);
                codec::put_str(&mut out, pred);
            }
            Request::Recall {
                session,
                name,
                limit,
            } => {
                codec::put_u32(&mut out, REQ_RECALL);
                codec::put_u64(&mut out, *session);
                codec::put_str(&mut out, name);
                codec::put_u32(&mut out, *limit);
            }
            Request::Explain { session, src } => {
                codec::put_u32(&mut out, REQ_EXPLAIN);
                codec::put_u64(&mut out, *session);
                codec::put_str(&mut out, src);
            }
        }
        out
    }

    /// Decodes a request from a frame payload.
    pub fn decode(payload: &[u8]) -> Decode<Request> {
        let mut c = codec::Cursor::new(payload);
        let op = c.get_u32()?;
        let req = match op {
            REQ_HELLO => Request::Hello,
            REQ_BYE => Request::Bye {
                session: c.get_u64()?,
            },
            REQ_REFRESH => Request::Refresh {
                session: c.get_u64()?,
            },
            REQ_PING => Request::Ping,
            REQ_TELL => Request::Tell {
                session: c.get_u64()?,
                src: c.get_str()?.to_string(),
            },
            REQ_UNTELL => Request::Untell {
                session: c.get_u64()?,
                name: c.get_str()?.to_string(),
            },
            REQ_ASK => Request::Ask {
                session: c.get_u64()?,
                var: c.get_str()?.to_string(),
                class: c.get_str()?.to_string(),
                expr: c.get_str()?.to_string(),
            },
            REQ_HOLDS => Request::Holds {
                session: c.get_u64()?,
                expr: c.get_str()?.to_string(),
            },
            REQ_SHOW => Request::Show {
                session: c.get_u64()?,
                name: c.get_str()?.to_string(),
            },
            REQ_APPLICABLE => Request::ApplicableDecisions {
                session: c.get_u64()?,
                object: c.get_str()?.to_string(),
            },
            REQ_EXECUTE => Request::Execute {
                session: c.get_u64()?,
                decision: decode_decision(&mut c)?,
            },
            REQ_RETRACT => Request::RetractDecision {
                session: c.get_u64()?,
                name: c.get_str()?.to_string(),
            },
            REQ_HISTORY => Request::History {
                session: c.get_u64()?,
            },
            REQ_OBJECT_HISTORY => Request::ObjectHistory {
                session: c.get_u64()?,
                object: c.get_str()?.to_string(),
            },
            REQ_SESSION_STATS => Request::SessionStats {
                session: c.get_u64()?,
            },
            REQ_SAVE => Request::Save {
                session: c.get_u64()?,
                path: c.get_str()?.to_string(),
            },
            REQ_LOAD => Request::Load {
                session: c.get_u64()?,
                path: c.get_str()?.to_string(),
            },
            REQ_SHUTDOWN => Request::Shutdown {
                session: c.get_u64()?,
            },
            REQ_SLEEP => Request::Sleep {
                session: c.get_u64()?,
                millis: c.get_u64()?,
            },
            REQ_REGISTER => Request::RegisterObject {
                session: c.get_u64()?,
                name: c.get_str()?.to_string(),
                class: c.get_str()?.to_string(),
                source: c.get_str()?.to_string(),
            },
            REQ_STATUS => Request::Status {
                session: c.get_u64()?,
            },
            REQ_METRICS => Request::Metrics,
            REQ_CHECKPOINT => Request::Checkpoint {
                session: c.get_u64()?,
            },
            REQ_LINT => Request::Lint {
                session: c.get_u64()?,
                src: c.get_str()?.to_string(),
            },
            REQ_REPLICATE => Request::Replicate {
                applied_seq: c.get_u64()?,
                epoch: c.get_u64()?,
            },
            REQ_PROMOTE => Request::Promote {
                session: c.get_u64()?,
            },
            REQ_REPL_STATUS => Request::ReplStatus,
            REQ_REGISTER_VIEW => Request::RegisterView {
                session: c.get_u64()?,
                name: c.get_str()?.to_string(),
                rules: c.get_str()?.to_string(),
            },
            REQ_VIEW_ASK => Request::ViewAsk {
                session: c.get_u64()?,
                name: c.get_str()?.to_string(),
                pred: c.get_str()?.to_string(),
            },
            REQ_RECALL => Request::Recall {
                session: c.get_u64()?,
                name: c.get_str()?.to_string(),
                limit: c.get_u32()?,
            },
            REQ_EXPLAIN => Request::Explain {
                session: c.get_u64()?,
                src: c.get_str()?.to_string(),
            },
            op => return Err(DecodeError(format!("unknown request opcode {op}"))),
        };
        if !c.is_exhausted() {
            return Err(DecodeError("trailing bytes after request".into()));
        }
        Ok(req)
    }

    /// Cheap peek used by the connection handler: decodes the payload
    /// only if it is a `Replicate` subscription, whose `(applied_seq,
    /// epoch)` it returns. A subscription takes the connection over as
    /// a push stream, so it is routed before ordinary dispatch.
    pub fn decode_replicate(payload: &[u8]) -> Option<(u64, u64)> {
        let mut c = codec::Cursor::new(payload);
        if c.get_u32().ok()? != REQ_REPLICATE {
            return None;
        }
        let applied_seq = c.get_u64().ok()?;
        let epoch = c.get_u64().ok()?;
        c.is_exhausted().then_some((applied_seq, epoch))
    }

    /// The session id this request claims, if any.
    pub fn session(&self) -> Option<u64> {
        match self {
            Request::Hello
            | Request::Ping
            | Request::Metrics
            | Request::Replicate { .. }
            | Request::ReplStatus => None,
            Request::Bye { session }
            | Request::Refresh { session }
            | Request::Tell { session, .. }
            | Request::Untell { session, .. }
            | Request::Ask { session, .. }
            | Request::Holds { session, .. }
            | Request::Show { session, .. }
            | Request::ApplicableDecisions { session, .. }
            | Request::Execute { session, .. }
            | Request::RetractDecision { session, .. }
            | Request::History { session }
            | Request::ObjectHistory { session, .. }
            | Request::SessionStats { session }
            | Request::Save { session, .. }
            | Request::Load { session, .. }
            | Request::Shutdown { session }
            | Request::Sleep { session, .. }
            | Request::RegisterObject { session, .. }
            | Request::Status { session }
            | Request::Checkpoint { session }
            | Request::Lint { session, .. }
            | Request::Promote { session }
            | Request::RegisterView { session, .. }
            | Request::ViewAsk { session, .. }
            | Request::Recall { session, .. }
            | Request::Explain { session, .. } => Some(*session),
        }
    }

    /// True for control requests that bypass the admission gate so a
    /// saturated or draining server can still be managed (and scraped).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Request::Hello
                | Request::Bye { .. }
                | Request::Ping
                | Request::Shutdown { .. }
                | Request::Metrics
                | Request::Replicate { .. }
                | Request::Promote { .. }
                | Request::ReplStatus
        )
    }

    /// Stable lower-case operation name, used as the `op` label of the
    /// server's per-request metrics.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Hello => "hello",
            Request::Bye { .. } => "bye",
            Request::Refresh { .. } => "refresh",
            Request::Ping => "ping",
            Request::Tell { .. } => "tell",
            Request::Untell { .. } => "untell",
            Request::Ask { .. } => "ask",
            Request::Holds { .. } => "holds",
            Request::Show { .. } => "show",
            Request::ApplicableDecisions { .. } => "applicable",
            Request::Execute { .. } => "execute",
            Request::RetractDecision { .. } => "retract",
            Request::History { .. } => "history",
            Request::ObjectHistory { .. } => "object_history",
            Request::SessionStats { .. } => "session_stats",
            Request::Save { .. } => "save",
            Request::Load { .. } => "load",
            Request::Shutdown { .. } => "shutdown",
            Request::Sleep { .. } => "sleep",
            Request::RegisterObject { .. } => "register",
            Request::Status { .. } => "status",
            Request::Metrics => "metrics",
            Request::Checkpoint { .. } => "checkpoint",
            Request::Lint { .. } => "lint",
            Request::Replicate { .. } => "replicate",
            Request::Promote { .. } => "promote",
            Request::ReplStatus => "repl_status",
            Request::RegisterView { .. } => "register_view",
            Request::ViewAsk { .. } => "view_ask",
            Request::Recall { .. } => "recall",
            Request::Explain { .. } => "explain",
        }
    }
}

impl Response {
    /// Encodes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Welcome { session, watermark } => {
                codec::put_u32(&mut out, RESP_WELCOME);
                codec::put_u64(&mut out, *session);
                codec::put_i64(&mut out, *watermark);
            }
            Response::Done { text } => {
                codec::put_u32(&mut out, RESP_DONE);
                codec::put_str(&mut out, text);
            }
            Response::Names {
                probes,
                scanned,
                names,
            } => {
                codec::put_u32(&mut out, RESP_NAMES);
                codec::put_u64(&mut out, *probes);
                codec::put_u64(&mut out, *scanned);
                codec::put_u32(&mut out, names.len() as u32);
                for n in names {
                    codec::put_str(&mut out, n);
                }
            }
            Response::Truth { value } => {
                codec::put_u32(&mut out, RESP_TRUTH);
                codec::put_u32(&mut out, u32::from(*value));
            }
            Response::Table { text } => {
                codec::put_u32(&mut out, RESP_TABLE);
                codec::put_str(&mut out, text);
            }
            Response::SessionInfo {
                session,
                watermark,
                kb_now,
                requests,
                believed,
                probes,
                scanned,
            } => {
                codec::put_u32(&mut out, RESP_SESSION_INFO);
                codec::put_u64(&mut out, *session);
                codec::put_i64(&mut out, *watermark);
                codec::put_i64(&mut out, *kb_now);
                codec::put_u64(&mut out, *requests);
                codec::put_u64(&mut out, *believed);
                codec::put_u64(&mut out, *probes);
                codec::put_u64(&mut out, *scanned);
            }
            Response::Error { code, message } => {
                codec::put_u32(&mut out, RESP_ERROR);
                codec::put_u32(&mut out, *code as u32);
                codec::put_str(&mut out, message);
            }
            Response::Metrics { text } => {
                codec::put_u32(&mut out, RESP_METRICS);
                codec::put_str(&mut out, text);
            }
            Response::Diagnostics { diags } => {
                codec::put_u32(&mut out, RESP_DIAGNOSTICS);
                codec::put_u32(&mut out, diags.len() as u32);
                for d in diags {
                    encode_diagnostic(&mut out, d);
                }
            }
            Response::Redirect { leader } => {
                codec::put_u32(&mut out, RESP_REDIRECT);
                codec::put_str(&mut out, leader);
            }
            Response::Stale {
                applied_seq,
                lag,
                inner,
            } => {
                codec::put_u32(&mut out, RESP_STALE);
                codec::put_u64(&mut out, *applied_seq);
                codec::put_u64(&mut out, *lag);
                codec::put_bytes(&mut out, inner);
            }
            Response::ReplInfo {
                is_leader,
                leader,
                applied_seq,
                leader_seq,
                epoch,
                connected,
            } => {
                codec::put_u32(&mut out, RESP_REPL_INFO);
                codec::put_u32(&mut out, u32::from(*is_leader));
                codec::put_str(&mut out, leader);
                codec::put_u64(&mut out, *applied_seq);
                codec::put_u64(&mut out, *leader_seq);
                codec::put_u64(&mut out, *epoch);
                codec::put_u32(&mut out, u32::from(*connected));
            }
            Response::RecallHits { hits } => {
                codec::put_u32(&mut out, RESP_RECALL_HITS);
                codec::put_u32(&mut out, hits.len() as u32);
                for h in hits {
                    codec::put_str(&mut out, &h.decision);
                    codec::put_u64(&mut out, h.score_bits);
                    codec::put_u32(&mut out, u32::from(h.retracted));
                }
            }
        }
        out
    }

    /// Decodes a response from a frame payload.
    pub fn decode(payload: &[u8]) -> Decode<Response> {
        let mut c = codec::Cursor::new(payload);
        let op = c.get_u32()?;
        let resp = match op {
            RESP_WELCOME => Response::Welcome {
                session: c.get_u64()?,
                watermark: c.get_i64()?,
            },
            RESP_DONE => Response::Done {
                text: c.get_str()?.to_string(),
            },
            RESP_NAMES => {
                let probes = c.get_u64()?;
                let scanned = c.get_u64()?;
                let n = c.get_u32()? as usize;
                let mut names = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    names.push(c.get_str()?.to_string());
                }
                Response::Names {
                    probes,
                    scanned,
                    names,
                }
            }
            RESP_TRUTH => Response::Truth {
                value: c.get_u32()? != 0,
            },
            RESP_TABLE => Response::Table {
                text: c.get_str()?.to_string(),
            },
            RESP_SESSION_INFO => Response::SessionInfo {
                session: c.get_u64()?,
                watermark: c.get_i64()?,
                kb_now: c.get_i64()?,
                requests: c.get_u64()?,
                believed: c.get_u64()?,
                probes: c.get_u64()?,
                scanned: c.get_u64()?,
            },
            RESP_ERROR => {
                let raw = c.get_u32()?;
                let code = ErrorCode::from_u32(raw)
                    .ok_or_else(|| DecodeError(format!("unknown error code {raw}")))?;
                Response::Error {
                    code,
                    message: c.get_str()?.to_string(),
                }
            }
            RESP_METRICS => Response::Metrics {
                text: c.get_str()?.to_string(),
            },
            RESP_DIAGNOSTICS => {
                let n = c.get_u32()? as usize;
                let mut diags = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    diags.push(decode_diagnostic(&mut c)?);
                }
                Response::Diagnostics { diags }
            }
            RESP_REDIRECT => Response::Redirect {
                leader: c.get_str()?.to_string(),
            },
            RESP_STALE => Response::Stale {
                applied_seq: c.get_u64()?,
                lag: c.get_u64()?,
                inner: c.get_bytes()?.to_vec(),
            },
            RESP_REPL_INFO => Response::ReplInfo {
                is_leader: c.get_u32()? != 0,
                leader: c.get_str()?.to_string(),
                applied_seq: c.get_u64()?,
                leader_seq: c.get_u64()?,
                epoch: c.get_u64()?,
                connected: c.get_u32()? != 0,
            },
            RESP_RECALL_HITS => {
                let n = c.get_u32()? as usize;
                let mut hits = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    hits.push(WireRecallHit {
                        decision: c.get_str()?.to_string(),
                        score_bits: c.get_u64()?,
                        retracted: c.get_u32()? != 0,
                    });
                }
                Response::RecallHits { hits }
            }
            op => return Err(DecodeError(format!("unknown response opcode {op}"))),
        };
        if !c.is_exhausted() {
            return Err(DecodeError("trailing bytes after response".into()));
        }
        Ok(resp)
    }
}

/// Writes one frame (record header + payload) to `w` and flushes.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    record::write_record(w, payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    w.flush()
}

/// Outcome of one attempt to read a frame.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete, CRC-valid frame payload.
    Frame(Vec<u8>),
    /// The peer closed the stream cleanly (EOF at a frame boundary).
    Eof,
    /// A read timeout fired before any byte of the next frame arrived.
    /// The caller should check for shutdown and retry.
    Idle,
}

/// How many consecutive mid-frame timeouts to tolerate before giving
/// up on a half-sent frame (protects shutdown drain from a stalled
/// peer; with the server's 100 ms poll interval this is ~5 s). The
/// client divides its read timeout by this to size its poll slice.
pub const MID_FRAME_TIMEOUT_RETRIES: u32 = 50;

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn read_exact_frame<R: Read>(r: &mut R, buf: &mut [u8], already: usize) -> io::Result<()> {
    // `already` bytes of `buf` are filled; a timeout here is mid-frame,
    // so keep waiting (bounded) rather than reporting Idle.
    let mut filled = already;
    let mut stalls = 0u32;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid-frame",
                ))
            }
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > MID_FRAME_TIMEOUT_RETRIES {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer stalled mid-frame",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Reads one frame from `r`. If the stream has a read timeout set, a
/// timeout *between* frames yields [`FrameRead::Idle`] so the caller
/// can poll a shutdown flag; a timeout *inside* a frame keeps waiting
/// (bounded), because the peer is mid-send.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<FrameRead> {
    let mut header = [0u8; record::HEADER_LEN];
    // First byte decides between Eof/Idle and a started frame.
    let first = loop {
        let mut b = [0u8; 1];
        match r.read(&mut b) {
            Ok(0) => return Ok(FrameRead::Eof),
            Ok(_) => break b[0],
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => return Ok(FrameRead::Idle),
            Err(e) => return Err(e),
        }
    };
    header[0] = first;
    read_exact_frame(r, &mut header, 1)?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > record::MAX_RECORD_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    read_exact_frame(r, &mut payload, 0)?;
    if record::crc32(&payload) != crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame CRC mismatch",
        ));
    }
    Ok(FrameRead::Frame(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let bytes = req.encode();
        assert_eq!(Request::decode(&bytes).expect("decode"), req);
    }

    fn roundtrip_resp(resp: Response) {
        let bytes = resp.encode();
        assert_eq!(Response::decode(&bytes).expect("decode"), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Hello);
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Bye { session: 7 });
        roundtrip_req(Request::Refresh { session: 7 });
        roundtrip_req(Request::Tell {
            session: 1,
            src: "tell Paper p1 in DesignObject end".into(),
        });
        roundtrip_req(Request::Untell {
            session: 1,
            name: "p1".into(),
        });
        roundtrip_req(Request::Ask {
            session: 2,
            var: "x".into(),
            class: "Paper".into(),
            expr: "exists a (x author a)".into(),
        });
        roundtrip_req(Request::Holds {
            session: 2,
            expr: "(p1 in Paper)".into(),
        });
        roundtrip_req(Request::Show {
            session: 3,
            name: "p1".into(),
        });
        roundtrip_req(Request::ApplicableDecisions {
            session: 3,
            object: "Spec1".into(),
        });
        roundtrip_req(Request::RetractDecision {
            session: 3,
            name: "D1".into(),
        });
        roundtrip_req(Request::History { session: 4 });
        roundtrip_req(Request::ObjectHistory {
            session: 4,
            object: "Spec1".into(),
        });
        roundtrip_req(Request::SessionStats { session: 4 });
        roundtrip_req(Request::Save {
            session: 5,
            path: "/tmp/kb.log".into(),
        });
        roundtrip_req(Request::Load {
            session: 5,
            path: "/tmp/kb.log".into(),
        });
        roundtrip_req(Request::Shutdown { session: 5 });
        roundtrip_req(Request::Sleep {
            session: 5,
            millis: 250,
        });
        roundtrip_req(Request::RegisterObject {
            session: 6,
            name: "Spec1".into(),
            class: "Specification".into(),
            source: "the spec text".into(),
        });
        roundtrip_req(Request::Status { session: 6 });
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::Checkpoint { session: 6 });
        roundtrip_req(Request::Lint {
            session: 6,
            src: "win(X) :- move(X, Y), not win(Y).".into(),
        });
        roundtrip_req(Request::Replicate {
            applied_seq: 42,
            epoch: 2,
        });
        roundtrip_req(Request::Promote { session: 6 });
        roundtrip_req(Request::ReplStatus);
        roundtrip_req(Request::RegisterView {
            session: 7,
            name: "closure".into(),
            rules: "reach(X, Y) :- attr(X, next, Y).".into(),
        });
        roundtrip_req(Request::ViewAsk {
            session: 7,
            name: "closure".into(),
            pred: "inT".into(),
        });
        roundtrip_req(Request::Recall {
            session: 8,
            name: "mapInvitations".into(),
            limit: 10,
        });
        roundtrip_req(Request::Explain {
            session: 9,
            src: "reach(X, Y) :- attr(X, next, Y).".into(),
        });
    }

    #[test]
    fn decision_request_roundtrips() {
        roundtrip_req(Request::Execute {
            session: 9,
            decision: WireDecision {
                class: "ImplementDecision".into(),
                name: "D1".into(),
                performer: "maria".into(),
                tool: Some("compiler".into()),
                inputs: vec!["Spec1".into()],
                outputs: vec![("Impl1".into(), "Implementation".into())],
                discharges: vec![
                    WireDischarge::Formal {
                        obligation: "Ob1".into(),
                    },
                    WireDischarge::Signature {
                        obligation: "Ob2".into(),
                        by: "erik".into(),
                    },
                ],
            },
        });
        roundtrip_req(Request::Execute {
            session: 9,
            decision: WireDecision {
                class: "D".into(),
                name: "d".into(),
                performer: "p".into(),
                tool: None,
                inputs: vec![],
                outputs: vec![],
                discharges: vec![],
            },
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Welcome {
            session: 1,
            watermark: 42,
        });
        roundtrip_resp(Response::Done {
            text: "told 3 objects".into(),
        });
        roundtrip_resp(Response::Names {
            probes: 17,
            scanned: 230,
            names: vec!["p1".into(), "p2".into()],
        });
        roundtrip_resp(Response::Truth { value: true });
        roundtrip_resp(Response::Truth { value: false });
        roundtrip_resp(Response::Table {
            text: "| a | b |".into(),
        });
        roundtrip_resp(Response::SessionInfo {
            session: 3,
            watermark: 10,
            kb_now: 12,
            requests: 5,
            believed: 100,
            probes: 4,
            scanned: 9,
        });
        roundtrip_resp(Response::Error {
            code: ErrorCode::Overloaded,
            message: "64 requests in flight".into(),
        });
        roundtrip_resp(Response::Metrics {
            text: "# TYPE gkbms_requests_total counter\n".into(),
        });
        roundtrip_resp(Response::Error {
            code: ErrorCode::LintRejected,
            message: "error[CB001] rule `r`: unsafe".into(),
        });
        roundtrip_resp(Response::Diagnostics { diags: vec![] });
        roundtrip_resp(Response::Redirect {
            leader: "127.0.0.1:4714".into(),
        });
        roundtrip_resp(Response::Stale {
            applied_seq: 17,
            lag: 3,
            inner: Response::Truth { value: true }.encode(),
        });
        roundtrip_resp(Response::ReplInfo {
            is_leader: false,
            leader: "127.0.0.1:4714".into(),
            applied_seq: 17,
            leader_seq: 20,
            epoch: 1,
            connected: true,
        });
        roundtrip_resp(Response::Error {
            code: ErrorCode::StaleRead,
            message: "lag 12 exceeds bound 8".into(),
        });
        roundtrip_resp(Response::Error {
            code: ErrorCode::Fenced,
            message: "subscriber epoch 2 outranks leader epoch 1".into(),
        });
        roundtrip_resp(Response::RecallHits { hits: vec![] });
        roundtrip_resp(Response::RecallHits {
            hits: vec![
                WireRecallHit {
                    decision: "mapMinutes".into(),
                    score_bits: 0.75f64.to_bits(),
                    retracted: false,
                },
                WireRecallHit {
                    decision: "mapAgenda".into(),
                    score_bits: 0.5f64.to_bits(),
                    retracted: true,
                },
            ],
        });
        roundtrip_resp(Response::Diagnostics {
            diags: vec![
                WireDiagnostic {
                    is_error: true,
                    code: "CB002".into(),
                    subject: "rule `win`".into(),
                    message: "recursion through negation".into(),
                    witness: Some("negative cycle win -> win".into()),
                    line: Some(3),
                },
                WireDiagnostic {
                    is_error: false,
                    code: "CB003".into(),
                    subject: "rule `p`".into(),
                    message: "undeclared predicate".into(),
                    witness: None,
                    line: None,
                },
            ],
        });
    }

    #[test]
    fn wire_diagnostic_one_line_matches_analysis() {
        let d = analysis::Diagnostic::error("CB001", "rule `r`", "bad")
            .with_witness("variable `X`")
            .at_line(Some(2));
        assert_eq!(WireDiagnostic::from_diagnostic(&d).one_line(), d.one_line());
    }

    #[test]
    fn unknown_opcode_is_decode_error() {
        let mut buf = Vec::new();
        codec::put_u32(&mut buf, 999);
        assert!(Request::decode(&buf).is_err());
        assert!(Response::decode(&buf).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Request::Ping.encode();
        buf.push(0);
        assert!(Request::decode(&buf).is_err());
    }

    #[test]
    fn frame_roundtrip_over_a_pipe() {
        let mut buf = Vec::new();
        let payload = Request::Tell {
            session: 1,
            src: "tell X end".into(),
        }
        .encode();
        write_frame(&mut buf, &payload).unwrap();
        let mut r = std::io::Cursor::new(buf);
        match read_frame(&mut r).unwrap() {
            FrameRead::Frame(p) => assert_eq!(p, payload),
            other => panic!("unexpected {other:?}"),
        }
        match read_frame(&mut r).unwrap() {
            FrameRead::Eof => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn corrupt_frame_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let flip = record::HEADER_LEN + 1;
        buf[flip] ^= 0x20;
        let mut r = std::io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn control_requests_bypass_admission() {
        assert!(Request::Hello.is_control());
        assert!(Request::Ping.is_control());
        assert!(Request::Bye { session: 1 }.is_control());
        assert!(Request::Shutdown { session: 1 }.is_control());
        assert!(Request::Metrics.is_control());
        assert!(Request::Replicate {
            applied_seq: 0,
            epoch: 1
        }
        .is_control());
        assert!(Request::Promote { session: 1 }.is_control());
        assert!(Request::ReplStatus.is_control());
        assert!(!Request::Tell {
            session: 1,
            src: String::new()
        }
        .is_control());
        assert!(!Request::Sleep {
            session: 1,
            millis: 1
        }
        .is_control());
    }
}
