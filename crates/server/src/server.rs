//! The concurrent GKBMS service.
//!
//! # Concurrency model
//!
//! Writers (TELL, UNTELL, EXECUTE, …) serialize behind the write guard
//! of one [`RwLock`]; session reads (ASK, HOLDS, session stats) do
//! **not** take that lock at all. Every acknowledged mutation
//! publishes an immutable [`telos::KbVersion`] — a structural-sharing
//! capture, O(touched chunks) — into a [`gkbms::mvcc::VersionChain`]
//! while still holding the write guard, so versions appear in commit
//! order. A session pins the chain head at Hello (or Refresh) and
//! serves every read from its pinned version at its watermark:
//! lock-free with respect to writers, and stable no matter how many
//! commits land meanwhile.
//!
//! Belief time supplies the isolation *semantics*: every write path
//! calls [`Gkbms::begin_write`] — a belief-clock tick — before
//! mutating, so nothing a writer adds is visible below any pinned
//! watermark, and nothing it retracts disappears from one (UNTELL only
//! closes belief intervals). The version chain supplies the isolation
//! *mechanics*: superseded versions are reclaimed epoch-wise once
//! their last pinned reader departs (session Bye, Refresh, or
//! idle-timeout sweep — sweeps run on every publish and on idle
//! connection polls so an abandoned session cannot retain history
//! forever). Rare administrative reads (SHOW, HISTORY, STATUS, SAVE,
//! LINT, …) still use the read guard: they want the live state and
//! are not on the hot path.
//!
//! Each TCP connection gets a handler thread. Work-carrying requests
//! pass an admission gate bounded by [`Config::max_inflight`]; beyond
//! the bound the server answers `Overloaded` immediately, without
//! queueing — the bounded "queue" is the set of in-flight requests,
//! and backpressure is pushed to the client. Control requests
//! (`Hello`, `Bye`, `Ping`, `Shutdown`, `Metrics`) bypass the gate.
//!
//! # Observability
//!
//! Every dispatched request lands in the process-wide [`obs`]
//! registry: per-op request counters and latency histograms, bytes
//! in/out, admission-gate rejections, writer-lock wait time, session
//! lifecycle counts. The registry is scraped with a `Metrics` frame
//! (or `\metrics` in cbshell) and rendered in Prometheus text format.
//! ASKs slower than [`Config::slow_query_threshold`] additionally
//! land in a bounded slow-query log ([`Server::slow_queries`]).
//!
//! # Shutdown
//!
//! Graceful: the flag flips (via a `Shutdown` frame or
//! [`Server::initiate_shutdown`]), the accept loop stops taking
//! connections, in-flight requests run to completion and their
//! responses are written, later requests get `ShuttingDown`, and
//! handler threads exit at their next idle poll. [`Server::join`]
//! waits for all of that and hands the final [`Gkbms`] back.

use crate::proto::{self, ErrorCode, FrameRead, Request, Response, WireDiagnostic, WireDischarge};
use crate::session::{SessionErr, SessionTable};
use gkbms::mvcc::{Version, VersionChain};
use gkbms::{DecisionRequest, Discharge, FsyncPolicy, Gkbms, GkbmsError};
use objectbase::transform::frame_of;
use replication::{CommitSignal, ReplError, ReplMsg, StreamApplier, TailStep, WalTail};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, RwLockWriteGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use storage::record::{self, ReadOutcome, HEADER_LEN};
use telos::KbVersion;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Admission bound: work-carrying requests in flight beyond this
    /// get an immediate `Overloaded` reply.
    pub max_inflight: usize,
    /// Sessions idle longer than this are reaped.
    pub idle_timeout: Duration,
    /// How often blocked connection reads wake to poll the shutdown
    /// flag (also bounds how long drain waits for idle connections).
    pub poll_interval: Duration,
    /// Upper bound on the diagnostic `Sleep` request, so a misbehaving
    /// client cannot park an admission slot indefinitely.
    pub max_sleep: Duration,
    /// ASKs taking at least this long land in the slow-query log (and
    /// bump `gkbms_slow_queries_total`). `None` disables the log.
    pub slow_query_threshold: Option<Duration>,
    /// When journal WAL appends are forced to stable storage before a
    /// mutation is acknowledged. Only effective when the [`Gkbms`]
    /// handed to [`Server::bind`] has a journal attached (see
    /// [`Gkbms::recover`]). `Always` fsyncs per op under the write
    /// lock; `Group` batches one fsync across concurrent writers
    /// (group commit); `Never` leaves durability to checkpoints.
    pub fsync: FsyncPolicy,
    /// Auto-checkpoint: compact the journal after this many WAL ops.
    /// `None` leaves checkpointing to explicit `Checkpoint` requests.
    pub checkpoint_every: Option<u64>,
    /// When true, TELLs carrying lint *warnings* are rejected like
    /// errors (errors always reject the batch at admission time).
    pub strict_lint: bool,
    /// Follower mode: subscribe to the leader at this address and
    /// apply its committed record stream. Writes are answered with
    /// [`Response::Redirect`] naming this address; reads are served at
    /// the applied watermark, wrapped in [`Response::Stale`].
    pub follow: Option<String>,
    /// Follower reads whose lag behind the leader exceeds this many
    /// ops are refused with [`ErrorCode::StaleRead`]. `None` serves
    /// reads at any staleness (still surfaced via the `Stale` wrapper).
    pub max_lag: Option<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_inflight: 64,
            idle_timeout: Duration::from_secs(300),
            poll_interval: Duration::from_millis(100),
            max_sleep: Duration::from_secs(30),
            slow_query_threshold: Some(Duration::from_millis(250)),
            fsync: FsyncPolicy::Group(Duration::ZERO),
            checkpoint_every: None,
            strict_lint: false,
            follow: None,
            max_lag: None,
        }
    }
}

/// Group commit: one leader fsync covers every WAL op appended (and
/// flushed, which appends do under the write lock) before it started.
///
/// Durability is tracked in the journal's monotonic *op sequence*, not
/// in WAL byte offsets — checkpoints truncate the WAL, but op numbers
/// keep growing, and a checkpoint makes every op up to its point
/// durable via the snapshot (see [`GroupCommit::mark_durable`]).
struct GroupCommit {
    /// Clone of the WAL file handle; shares the open file description
    /// with the journal, so it survives checkpoint truncations and can
    /// be fsynced without holding the state lock.
    file: File,
    state: Mutex<GcState>,
    cv: Condvar,
}

struct GcState {
    /// Highest op sequence number known durable.
    durable_op: u64,
    /// Highest op any waiter has asked to make durable.
    requested_max: u64,
    /// A leader is currently fsyncing.
    leader: bool,
}

impl GroupCommit {
    fn new(file: File, durable_op: u64) -> GroupCommit {
        GroupCommit {
            file,
            state: Mutex::new(GcState {
                durable_op,
                requested_max: durable_op,
                leader: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GcState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until every WAL op up to and including `op` is on stable
    /// storage. The first waiter becomes the leader: it optionally
    /// waits `interval` for more commits to accumulate, issues one
    /// fsync, and wakes everyone whose ops it covered.
    fn wait_durable(&self, op: u64, interval: Duration) -> io::Result<()> {
        let mut st = self.lock();
        if st.requested_max < op {
            st.requested_max = op;
        }
        loop {
            if st.durable_op >= op {
                return Ok(());
            }
            if st.leader {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            st.leader = true;
            drop(st);
            if !interval.is_zero() {
                std::thread::sleep(interval);
            }
            // Everything requested by now has been appended *and
            // flushed* (appends flush under the state write lock before
            // the writer starts waiting), so one fsync covers it all.
            let goal = self.lock().requested_max;
            let started = Instant::now();
            let outcome = self.file.sync_data();
            obs::histogram!(
                "gkbms_journal_fsync_seconds",
                "Latency of WAL fsyncs (per-op and group-commit)"
            )
            .observe(started.elapsed());
            st = self.lock();
            st.leader = false;
            match outcome {
                Ok(()) => {
                    let covered = goal.saturating_sub(st.durable_op);
                    if goal > st.durable_op {
                        st.durable_op = goal;
                    }
                    obs::counter!(
                        "gkbms_group_commit_batches_total",
                        "Group-commit fsync batches issued"
                    )
                    .inc();
                    obs::counter!(
                        "gkbms_group_commit_batched_ops_total",
                        "WAL ops made durable by group-commit batches"
                    )
                    .add(covered);
                    self.cv.notify_all();
                }
                Err(e) => {
                    // Wake the others so they elect a new leader (or
                    // fail in turn) rather than waiting forever.
                    self.cv.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Records that every op up to `op` is durable without an fsync —
    /// a checkpoint's snapshot already covers them.
    fn mark_durable(&self, op: u64) {
        let mut st = self.lock();
        if op > st.durable_op {
            st.durable_op = op;
            self.cv.notify_all();
        }
    }
}

/// One entry of the slow-query log: an ASK that crossed
/// [`Config::slow_query_threshold`], with its evaluation statistics.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// The query as issued (`ASK var/class WHERE expr`).
    pub source: String,
    /// Wall-clock evaluation time.
    pub duration: Duration,
    /// Semi-naive rounds of the evaluation.
    pub rounds: u64,
    /// Facts derived (including duplicates).
    pub derivations: u64,
    /// Genuinely new facts.
    pub new_facts: u64,
    /// Index probes performed.
    pub index_probes: u64,
    /// Tuples scanned.
    pub tuples_scanned: u64,
}

/// Bound on the slow-query ring: old entries fall off the front.
const SLOW_LOG_CAP: usize = 64;

/// The pin a session holds on a store version.
type SessionPin = gkbms::mvcc::Pin<KbVersion>;

/// Replication bookkeeping, present on every server (leaders ship,
/// followers apply, and a promoted follower switches roles in place).
struct ReplState {
    /// True while this server applies a leader's stream instead of
    /// accepting writes. Cleared by `Promote`.
    follower: AtomicBool,
    /// The leader address a follower redirects writes to (empty on a
    /// born leader).
    leader_addr: String,
    /// Follower read-staleness bound, in ops ([`Config::max_lag`]).
    max_lag: Option<u64>,
    /// Ops applied locally, mirrored out of the state lock so reads
    /// can stamp staleness without taking it.
    applied_seq: AtomicU64,
    /// The leader's committed sequence as last observed by the
    /// follower's apply loop (0 until the first message arrives).
    leader_seq: AtomicU64,
    /// The server's sequence epoch, mirrored for lock-free fencing.
    epoch: AtomicU64,
    /// True while a follower's subscription to the leader is live.
    connected: AtomicBool,
    /// Test hook: the apply loop keeps observing `leader_seq` but
    /// defers applying batches while this is set, so stale-read
    /// enforcement can be exercised deterministically.
    apply_paused: AtomicBool,
    /// The durable `(seq, epoch)` watermark ship loops block on. Only
    /// records at or below it are ever shipped to subscribers.
    commit: CommitSignal,
}

impl ReplState {
    fn lag(&self) -> u64 {
        self.leader_seq
            .load(Ordering::SeqCst)
            .saturating_sub(self.applied_seq.load(Ordering::SeqCst))
    }
}

struct Shared {
    state: RwLock<Gkbms>,
    /// Immutable store versions, one published per acknowledged
    /// mutation (under the write guard, so in commit order). Session
    /// reads are served from pinned versions, never from `state`.
    chain: VersionChain<KbVersion>,
    sessions: Mutex<SessionTable<SessionPin>>,
    inflight: AtomicUsize,
    shutdown: AtomicBool,
    slow_log: Mutex<VecDeque<SlowQuery>>,
    /// Present iff the state has a journal attached at bind time.
    gc: Option<GroupCommit>,
    repl: ReplState,
    cfg: Config,
    addr: SocketAddr,
}

/// Decrements the in-flight count when a work-carrying request ends,
/// whichever way it ends.
struct AdmissionGuard<'a>(&'a Shared);

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running GKBMS service.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    /// The follower apply thread, present in follower mode.
    follower: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`), takes ownership of the
    /// knowledge base, and starts accepting connections. If the
    /// knowledge base has a journal attached (see [`Gkbms::recover`]),
    /// every acknowledged mutation is appended to the WAL and made
    /// durable per [`Config::fsync`].
    pub fn bind<A: ToSocketAddrs>(addr: A, mut state: Gkbms, cfg: Config) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let gc = match state.journal_mut() {
            Some(j) => {
                // Baseline: everything appended so far is made durable
                // now, so group commit only ever owes fsyncs for ops
                // appended while serving.
                j.sync().map_err(|e| io::Error::other(e.to_string()))?;
                let durable = j.appended_ops();
                let file = j.file().map_err(|e| io::Error::other(e.to_string()))?;
                Some(GroupCommit::new(file, durable))
            }
            None => None,
        };
        let chain = VersionChain::new(state.kb().version());
        let (applied, epoch) = (state.applied_seq(), state.epoch());
        let repl = ReplState {
            follower: AtomicBool::new(cfg.follow.is_some()),
            leader_addr: cfg.follow.clone().unwrap_or_default(),
            max_lag: cfg.max_lag,
            applied_seq: AtomicU64::new(applied),
            leader_seq: AtomicU64::new(0),
            epoch: AtomicU64::new(epoch),
            connected: AtomicBool::new(false),
            apply_paused: AtomicBool::new(false),
            // Everything recovered (and just fsynced, above) is
            // committed; group commit advances it from here.
            commit: CommitSignal::new(applied, epoch),
        };
        let shared = Arc::new(Shared {
            state: RwLock::new(state),
            chain,
            sessions: Mutex::new(SessionTable::new(cfg.idle_timeout)),
            inflight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            slow_log: Mutex::new(VecDeque::new()),
            gc,
            repl,
            cfg,
            addr: local,
        });
        let follower = match shared.cfg.follow.clone() {
            Some(leader) => {
                let repl_shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("gkbms-repl".into())
                        .spawn(move || follower_loop(&repl_shared, &leader))?,
                )
            }
            None => None,
        };
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("gkbms-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server {
            shared,
            accept: Some(accept),
            follower,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// True once shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the shutdown flag and pokes the accept loop awake. Does
    /// not wait for drain; see [`Server::join`].
    pub fn initiate_shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Number of live store versions: the head plus every superseded
    /// version still pinned by a session. Converges to 1 when all
    /// sessions are closed, refreshed, or reaped.
    pub fn store_versions_live(&self) -> usize {
        self.shared.chain.live_versions()
    }

    /// Number of distinct store epochs currently pinned by sessions.
    pub fn pinned_store_epochs(&self) -> usize {
        self.shared.chain.pinned_epochs()
    }

    /// True while this server is a follower (applies a leader's
    /// stream, redirects writes). Flips to false on `Promote`.
    pub fn is_follower(&self) -> bool {
        self.shared.repl.follower.load(Ordering::SeqCst)
    }

    /// Test hook: pause or resume the follower apply loop. While
    /// paused the loop keeps observing the leader's committed
    /// sequence (so lag grows) but defers applying its batch, making
    /// stale-read enforcement deterministic to exercise.
    pub fn set_apply_paused(&self, paused: bool) {
        self.shared
            .repl
            .apply_paused
            .store(paused, Ordering::SeqCst);
    }

    /// The slow-query log, oldest first (bounded; see
    /// [`Config::slow_query_threshold`]).
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        let log = self
            .shared
            .slow_log
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        log.iter().cloned().collect()
    }

    /// Blocks until shutdown has been initiated (locally or by a
    /// `Shutdown` frame) and everything has drained, then returns the
    /// final knowledge base. Fails with a typed [`JoinError`] — never
    /// a panic — if a handler thread outlives the drain grace period.
    pub fn join(mut self) -> Result<Gkbms, JoinError> {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // The follower apply thread polls the shutdown flag on every
        // idle read and exits on its own after promotion.
        if let Some(h) = self.follower.take() {
            let _ = h.join();
        }
        // The accept loop joins every handler before exiting, so the
        // remaining Arc references are gone or about to be; give
        // stragglers a short grace period instead of panicking.
        let mut shared = self.shared;
        for _ in 0..JOIN_GRACE_ROUNDS {
            match Arc::try_unwrap(shared) {
                Ok(s) => return Ok(s.state.into_inner().unwrap_or_else(|e| e.into_inner())),
                Err(still_shared) => {
                    shared = still_shared;
                    std::thread::sleep(JOIN_GRACE_STEP);
                }
            }
        }
        Err(JoinError::ConnectionsOutlivedJoin)
    }

    /// [`Server::initiate_shutdown`] then [`Server::join`].
    pub fn shutdown(self) -> Result<Gkbms, JoinError> {
        self.initiate_shutdown();
        self.join()
    }
}

/// How many [`JOIN_GRACE_STEP`]-long rounds [`Server::join`] waits for
/// connection threads to release the shared state (~2 s total).
const JOIN_GRACE_ROUNDS: u32 = 200;
const JOIN_GRACE_STEP: Duration = Duration::from_millis(10);

/// Failure to recover the knowledge base on [`Server::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinError {
    /// Connection threads still referenced the server state after the
    /// drain grace period; the knowledge base cannot be handed back.
    ConnectionsOutlivedJoin,
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::ConnectionsOutlivedJoin => {
                f.write_str("connection threads outlived join; state still shared")
            }
        }
    }
}

impl std::error::Error for JoinError {}

fn begin_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    // Unblock the accept loop with a throwaway connection; it checks
    // the flag before handling anything.
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(&shared);
        if let Ok(h) = std::thread::Builder::new()
            .name("gkbms-conn".into())
            .spawn(move || handle_conn(stream, &conn_shared))
        {
            handlers.push(h);
        }
        // Opportunistically reap finished handlers so a long-lived
        // server does not accumulate joinable threads.
        handlers.retain(|h| !h.is_finished());
    }
    // Drain: every in-flight request completes and its response is
    // written before the handler notices the flag and exits.
    for h in handlers {
        let _ = h.join();
    }
}

fn handle_conn(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.poll_interval));
    loop {
        match proto::read_frame(&mut stream) {
            Ok(FrameRead::Frame(payload)) => {
                obs::counter!(
                    "gkbms_bytes_read_total",
                    "Request bytes received, including frame headers"
                )
                .add((payload.len() + HEADER_LEN) as u64);
                if let Some((applied_seq, epoch)) = Request::decode_replicate(&payload) {
                    // A subscription takes the connection over: from
                    // here it is a one-way push stream of ReplMsg
                    // frames, never a request/response socket again.
                    serve_replication(&mut stream, shared, applied_seq, epoch);
                    break;
                }
                let (resp, shutdown_after) = process(shared, &payload);
                let encoded = resp.encode();
                obs::counter!(
                    "gkbms_bytes_written_total",
                    "Response bytes sent, including frame headers"
                )
                .add((encoded.len() + HEADER_LEN) as u64);
                if proto::write_frame(&mut stream, &encoded).is_err() {
                    break;
                }
                if shutdown_after {
                    begin_shutdown(shared);
                }
            }
            Ok(FrameRead::Idle) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Reap idled-out sessions even when no requests arrive:
                // a leaked session must not pin a store version (and
                // the history behind it) forever.
                sweep_sessions(shared);
            }
            Ok(FrameRead::Eof) | Err(_) => break,
        }
    }
}

fn err(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        message: message.into(),
    }
}

fn session_err(e: SessionErr, id: u64) -> Response {
    match e {
        SessionErr::Unknown => err(ErrorCode::UnknownSession, format!("session {id}")),
        SessionErr::Expired => err(ErrorCode::SessionExpired, format!("session {id} idled out")),
    }
}

/// Handles one decoded frame. The bool asks the caller to begin
/// shutdown *after* the response has been written.
fn process(shared: &Shared, payload: &[u8]) -> (Response, bool) {
    let started = Instant::now();
    let req = match Request::decode(payload) {
        Ok(r) => r,
        Err(e) => {
            obs::counter!(
                "gkbms_bad_requests_total",
                "Frames that failed to decode as a request"
            )
            .inc();
            return (err(ErrorCode::BadRequest, e.to_string()), false);
        }
    };
    let op = req.op_name();
    let result = process_decoded(shared, req);
    if obs::enabled() {
        let reg = obs::registry();
        reg.counter(
            &format!("gkbms_requests_total{{op=\"{op}\"}}"),
            "Requests dispatched, by operation",
        )
        .inc();
        reg.histogram(
            &format!("gkbms_request_seconds{{op=\"{op}\"}}"),
            "Request handling latency, by operation",
        )
        .observe(started.elapsed());
        if let Response::Error {
            code: ErrorCode::Overloaded,
            ..
        } = &result.0
        {
            obs::counter!(
                "gkbms_overloaded_total",
                "Requests rejected at the admission gate"
            )
            .inc();
        }
    }
    result
}

fn process_decoded(shared: &Shared, req: Request) -> (Response, bool) {
    let draining = shared.shutdown.load(Ordering::SeqCst);
    if req.is_control() {
        return control(shared, req, draining);
    }
    if draining {
        return (err(ErrorCode::ShuttingDown, "server is draining"), false);
    }
    // Admission gate: bound the work in flight, reject the overflow.
    let in_flight = shared.inflight.fetch_add(1, Ordering::SeqCst);
    if in_flight >= shared.cfg.max_inflight {
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        return (
            err(
                ErrorCode::Overloaded,
                format!("{in_flight} requests in flight"),
            ),
            false,
        );
    }
    let _permit = AdmissionGuard(shared);
    (dispatch(shared, req), false)
}

fn control(shared: &Shared, req: Request, draining: bool) -> (Response, bool) {
    match req {
        Request::Ping => (
            Response::Done {
                text: "pong".into(),
            },
            false,
        ),
        Request::Metrics => (
            Response::Metrics {
                text: obs::render_prometheus(),
            },
            false,
        ),
        Request::Hello => {
            if draining {
                return (err(ErrorCode::ShuttingDown, "server is draining"), false);
            }
            // Pin the chain head — a pointer clone, not the state
            // lock. Its capture clock is the session's watermark.
            let pin = shared.chain.acquire();
            let watermark = pin.data().now();
            let session = lock_sessions(shared).open(watermark, pin);
            (Response::Welcome { session, watermark }, false)
        }
        Request::Bye { session } => {
            lock_sessions(shared).close(session);
            (
                Response::Done {
                    text: format!("session {session} closed"),
                },
                false,
            )
        }
        Request::Shutdown { session } => {
            // Validate the session unless we are already draining (a
            // repeated Shutdown should stay idempotent).
            if !draining {
                if let Err(e) = lock_sessions(shared).touch(session) {
                    return (session_err(e, session), false);
                }
            }
            (
                Response::Done {
                    text: "shutting down".into(),
                },
                true,
            )
        }
        Request::Promote { session } => {
            if let Err(e) = lock_sessions(shared).touch(session) {
                return (session_err(e, session), false);
            }
            (promote(shared), false)
        }
        Request::ReplStatus => {
            let follower = shared.repl.follower.load(Ordering::SeqCst);
            let (applied_seq, epoch) = {
                let g = read_state(shared);
                (g.applied_seq(), g.epoch())
            };
            let leader_seq = if follower {
                shared.repl.leader_seq.load(Ordering::SeqCst)
            } else {
                applied_seq
            };
            (
                Response::ReplInfo {
                    is_leader: !follower,
                    leader: shared.repl.leader_addr.clone(),
                    applied_seq,
                    leader_seq,
                    epoch,
                    connected: shared.repl.connected.load(Ordering::SeqCst),
                },
                false,
            )
        }
        // Subscriptions are intercepted in the connection handler; one
        // arriving here was smuggled in a place it cannot take the
        // connection over (it never should be).
        Request::Replicate { .. } => (
            err(ErrorCode::BadRequest, "replication subscription rejected"),
            false,
        ),
        _ => unreachable!("is_control covers exactly these variants"),
    }
}

/// Seals this follower's log and makes it writable: bump the sequence
/// epoch, journal a durable seal record, and stop redirecting writes.
/// The old leader's records are fenced from here on — both by this
/// server's subscribers (frames carry the old epoch) and by its own
/// apply admission, should the deposed leader's stream still be live.
fn promote(shared: &Shared) -> Response {
    if !shared.repl.follower.load(Ordering::SeqCst) {
        return err(ErrorCode::Rejected, "already the leader");
    }
    // Flip the role first so the apply loop stops taking batches, then
    // serialize behind any in-flight batch via the write lock.
    shared.repl.follower.store(false, Ordering::SeqCst);
    let mut g = write_state(shared);
    match g.promote() {
        Ok(epoch) => {
            let applied = g.applied_seq();
            drop(g);
            shared.repl.epoch.store(epoch, Ordering::SeqCst);
            shared.repl.applied_seq.store(applied, Ordering::SeqCst);
            // Wake this server's own subscribers into the new epoch.
            shared.repl.commit.advance(applied, epoch);
            Response::Done {
                text: format!("promoted: sequence epoch {epoch}, applied op {applied}"),
            }
        }
        Err(e) => {
            // Roll the role back: the seal is not durable.
            shared.repl.follower.store(true, Ordering::SeqCst);
            err(ErrorCode::Internal, format!("promote: {e}"))
        }
    }
}

fn lock_sessions(shared: &Shared) -> std::sync::MutexGuard<'_, SessionTable<SessionPin>> {
    shared.sessions.lock().unwrap_or_else(|e| e.into_inner())
}

fn read_state(shared: &Shared) -> std::sync::RwLockReadGuard<'_, Gkbms> {
    shared.state.read().unwrap_or_else(|e| e.into_inner())
}

fn write_state(shared: &Shared) -> std::sync::RwLockWriteGuard<'_, Gkbms> {
    let waited = Instant::now();
    let guard = shared.state.write().unwrap_or_else(|e| e.into_inner());
    obs::histogram!(
        "gkbms_writer_lock_wait_seconds",
        "Time spent waiting to acquire the single-writer state lock"
    )
    .observe(waited.elapsed());
    guard
}

/// Completes a mutating request's commit: publishes the new store
/// version for snapshot readers, then enforces the configured fsync
/// policy (and the auto-checkpoint threshold) before the caller
/// acknowledges the mutation, releasing the write lock as early as the
/// policy allows. `mutated` is false when the operation failed and
/// appended nothing. Returns an error response if durability could not
/// be established — the mutation is applied in memory but the client
/// must not treat it as stable.
fn durable_commit(
    shared: &Shared,
    mut g: RwLockWriteGuard<'_, Gkbms>,
    mutated: bool,
) -> Result<(), Response> {
    if mutated {
        // Publish while still holding the write guard, so versions
        // enter the chain in commit order (capture is O(touched
        // chunks) thanks to structural sharing). This is the commit
        // point for snapshot readers: sessions opened after this see
        // the mutation, pinned sessions keep their version.
        shared.chain.publish(g.kb().version());
    }
    if !mutated || g.journal().is_none() {
        drop(g);
        if mutated {
            sweep_sessions(shared);
        }
        return Ok(());
    }
    // The position replication may ship once this commit is durable.
    let commit_pos = (
        g.journal().expect("journal checked").appended_ops(),
        g.epoch(),
    );
    let mut pending = None;
    match shared.cfg.fsync {
        FsyncPolicy::Always => {
            // Strict per-op durability: fsync while still holding the
            // write lock, one fsync per acknowledged mutation.
            if let Err(e) = g.journal_mut().expect("journal checked").sync() {
                return Err(err(ErrorCode::Internal, format!("journal fsync: {e}")));
            }
        }
        FsyncPolicy::Group(interval) => {
            pending = Some((
                g.journal().expect("journal checked").appended_ops(),
                interval,
            ));
        }
        FsyncPolicy::Never => {}
    }
    if let Some(every) = shared.cfg.checkpoint_every {
        if g.journal().expect("journal checked").ops_since_checkpoint() >= every {
            match g.checkpoint() {
                Ok(report) => {
                    if let Some(gc) = &shared.gc {
                        gc.mark_durable(report.appended_ops);
                    }
                    pending = None;
                }
                Err(e) => {
                    return Err(err(
                        ErrorCode::Internal,
                        format!("auto-checkpoint failed: {e}"),
                    ))
                }
            }
        }
    }
    drop(g);
    sweep_sessions(shared);
    if let (Some((op, interval)), Some(gc)) = (pending, &shared.gc) {
        if let Err(e) = gc.wait_durable(op, interval) {
            return Err(err(ErrorCode::Internal, format!("group-commit fsync: {e}")));
        }
    }
    // Commit point for replication: under `Always`/`Group` the fsync
    // (or covering checkpoint) has happened; under `Never` the ack
    // itself is the commit, and replicas inherit exactly the leader's
    // (weak) durability contract. Ship loops wake here.
    shared
        .repl
        .applied_seq
        .store(commit_pos.0, Ordering::SeqCst);
    shared.repl.commit.advance(commit_pos.0, commit_pos.1);
    Ok(())
}

/// Reaps idled-out sessions, dropping their version pins so the chain
/// can reclaim history they alone retained. Runs on every publish and
/// on idle connection polls; never called while holding the state
/// lock (sessions-then-state is the forbidden order, we take neither
/// together).
fn sweep_sessions(shared: &Shared) {
    lock_sessions(shared).sweep();
}

/// Touches the session and returns its watermark, bumping counters.
fn touch(shared: &Shared, id: u64) -> Result<i64, Response> {
    lock_sessions(shared)
        .touch(id)
        .map(|s| s.watermark)
        .map_err(|e| session_err(e, id))
}

/// Touches the session and returns its watermark plus a handle to its
/// pinned store version. The `Arc` clone keeps the version alive for
/// this request even if the session is reaped mid-read; the chain
/// mutex is never taken on this path.
fn touch_pinned(shared: &Shared, id: u64) -> Result<(i64, Arc<Version<KbVersion>>), Response> {
    lock_sessions(shared)
        .touch(id)
        .map(|s| (s.watermark, s.pin.version()))
        .map_err(|e| session_err(e, id))
}

/// Appends an over-threshold ASK to the bounded slow-query ring.
fn record_slow_query(
    shared: &Shared,
    var: &str,
    class: &str,
    expr: &str,
    duration: Duration,
    stats: &datalog::seminaive::EvalStats,
) {
    obs::counter!(
        "gkbms_slow_queries_total",
        "ASKs that crossed the slow-query threshold"
    )
    .inc();
    let mut log = shared.slow_log.lock().unwrap_or_else(|e| e.into_inner());
    if log.len() >= SLOW_LOG_CAP {
        log.pop_front();
    }
    log.push_back(SlowQuery {
        source: format!("ASK {var}/{class} WHERE {expr}"),
        duration,
        rounds: stats.rounds as u64,
        derivations: stats.derivations as u64,
        new_facts: stats.new_facts as u64,
        index_probes: stats.index_probes as u64,
        tuples_scanned: stats.tuples_scanned as u64,
    });
}

fn names(list: Vec<String>) -> Response {
    Response::Names {
        probes: 0,
        scanned: 0,
        names: list,
    }
}

/// True for requests that mutate the knowledge base — on a follower
/// these must go to the leader instead. `Checkpoint` is deliberately
/// not a write here: it only compacts the local journal, which a
/// replica may do freely.
fn is_write(req: &Request) -> bool {
    matches!(
        req,
        Request::Tell { .. }
            | Request::Untell { .. }
            | Request::Execute { .. }
            | Request::RetractDecision { .. }
            | Request::RegisterObject { .. }
            | Request::RegisterView { .. }
            | Request::Load { .. }
    )
}

fn dispatch(shared: &Shared, req: Request) -> Response {
    if shared.repl.follower.load(Ordering::SeqCst) {
        if is_write(&req) {
            obs::counter!(
                "gkbms_replication_redirects_total",
                "Writes redirected from a follower to its leader"
            )
            .inc();
            return Response::Redirect {
                leader: shared.repl.leader_addr.clone(),
            };
        }
        // Bounded staleness: refuse reads that have fallen too far
        // behind, and stamp every served one with its lag.
        let lag = shared.repl.lag();
        if let Some(bound) = shared.repl.max_lag {
            if lag > bound {
                obs::counter!(
                    "gkbms_replication_stale_rejects_total",
                    "Follower reads refused for exceeding the lag bound"
                )
                .inc();
                return err(
                    ErrorCode::StaleRead,
                    format!("replica lag {lag} op(s) exceeds bound {bound}"),
                );
            }
        }
        let inner = dispatch_inner(shared, req);
        return Response::Stale {
            applied_seq: shared.repl.applied_seq.load(Ordering::SeqCst),
            lag,
            inner: inner.encode(),
        };
    }
    dispatch_inner(shared, req)
}

fn dispatch_inner(shared: &Shared, req: Request) -> Response {
    match req {
        Request::Refresh { session } => {
            let pin = shared.chain.acquire();
            let now = pin.data().now();
            match lock_sessions(shared).refresh(session, now, pin) {
                Ok(w) => Response::Done {
                    text: format!("watermark {w}"),
                },
                Err(e) => session_err(e, session),
            }
        }
        Request::Tell { session, src } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let mut g = write_state(shared);
            let outcome = g.tell_src_checked(&src, shared.cfg.strict_lint);
            if let Err(resp) = durable_commit(shared, g, outcome.is_ok()) {
                return resp;
            }
            match outcome {
                Ok((n, diags)) if diags.is_empty() => Response::Done {
                    text: format!("told {n} object(s)"),
                },
                Ok((n, diags)) => Response::Done {
                    text: format!(
                        "told {n} object(s); {} lint warning(s): {}",
                        diags.len(),
                        diags
                            .iter()
                            .map(|d| d.one_line())
                            .collect::<Vec<_>>()
                            .join("; ")
                    ),
                },
                Err(GkbmsError::Lint(diags)) => err(
                    ErrorCode::LintRejected,
                    diags
                        .iter()
                        .map(|d| d.one_line())
                        .collect::<Vec<_>>()
                        .join("; "),
                ),
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::Untell { session, name } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let mut g = write_state(shared);
            let outcome = g.untell(&name);
            if let Err(resp) = durable_commit(shared, g, outcome.is_ok()) {
                return resp;
            }
            match outcome {
                Ok(gone) => Response::Done {
                    text: format!("untold `{name}` ({gone} proposition(s))"),
                },
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::Ask {
            session,
            var,
            class,
            expr,
        } => {
            let (watermark, version) = match touch_pinned(shared, session) {
                Ok(wv) => wv,
                Err(resp) => return resp,
            };
            let started = Instant::now();
            // Served entirely from the session's pinned version: no
            // state lock, unaffected by concurrent writers.
            let result = objectbase::query::ask_with_stats_version(
                version.data(),
                watermark,
                &var,
                &class,
                &expr,
            );
            let elapsed = started.elapsed();
            match result {
                Ok((answers, stats)) => {
                    if shared
                        .cfg
                        .slow_query_threshold
                        .is_some_and(|t| elapsed >= t)
                    {
                        record_slow_query(shared, &var, &class, &expr, elapsed, &stats);
                    }
                    if let Ok(s) = lock_sessions(shared).touch(session) {
                        s.last_probes = stats.index_probes as u64;
                        s.last_scanned = stats.tuples_scanned as u64;
                        // The bookkeeping touch is not a client request.
                        s.requests -= 1;
                    }
                    Response::Names {
                        probes: stats.index_probes as u64,
                        scanned: stats.tuples_scanned as u64,
                        names: answers,
                    }
                }
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::Holds { session, expr } => {
            let (watermark, version) = match touch_pinned(shared, session) {
                Ok(wv) => wv,
                Err(resp) => return resp,
            };
            let parsed = match telos::assertion::parse(&expr) {
                Ok(p) => p,
                Err(e) => return err(ErrorCode::Rejected, e.to_string()),
            };
            let snap = version.data().snapshot_at(watermark);
            let mut env = telos::assertion::Env::new();
            match telos::assertion::eval(&snap, &parsed, &mut env) {
                Ok(value) => Response::Truth { value },
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::Show { session, name } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let g = read_state(shared);
            let Some(id) = g.kb().lookup(&name) else {
                return err(ErrorCode::Rejected, format!("unknown object `{name}`"));
            };
            match frame_of(g.kb(), id) {
                Ok(frame) => Response::Table {
                    text: frame.to_string(),
                },
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::ApplicableDecisions { session, object } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let g = read_state(shared);
            match g.applicable_decisions(&object) {
                Ok(rows) => names(
                    rows.into_iter()
                        .map(|(class, tools)| {
                            if tools.is_empty() {
                                class
                            } else {
                                format!("{class} [{}]", tools.join(", "))
                            }
                        })
                        .collect(),
                ),
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::Execute { session, decision } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let mut dr = DecisionRequest::new(&decision.class, &decision.name, &decision.performer);
            if let Some(tool) = &decision.tool {
                dr = dr.with_tool(tool);
            }
            for input in &decision.inputs {
                dr = dr.input(input);
            }
            for (out_name, out_class) in &decision.outputs {
                dr = dr.output(out_name, out_class);
            }
            for dis in &decision.discharges {
                dr = dr.discharge(match dis {
                    WireDischarge::Formal { obligation } => Discharge::Formal {
                        obligation: obligation.clone(),
                    },
                    WireDischarge::Signature { obligation, by } => Discharge::Signature {
                        obligation: obligation.clone(),
                        by: by.clone(),
                    },
                });
            }
            let mut g = write_state(shared);
            g.begin_write();
            let outcome = g.execute(dr);
            if let Err(resp) = durable_commit(shared, g, outcome.is_ok()) {
                return resp;
            }
            match outcome {
                Ok(summary) => Response::Done {
                    text: format!(
                        "executed {}: created [{}] at tick {}",
                        summary.name,
                        summary.created.join(", "),
                        summary.tick
                    ),
                },
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::RetractDecision { session, name } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let mut g = write_state(shared);
            g.begin_write();
            let outcome = g.retract_decision(&name);
            if let Err(resp) = durable_commit(shared, g, outcome.is_ok()) {
                return resp;
            }
            match outcome {
                Ok(affected) => names(affected),
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::History { session } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            Response::Table {
                text: read_state(shared).process_view().render(),
            }
        }
        Request::Status { session } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            Response::Table {
                text: read_state(shared).status_view().render(),
            }
        }
        Request::ObjectHistory { session, object } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let g = read_state(shared);
            match g.object_history(&object) {
                Ok(rows) => names(
                    rows.into_iter()
                        .map(|(tick, event)| format!("t{tick}: {event}"))
                        .collect(),
                ),
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::SessionStats { session } => {
            let (watermark, requests, probes, scanned, version) = {
                let mut sessions = lock_sessions(shared);
                match sessions.touch(session) {
                    Ok(s) => (
                        s.watermark,
                        s.requests,
                        s.last_probes,
                        s.last_scanned,
                        s.pin.version(),
                    ),
                    Err(e) => return session_err(e, session),
                }
            };
            Response::SessionInfo {
                session,
                watermark,
                // The chain head is published per commit, so its
                // capture clock is the live clock — no state lock.
                kb_now: shared.chain.head().data().now(),
                requests,
                believed: version.data().snapshot_at(watermark).believed_count() as u64,
                probes,
                scanned,
            }
        }
        Request::Save { session, path } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let g = read_state(shared);
            match g.save(&path) {
                Ok(()) => Response::Done {
                    text: format!("saved to {path}"),
                },
                Err(e) => err(ErrorCode::Internal, e.to_string()),
            }
        }
        Request::Load { session, path } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            if shared.gc.is_some() {
                return err(
                    ErrorCode::Rejected,
                    "cannot load into a journaled server: state is owned by the journal \
                     (restart with a different --journal dir instead)",
                );
            }
            match Gkbms::load(&path) {
                Ok(fresh) => {
                    let mut g = write_state(shared);
                    *g = fresh;
                    let now = g.kb().now();
                    shared.chain.publish(g.kb().version());
                    drop(g);
                    // Old watermarks and versions refer to a store
                    // that no longer exists; re-pin every session to
                    // the fresh head.
                    let pin = shared.chain.acquire();
                    lock_sessions(shared).repin_all(now, pin);
                    Response::Done {
                        text: format!("loaded from {path}"),
                    }
                }
                Err(e) => err(ErrorCode::Internal, e.to_string()),
            }
        }
        Request::Checkpoint { session } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let mut g = write_state(shared);
            match g.checkpoint() {
                Ok(report) => {
                    // The snapshot covers everything appended so far, so
                    // waiting group committers are durable too.
                    if let Some(gc) = &shared.gc {
                        gc.mark_durable(report.appended_ops);
                    }
                    shared.repl.commit.advance(report.appended_ops, g.epoch());
                    Response::Done {
                        text: format!(
                            "checkpointed: {} op(s) compacted into the snapshot",
                            report.compacted_ops
                        ),
                    }
                }
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::Lint { session, src } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let diags = read_state(shared).lint_src(&src);
            Response::Diagnostics {
                diags: diags.iter().map(WireDiagnostic::from_diagnostic).collect(),
            }
        }
        Request::Sleep { session, millis } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let capped = Duration::from_millis(millis).min(shared.cfg.max_sleep);
            std::thread::sleep(capped);
            Response::Done {
                text: format!("slept {} ms", capped.as_millis()),
            }
        }
        Request::RegisterObject {
            session,
            name,
            class,
            source,
        } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let mut g = write_state(shared);
            g.begin_write();
            let outcome = g.register_object(&name, &class, &source);
            if let Err(resp) = durable_commit(shared, g, outcome.is_ok()) {
                return resp;
            }
            match outcome {
                Ok(_) => Response::Done {
                    text: format!("registered `{name}` in `{class}`"),
                },
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::RegisterView {
            session,
            name,
            rules,
        } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            // A journaled write like Tell: the registration is appended
            // to the WAL (inside register_view) so recovery and
            // replication rebuild the view by replay. The belief clock
            // does not move — registration changes no beliefs.
            let mut g = write_state(shared);
            let outcome = g.register_view_checked(&name, &rules);
            if let Err(resp) = durable_commit(shared, g, outcome.is_ok()) {
                return resp;
            }
            match outcome {
                Ok((as_of, diags)) => {
                    // CB013 maintainability warnings ride back in the
                    // confirmation text; they never block registration.
                    let mut text = format!("registered view `{name}` as of tick {as_of}");
                    for d in &diags {
                        text.push_str(&format!("\nwarning[{}]: {}", d.code, d.message));
                    }
                    Response::Done { text }
                }
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::ViewAsk {
            session,
            name,
            pred,
        } => {
            let (watermark, version) = match touch_pinned(shared, session) {
                Ok(wv) => wv,
                Err(resp) => return resp,
            };
            let g = read_state(shared);
            let Some(view) = g.view(&name) else {
                return err(ErrorCode::Rejected, format!("unknown view `{name}`"));
            };
            // The materialized model reflects the current belief state
            // (`as_of`). A session pinned at or after it may read the
            // model directly; an older watermark re-evaluates the
            // view's program over the session's pinned store version so
            // it never observes a refresh from a newer tick.
            let result = if watermark >= view.as_of() {
                obs::counter!(
                    "gkbms_view_asks_materialized_total",
                    "View reads served straight from the maintained model"
                )
                .inc();
                Ok(view.tuples(&pred))
            } else {
                obs::counter!(
                    "gkbms_view_asks_pinned_total",
                    "View reads re-evaluated at an older pinned watermark"
                )
                .inc();
                view.eval_pinned(version.data(), watermark, &pred)
            };
            match result {
                Ok(tuples) => names(
                    tuples
                        .into_iter()
                        .map(|t| {
                            t.iter()
                                .map(|v| v.to_string())
                                .collect::<Vec<_>>()
                                .join(" ")
                        })
                        .collect(),
                ),
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::Recall {
            session,
            name,
            limit,
        } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            match read_state(shared).recall_similar(&name, limit as usize) {
                Ok(hits) => Response::RecallHits {
                    hits: hits
                        .into_iter()
                        .map(|h| proto::WireRecallHit {
                            decision: h.decision,
                            score_bits: h.score.to_bits(),
                            retracted: h.retracted,
                        })
                        .collect(),
                },
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::Explain { session, src } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            match read_state(shared).explain_src(&src) {
                Ok(text) => Response::Done { text },
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::Hello
        | Request::Bye { .. }
        | Request::Ping
        | Request::Shutdown { .. }
        | Request::Metrics
        | Request::Replicate { .. }
        | Request::Promote { .. }
        | Request::ReplStatus => {
            unreachable!("control requests are handled before dispatch")
        }
    }
}

// ---------------------------------------------------------------- //
//  Replication: leader-side shipping                               //
// ---------------------------------------------------------------- //

/// Payload-byte cap per shipped `Ops` batch.
const SHIP_BATCH_BYTES: usize = 256 * 1024;
/// Payload-byte cap per `SnapshotChunk` frame.
const SNAPSHOT_CHUNK_BYTES: usize = 256 * 1024;

/// Writes one replication stream frame, counting shipped bytes.
fn ship(stream: &mut TcpStream, msg: &ReplMsg) -> io::Result<()> {
    let encoded = msg.encode();
    obs::counter!(
        "gkbms_replication_bytes_shipped_total",
        "Replication stream bytes shipped to subscribers, including frame headers"
    )
    .add((encoded.len() + HEADER_LEN) as u64);
    proto::write_frame(stream, &encoded)
}

/// Reads every record payload of a length-prefixed CRC file (the
/// checkpoint snapshot) into memory.
fn read_payload_file(path: &Path) -> io::Result<Vec<Vec<u8>>> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut offset = 0u64;
    let mut out = Vec::new();
    loop {
        match record::read_record(&mut reader, offset) {
            Ok(ReadOutcome::Record(p)) => {
                offset += (HEADER_LEN + p.len()) as u64;
                out.push(p);
            }
            Ok(ReadOutcome::Eof) | Ok(ReadOutcome::Torn { .. }) => return Ok(out),
            Ok(ReadOutcome::BadCrc { offset }) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("snapshot corrupt at byte {offset}"),
                ))
            }
            Err(e) => return Err(io::Error::other(e.to_string())),
        }
    }
}

/// A snapshot staged for transfer to a far-behind subscriber.
struct ShipSnapshot {
    covered_seq: u64,
    payloads: Vec<Vec<u8>>,
}

/// Decides how a subscription at `sub_seq` starts: straight from the
/// WAL tail, or snapshot-first when the subscriber is behind the
/// checkpoint truncation horizon. Runs under the read lock —
/// checkpoints need the write lock, so the horizon and the snapshot
/// file cannot change underneath us.
fn plan_stream(
    shared: &Shared,
    sub_seq: u64,
) -> Result<(std::path::PathBuf, Option<ShipSnapshot>), Response> {
    let g = read_state(shared);
    let Some(j) = g.journal() else {
        return Err(err(
            ErrorCode::Rejected,
            "replication requires a journaled leader (start with --journal)",
        ));
    };
    let horizon = j.appended_ops() - j.ops_since_checkpoint();
    let wal_path = j.wal_path();
    if sub_seq < horizon {
        // The WAL no longer holds the records the subscriber lacks;
        // stage the covering snapshot (reading it into memory under
        // the read lock keeps it consistent with `horizon`).
        let payloads = read_payload_file(&j.snapshot_path())
            .map_err(|e| err(ErrorCode::Internal, format!("snapshot read: {e}")))?;
        Ok((
            wal_path,
            Some(ShipSnapshot {
                covered_seq: horizon,
                payloads,
            }),
        ))
    } else {
        Ok((wal_path, None))
    }
}

/// Serves one replication subscription: the connection becomes a push
/// stream of [`ReplMsg`] frames until the subscriber disconnects or
/// the server shuts down. Handshake refusals (fencing, no journal)
/// are written as plain [`Response`] frames, whose opcodes are
/// disjoint from the stream's.
fn serve_replication(stream: &mut TcpStream, shared: &Shared, sub_seq: u64, sub_epoch: u64) {
    let (_, epoch) = shared.repl.commit.current();
    if sub_epoch > epoch {
        obs::counter!(
            "gkbms_replication_fenced_total",
            "Replication records or subscriptions refused by sequence-epoch fencing"
        )
        .inc();
        let refusal = err(
            ErrorCode::Fenced,
            format!("subscriber epoch {sub_epoch} outranks leader epoch {epoch}"),
        );
        let _ = proto::write_frame(stream, &refusal.encode());
        return;
    }
    let snapshot = match plan_stream(shared, sub_seq) {
        Ok((_, snap)) => snap,
        Err(refusal) => {
            let _ = proto::write_frame(stream, &refusal.encode());
            return;
        }
    };
    let subscribers = obs::gauge!(
        "gkbms_replication_subscribers",
        "Live replication subscriptions"
    );
    subscribers.add(1);
    let _ = ship_stream(stream, shared, sub_seq, snapshot);
    subscribers.add(-1);
}

fn ship_snapshot(stream: &mut TcpStream, shared: &Shared, snap: ShipSnapshot) -> io::Result<()> {
    obs::counter!(
        "gkbms_replication_snapshots_shipped_total",
        "Checkpoint snapshots streamed to far-behind subscribers"
    )
    .inc();
    let (_, epoch) = shared.repl.commit.current();
    ship(
        stream,
        &ReplMsg::SnapshotStart {
            covered_seq: snap.covered_seq,
            epoch,
        },
    )?;
    let mut chunk: Vec<Vec<u8>> = Vec::new();
    let mut bytes = 0usize;
    for p in snap.payloads {
        bytes += p.len();
        chunk.push(p);
        if bytes >= SNAPSHOT_CHUNK_BYTES {
            ship(
                stream,
                &ReplMsg::SnapshotChunk {
                    payloads: std::mem::take(&mut chunk),
                },
            )?;
            bytes = 0;
        }
    }
    if !chunk.is_empty() {
        ship(stream, &ReplMsg::SnapshotChunk { payloads: chunk })?;
    }
    ship(stream, &ReplMsg::SnapshotEnd)
}

/// The ship loop proper: optional snapshot transfer, then the WAL
/// tail, then live pushes as group commits complete. Returns when the
/// subscriber disconnects (any write error) or the server drains.
fn ship_stream(
    stream: &mut TcpStream,
    shared: &Shared,
    sub_seq: u64,
    mut snapshot: Option<ShipSnapshot>,
) -> io::Result<()> {
    let (durable, epoch) = shared.repl.commit.current();
    ship(
        stream,
        &ReplMsg::Hello {
            leader_seq: durable,
            epoch,
        },
    )?;
    let mut start_seq = sub_seq + 1;
    'stream: loop {
        if let Some(snap) = snapshot.take() {
            start_seq = snap.covered_seq + 1;
            ship_snapshot(stream, shared, snap)?;
        }
        let wal_path = {
            let g = read_state(shared);
            match g.journal() {
                Some(j) => j.wal_path(),
                None => return Ok(()),
            }
        };
        let mut tail = WalTail::new(&wal_path, start_seq);
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            let (durable, epoch) = shared
                .repl
                .commit
                .wait_beyond(tail.next_seq().saturating_sub(1), shared.cfg.poll_interval);
            match tail.poll(durable, SHIP_BATCH_BYTES) {
                Ok(TailStep::Records(records)) => {
                    obs::counter!(
                        "gkbms_replication_records_shipped_total",
                        "Committed WAL records shipped to subscribers"
                    )
                    .add(records.len() as u64);
                    ship(
                        stream,
                        &ReplMsg::Ops {
                            leader_seq: durable,
                            records,
                        },
                    )?;
                }
                Ok(TailStep::Idle) => {
                    // Keeps the subscriber's view of the committed
                    // position fresh and detects dead peers by the
                    // write failing.
                    ship(
                        stream,
                        &ReplMsg::Heartbeat {
                            leader_seq: durable,
                            epoch,
                        },
                    )?;
                }
                Ok(TailStep::Truncated) => {
                    // A checkpoint compacted the WAL under the cursor.
                    // Re-plan from the subscriber's position: rescan
                    // the new file, or fall back to snapshot transfer
                    // if the needed range was truncated away.
                    match plan_stream(shared, tail.next_seq().saturating_sub(1)) {
                        Ok((_, snap)) => {
                            start_seq = tail.next_seq();
                            snapshot = snap;
                            continue 'stream;
                        }
                        Err(refusal) => {
                            let _ = proto::write_frame(stream, &refusal.encode());
                            return Ok(());
                        }
                    }
                }
                Err(_) => return Ok(()),
            }
        }
    }
}

// ---------------------------------------------------------------- //
//  Replication: follower runtime                                   //
// ---------------------------------------------------------------- //

/// Follower reconnect backoff bounds.
const FOLLOW_BACKOFF_MIN: Duration = Duration::from_millis(50);
const FOLLOW_BACKOFF_MAX: Duration = Duration::from_secs(1);

/// True once the follower runtime should stop: the server is draining
/// or this replica was promoted to leader.
fn follow_done(shared: &Shared) -> bool {
    shared.shutdown.load(Ordering::SeqCst) || !shared.repl.follower.load(Ordering::SeqCst)
}

/// The follower thread: subscribe, apply, and on any disconnection
/// resubscribe from the last applied sequence with capped exponential
/// backoff — the leader answers from checkpoint + WAL exactly like
/// local recovery would.
fn follower_loop(shared: &Shared, leader: &str) {
    let mut backoff = FOLLOW_BACKOFF_MIN;
    loop {
        if follow_done(shared) {
            return;
        }
        let outcome = follow_once(shared, leader);
        if shared.repl.connected.swap(false, Ordering::SeqCst) {
            // The subscription was live; start the backoff over.
            backoff = FOLLOW_BACKOFF_MIN;
        }
        match outcome {
            Ok(()) => return,
            Err(e) => {
                obs::counter!(
                    "gkbms_replication_reconnects_total",
                    "Follower reconnect attempts after a failed or dropped subscription"
                )
                .inc();
                obs::gauge!(
                    "gkbms_replication_connected",
                    "1 while the follower's subscription to the leader is live"
                )
                .set(0);
                // Surfaced for operators; the loop itself just retries.
                let _ = e;
            }
        }
        let deadline = Instant::now() + backoff;
        while Instant::now() < deadline {
            if follow_done(shared) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        backoff = (backoff * 2).min(FOLLOW_BACKOFF_MAX);
    }
}

/// One subscription: connect, hand the leader our applied position,
/// then apply the push stream until it ends. `Ok(())` means a clean
/// stop (shutdown or promotion); `Err` asks the outer loop to retry.
fn follow_once(shared: &Shared, leader: &str) -> Result<(), ReplError> {
    let mut stream = TcpStream::connect(leader)?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.poll_interval));
    let (applied, epoch) = {
        let g = read_state(shared);
        (g.applied_seq(), g.epoch())
    };
    proto::write_frame(
        &mut stream,
        &Request::Replicate {
            applied_seq: applied,
            epoch,
        }
        .encode(),
    )?;
    let mut applier = StreamApplier::new(applied, epoch);
    let mut snapshot: Option<Vec<Vec<u8>>> = None;
    loop {
        if follow_done(shared) {
            return Ok(());
        }
        let payload = match proto::read_frame(&mut stream)? {
            FrameRead::Frame(p) => p,
            FrameRead::Idle => continue,
            FrameRead::Eof => {
                return Err(ReplError::Protocol("leader closed the stream".into()));
            }
        };
        if ReplMsg::peek_opcode(&payload).is_none_or(|op| op < replication::msg::MSG_BASE) {
            // A plain Response on the stream: the handshake was
            // refused (fencing, journal-less leader, …).
            let resp = Response::decode(&payload)
                .map_err(|e| ReplError::Protocol(format!("unreadable refusal: {e}")))?;
            if let Response::Error {
                code: ErrorCode::Fenced,
                ..
            } = &resp
            {
                obs::counter!(
                    "gkbms_replication_fenced_total",
                    "Replication records or subscriptions refused by sequence-epoch fencing"
                )
                .inc();
            }
            return Err(ReplError::Protocol(format!(
                "leader refused the subscription: {resp:?}"
            )));
        }
        match ReplMsg::decode(&payload)? {
            ReplMsg::Hello { leader_seq, .. } | ReplMsg::Heartbeat { leader_seq, .. } => {
                shared.repl.leader_seq.store(leader_seq, Ordering::SeqCst);
                shared.repl.connected.store(true, Ordering::SeqCst);
                obs::gauge!(
                    "gkbms_replication_connected",
                    "1 while the follower's subscription to the leader is live"
                )
                .set(1);
                observe_lag(shared);
            }
            ReplMsg::SnapshotStart { .. } => snapshot = Some(Vec::new()),
            ReplMsg::SnapshotChunk { payloads } => match &mut snapshot {
                Some(acc) => acc.extend(payloads),
                None => {
                    return Err(ReplError::Protocol("snapshot chunk before start".into()));
                }
            },
            ReplMsg::SnapshotEnd => {
                let Some(payloads) = snapshot.take() else {
                    return Err(ReplError::Protocol("snapshot end before start".into()));
                };
                applier = install_snapshot(shared, payloads)?;
                observe_lag(shared);
            }
            ReplMsg::Ops {
                leader_seq,
                records,
            } => {
                shared.repl.leader_seq.store(leader_seq, Ordering::SeqCst);
                // Test hook: keep observing the leader's position (so
                // lag is visible) but defer applying the batch.
                while shared.repl.apply_paused.load(Ordering::SeqCst) && !follow_done(shared) {
                    std::thread::sleep(Duration::from_millis(5));
                }
                if follow_done(shared) {
                    return Ok(());
                }
                apply_batch(shared, &mut applier, &records)?;
                observe_lag(shared);
            }
        }
    }
}

/// Records the replica's position and lag in the metrics registry.
fn observe_lag(shared: &Shared) {
    let applied = shared.repl.applied_seq.load(Ordering::SeqCst);
    obs::gauge!(
        "gkbms_replication_applied_seq",
        "Ops this replica has applied from the leader's stream"
    )
    .set(applied.min(i64::MAX as u64) as i64);
    let lag = shared.repl.lag();
    obs::gauge!(
        "gkbms_replication_lag_ops_current",
        "Committed leader ops this replica has not applied yet"
    )
    .set(lag.min(i64::MAX as u64) as i64);
    obs::value_histogram!(
        "gkbms_replication_lag_ops",
        "Distribution of replica lag behind the leader's committed sequence, in ops"
    )
    .observe(lag);
}

/// Replaces the replica's state from a shipped checkpoint snapshot:
/// install (journaled replicas persist it and drop their stale WAL),
/// publish, and re-pin every session at the fresh head. Returns the
/// applier positioned after the snapshot's covered sequence.
fn install_snapshot(shared: &Shared, payloads: Vec<Vec<u8>>) -> Result<StreamApplier, ReplError> {
    obs::counter!(
        "gkbms_replication_snapshots_installed_total",
        "Checkpoint snapshots installed by this replica during catch-up"
    )
    .inc();
    let mut g = write_state(shared);
    let dir = g.journal().map(|j| j.dir().to_path_buf());
    let fresh = match dir {
        Some(dir) => Gkbms::install_replica_snapshot(&dir, payloads).map(|(g, _)| g),
        None => Gkbms::replica_from_snapshot(&payloads),
    }
    .map_err(|e| ReplError::Protocol(format!("snapshot install: {e}")))?;
    *g = fresh;
    let now = g.kb().now();
    let applied = g.applied_seq();
    let epoch = g.epoch();
    shared.chain.publish(g.kb().version());
    drop(g);
    shared.repl.applied_seq.store(applied, Ordering::SeqCst);
    shared.repl.epoch.store(epoch, Ordering::SeqCst);
    shared.repl.commit.advance(applied, epoch);
    // Old pins reference a store that no longer exists; re-pin every
    // session at the fresh head (mirrors `Load`).
    let pin = shared.chain.acquire();
    lock_sessions(shared).repin_all(now, pin);
    Ok(StreamApplier::new(applied, epoch))
}

/// Applies one shipped batch under the write lock. The whole batch is
/// admitted first — a spliced stream (gap, regression, fenced epoch)
/// is refused as a typed error *before* anything touches the replica,
/// and the caller disconnects instead of applying out of order.
fn apply_batch(
    shared: &Shared,
    applier: &mut StreamApplier,
    records: &[replication::ShippedRecord],
) -> Result<(), ReplError> {
    if records.is_empty() {
        return Ok(());
    }
    let mut probe = applier.clone();
    for r in records {
        if let Err(e) = probe.admit(r.seq, r.epoch) {
            if matches!(e, ReplError::EpochFenced { .. }) {
                obs::counter!(
                    "gkbms_replication_fenced_total",
                    "Replication records or subscriptions refused by sequence-epoch fencing"
                )
                .inc();
            }
            return Err(e);
        }
    }
    let mut g = write_state(shared);
    for r in records {
        applier
            .admit(r.seq, r.epoch)
            .expect("batch admitted by probe");
        g.apply_replicated(r.seq, r.epoch, &r.payload)
            .map_err(|e| ReplError::Protocol(format!("apply op {}: {e}", r.seq)))?;
    }
    // Publish once per batch, still under the write guard, so session
    // snapshots observe replicated commits in order.
    shared.chain.publish(g.kb().version());
    let applied = g.applied_seq();
    let epoch = g.epoch();
    drop(g);
    shared.repl.applied_seq.store(applied, Ordering::SeqCst);
    shared.repl.epoch.store(epoch, Ordering::SeqCst);
    // Chained subscribers of this replica may now ship these records.
    shared.repl.commit.advance(applied, epoch);
    obs::counter!(
        "gkbms_replication_records_applied_total",
        "Shipped records applied into this replica"
    )
    .add(records.len() as u64);
    sweep_sessions(shared);
    Ok(())
}
