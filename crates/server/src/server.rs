//! The concurrent GKBMS service.
//!
//! # Concurrency model
//!
//! Writers (TELL, UNTELL, EXECUTE, …) serialize behind the write guard
//! of one [`RwLock`]; session reads (ASK, HOLDS, session stats) do
//! **not** take that lock at all. Every acknowledged mutation
//! publishes an immutable [`telos::KbVersion`] — a structural-sharing
//! capture, O(touched chunks) — into a [`gkbms::mvcc::VersionChain`]
//! while still holding the write guard, so versions appear in commit
//! order. A session pins the chain head at Hello (or Refresh) and
//! serves every read from its pinned version at its watermark:
//! lock-free with respect to writers, and stable no matter how many
//! commits land meanwhile.
//!
//! Belief time supplies the isolation *semantics*: every write path
//! calls [`Gkbms::begin_write`] — a belief-clock tick — before
//! mutating, so nothing a writer adds is visible below any pinned
//! watermark, and nothing it retracts disappears from one (UNTELL only
//! closes belief intervals). The version chain supplies the isolation
//! *mechanics*: superseded versions are reclaimed epoch-wise once
//! their last pinned reader departs (session Bye, Refresh, or
//! idle-timeout sweep — sweeps run on every publish and on idle
//! connection polls so an abandoned session cannot retain history
//! forever). Rare administrative reads (SHOW, HISTORY, STATUS, SAVE,
//! LINT, …) still use the read guard: they want the live state and
//! are not on the hot path.
//!
//! Each TCP connection gets a handler thread. Work-carrying requests
//! pass an admission gate bounded by [`Config::max_inflight`]; beyond
//! the bound the server answers `Overloaded` immediately, without
//! queueing — the bounded "queue" is the set of in-flight requests,
//! and backpressure is pushed to the client. Control requests
//! (`Hello`, `Bye`, `Ping`, `Shutdown`, `Metrics`) bypass the gate.
//!
//! # Observability
//!
//! Every dispatched request lands in the process-wide [`obs`]
//! registry: per-op request counters and latency histograms, bytes
//! in/out, admission-gate rejections, writer-lock wait time, session
//! lifecycle counts. The registry is scraped with a `Metrics` frame
//! (or `\metrics` in cbshell) and rendered in Prometheus text format.
//! ASKs slower than [`Config::slow_query_threshold`] additionally
//! land in a bounded slow-query log ([`Server::slow_queries`]).
//!
//! # Shutdown
//!
//! Graceful: the flag flips (via a `Shutdown` frame or
//! [`Server::initiate_shutdown`]), the accept loop stops taking
//! connections, in-flight requests run to completion and their
//! responses are written, later requests get `ShuttingDown`, and
//! handler threads exit at their next idle poll. [`Server::join`]
//! waits for all of that and hands the final [`Gkbms`] back.

use crate::proto::{self, ErrorCode, FrameRead, Request, Response, WireDiagnostic, WireDischarge};
use crate::session::{SessionErr, SessionTable};
use gkbms::mvcc::{Version, VersionChain};
use gkbms::{DecisionRequest, Discharge, FsyncPolicy, Gkbms, GkbmsError};
use objectbase::transform::frame_of;
use std::collections::VecDeque;
use std::fs::File;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, RwLockWriteGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use storage::record::HEADER_LEN;
use telos::KbVersion;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Admission bound: work-carrying requests in flight beyond this
    /// get an immediate `Overloaded` reply.
    pub max_inflight: usize,
    /// Sessions idle longer than this are reaped.
    pub idle_timeout: Duration,
    /// How often blocked connection reads wake to poll the shutdown
    /// flag (also bounds how long drain waits for idle connections).
    pub poll_interval: Duration,
    /// Upper bound on the diagnostic `Sleep` request, so a misbehaving
    /// client cannot park an admission slot indefinitely.
    pub max_sleep: Duration,
    /// ASKs taking at least this long land in the slow-query log (and
    /// bump `gkbms_slow_queries_total`). `None` disables the log.
    pub slow_query_threshold: Option<Duration>,
    /// When journal WAL appends are forced to stable storage before a
    /// mutation is acknowledged. Only effective when the [`Gkbms`]
    /// handed to [`Server::bind`] has a journal attached (see
    /// [`Gkbms::recover`]). `Always` fsyncs per op under the write
    /// lock; `Group` batches one fsync across concurrent writers
    /// (group commit); `Never` leaves durability to checkpoints.
    pub fsync: FsyncPolicy,
    /// Auto-checkpoint: compact the journal after this many WAL ops.
    /// `None` leaves checkpointing to explicit `Checkpoint` requests.
    pub checkpoint_every: Option<u64>,
    /// When true, TELLs carrying lint *warnings* are rejected like
    /// errors (errors always reject the batch at admission time).
    pub strict_lint: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_inflight: 64,
            idle_timeout: Duration::from_secs(300),
            poll_interval: Duration::from_millis(100),
            max_sleep: Duration::from_secs(30),
            slow_query_threshold: Some(Duration::from_millis(250)),
            fsync: FsyncPolicy::Group(Duration::ZERO),
            checkpoint_every: None,
            strict_lint: false,
        }
    }
}

/// Group commit: one leader fsync covers every WAL op appended (and
/// flushed, which appends do under the write lock) before it started.
///
/// Durability is tracked in the journal's monotonic *op sequence*, not
/// in WAL byte offsets — checkpoints truncate the WAL, but op numbers
/// keep growing, and a checkpoint makes every op up to its point
/// durable via the snapshot (see [`GroupCommit::mark_durable`]).
struct GroupCommit {
    /// Clone of the WAL file handle; shares the open file description
    /// with the journal, so it survives checkpoint truncations and can
    /// be fsynced without holding the state lock.
    file: File,
    state: Mutex<GcState>,
    cv: Condvar,
}

struct GcState {
    /// Highest op sequence number known durable.
    durable_op: u64,
    /// Highest op any waiter has asked to make durable.
    requested_max: u64,
    /// A leader is currently fsyncing.
    leader: bool,
}

impl GroupCommit {
    fn new(file: File, durable_op: u64) -> GroupCommit {
        GroupCommit {
            file,
            state: Mutex::new(GcState {
                durable_op,
                requested_max: durable_op,
                leader: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GcState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until every WAL op up to and including `op` is on stable
    /// storage. The first waiter becomes the leader: it optionally
    /// waits `interval` for more commits to accumulate, issues one
    /// fsync, and wakes everyone whose ops it covered.
    fn wait_durable(&self, op: u64, interval: Duration) -> io::Result<()> {
        let mut st = self.lock();
        if st.requested_max < op {
            st.requested_max = op;
        }
        loop {
            if st.durable_op >= op {
                return Ok(());
            }
            if st.leader {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            st.leader = true;
            drop(st);
            if !interval.is_zero() {
                std::thread::sleep(interval);
            }
            // Everything requested by now has been appended *and
            // flushed* (appends flush under the state write lock before
            // the writer starts waiting), so one fsync covers it all.
            let goal = self.lock().requested_max;
            let started = Instant::now();
            let outcome = self.file.sync_data();
            obs::histogram!(
                "gkbms_journal_fsync_seconds",
                "Latency of WAL fsyncs (per-op and group-commit)"
            )
            .observe(started.elapsed());
            st = self.lock();
            st.leader = false;
            match outcome {
                Ok(()) => {
                    let covered = goal.saturating_sub(st.durable_op);
                    if goal > st.durable_op {
                        st.durable_op = goal;
                    }
                    obs::counter!(
                        "gkbms_group_commit_batches_total",
                        "Group-commit fsync batches issued"
                    )
                    .inc();
                    obs::counter!(
                        "gkbms_group_commit_batched_ops_total",
                        "WAL ops made durable by group-commit batches"
                    )
                    .add(covered);
                    self.cv.notify_all();
                }
                Err(e) => {
                    // Wake the others so they elect a new leader (or
                    // fail in turn) rather than waiting forever.
                    self.cv.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Records that every op up to `op` is durable without an fsync —
    /// a checkpoint's snapshot already covers them.
    fn mark_durable(&self, op: u64) {
        let mut st = self.lock();
        if op > st.durable_op {
            st.durable_op = op;
            self.cv.notify_all();
        }
    }
}

/// One entry of the slow-query log: an ASK that crossed
/// [`Config::slow_query_threshold`], with its evaluation statistics.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// The query as issued (`ASK var/class WHERE expr`).
    pub source: String,
    /// Wall-clock evaluation time.
    pub duration: Duration,
    /// Semi-naive rounds of the evaluation.
    pub rounds: u64,
    /// Facts derived (including duplicates).
    pub derivations: u64,
    /// Genuinely new facts.
    pub new_facts: u64,
    /// Index probes performed.
    pub index_probes: u64,
    /// Tuples scanned.
    pub tuples_scanned: u64,
}

/// Bound on the slow-query ring: old entries fall off the front.
const SLOW_LOG_CAP: usize = 64;

/// The pin a session holds on a store version.
type SessionPin = gkbms::mvcc::Pin<KbVersion>;

struct Shared {
    state: RwLock<Gkbms>,
    /// Immutable store versions, one published per acknowledged
    /// mutation (under the write guard, so in commit order). Session
    /// reads are served from pinned versions, never from `state`.
    chain: VersionChain<KbVersion>,
    sessions: Mutex<SessionTable<SessionPin>>,
    inflight: AtomicUsize,
    shutdown: AtomicBool,
    slow_log: Mutex<VecDeque<SlowQuery>>,
    /// Present iff the state has a journal attached at bind time.
    gc: Option<GroupCommit>,
    cfg: Config,
    addr: SocketAddr,
}

/// Decrements the in-flight count when a work-carrying request ends,
/// whichever way it ends.
struct AdmissionGuard<'a>(&'a Shared);

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running GKBMS service.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`), takes ownership of the
    /// knowledge base, and starts accepting connections. If the
    /// knowledge base has a journal attached (see [`Gkbms::recover`]),
    /// every acknowledged mutation is appended to the WAL and made
    /// durable per [`Config::fsync`].
    pub fn bind<A: ToSocketAddrs>(addr: A, mut state: Gkbms, cfg: Config) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let gc = match state.journal_mut() {
            Some(j) => {
                // Baseline: everything appended so far is made durable
                // now, so group commit only ever owes fsyncs for ops
                // appended while serving.
                j.sync().map_err(|e| io::Error::other(e.to_string()))?;
                let durable = j.appended_ops();
                let file = j.file().map_err(|e| io::Error::other(e.to_string()))?;
                Some(GroupCommit::new(file, durable))
            }
            None => None,
        };
        let chain = VersionChain::new(state.kb().version());
        let shared = Arc::new(Shared {
            state: RwLock::new(state),
            chain,
            sessions: Mutex::new(SessionTable::new(cfg.idle_timeout)),
            inflight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            slow_log: Mutex::new(VecDeque::new()),
            gc,
            cfg,
            addr: local,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("gkbms-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server {
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// True once shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the shutdown flag and pokes the accept loop awake. Does
    /// not wait for drain; see [`Server::join`].
    pub fn initiate_shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Number of live store versions: the head plus every superseded
    /// version still pinned by a session. Converges to 1 when all
    /// sessions are closed, refreshed, or reaped.
    pub fn store_versions_live(&self) -> usize {
        self.shared.chain.live_versions()
    }

    /// Number of distinct store epochs currently pinned by sessions.
    pub fn pinned_store_epochs(&self) -> usize {
        self.shared.chain.pinned_epochs()
    }

    /// The slow-query log, oldest first (bounded; see
    /// [`Config::slow_query_threshold`]).
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        let log = self
            .shared
            .slow_log
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        log.iter().cloned().collect()
    }

    /// Blocks until shutdown has been initiated (locally or by a
    /// `Shutdown` frame) and everything has drained, then returns the
    /// final knowledge base. Fails with a typed [`JoinError`] — never
    /// a panic — if a handler thread outlives the drain grace period.
    pub fn join(mut self) -> Result<Gkbms, JoinError> {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // The accept loop joins every handler before exiting, so the
        // remaining Arc references are gone or about to be; give
        // stragglers a short grace period instead of panicking.
        let mut shared = self.shared;
        for _ in 0..JOIN_GRACE_ROUNDS {
            match Arc::try_unwrap(shared) {
                Ok(s) => return Ok(s.state.into_inner().unwrap_or_else(|e| e.into_inner())),
                Err(still_shared) => {
                    shared = still_shared;
                    std::thread::sleep(JOIN_GRACE_STEP);
                }
            }
        }
        Err(JoinError::ConnectionsOutlivedJoin)
    }

    /// [`Server::initiate_shutdown`] then [`Server::join`].
    pub fn shutdown(self) -> Result<Gkbms, JoinError> {
        self.initiate_shutdown();
        self.join()
    }
}

/// How many [`JOIN_GRACE_STEP`]-long rounds [`Server::join`] waits for
/// connection threads to release the shared state (~2 s total).
const JOIN_GRACE_ROUNDS: u32 = 200;
const JOIN_GRACE_STEP: Duration = Duration::from_millis(10);

/// Failure to recover the knowledge base on [`Server::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinError {
    /// Connection threads still referenced the server state after the
    /// drain grace period; the knowledge base cannot be handed back.
    ConnectionsOutlivedJoin,
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::ConnectionsOutlivedJoin => {
                f.write_str("connection threads outlived join; state still shared")
            }
        }
    }
}

impl std::error::Error for JoinError {}

fn begin_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    // Unblock the accept loop with a throwaway connection; it checks
    // the flag before handling anything.
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(&shared);
        if let Ok(h) = std::thread::Builder::new()
            .name("gkbms-conn".into())
            .spawn(move || handle_conn(stream, &conn_shared))
        {
            handlers.push(h);
        }
        // Opportunistically reap finished handlers so a long-lived
        // server does not accumulate joinable threads.
        handlers.retain(|h| !h.is_finished());
    }
    // Drain: every in-flight request completes and its response is
    // written before the handler notices the flag and exits.
    for h in handlers {
        let _ = h.join();
    }
}

fn handle_conn(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.poll_interval));
    loop {
        match proto::read_frame(&mut stream) {
            Ok(FrameRead::Frame(payload)) => {
                obs::counter!(
                    "gkbms_bytes_read_total",
                    "Request bytes received, including frame headers"
                )
                .add((payload.len() + HEADER_LEN) as u64);
                let (resp, shutdown_after) = process(shared, &payload);
                let encoded = resp.encode();
                obs::counter!(
                    "gkbms_bytes_written_total",
                    "Response bytes sent, including frame headers"
                )
                .add((encoded.len() + HEADER_LEN) as u64);
                if proto::write_frame(&mut stream, &encoded).is_err() {
                    break;
                }
                if shutdown_after {
                    begin_shutdown(shared);
                }
            }
            Ok(FrameRead::Idle) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Reap idled-out sessions even when no requests arrive:
                // a leaked session must not pin a store version (and
                // the history behind it) forever.
                sweep_sessions(shared);
            }
            Ok(FrameRead::Eof) | Err(_) => break,
        }
    }
}

fn err(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        message: message.into(),
    }
}

fn session_err(e: SessionErr, id: u64) -> Response {
    match e {
        SessionErr::Unknown => err(ErrorCode::UnknownSession, format!("session {id}")),
        SessionErr::Expired => err(ErrorCode::SessionExpired, format!("session {id} idled out")),
    }
}

/// Handles one decoded frame. The bool asks the caller to begin
/// shutdown *after* the response has been written.
fn process(shared: &Shared, payload: &[u8]) -> (Response, bool) {
    let started = Instant::now();
    let req = match Request::decode(payload) {
        Ok(r) => r,
        Err(e) => {
            obs::counter!(
                "gkbms_bad_requests_total",
                "Frames that failed to decode as a request"
            )
            .inc();
            return (err(ErrorCode::BadRequest, e.to_string()), false);
        }
    };
    let op = req.op_name();
    let result = process_decoded(shared, req);
    if obs::enabled() {
        let reg = obs::registry();
        reg.counter(
            &format!("gkbms_requests_total{{op=\"{op}\"}}"),
            "Requests dispatched, by operation",
        )
        .inc();
        reg.histogram(
            &format!("gkbms_request_seconds{{op=\"{op}\"}}"),
            "Request handling latency, by operation",
        )
        .observe(started.elapsed());
        if let Response::Error {
            code: ErrorCode::Overloaded,
            ..
        } = &result.0
        {
            obs::counter!(
                "gkbms_overloaded_total",
                "Requests rejected at the admission gate"
            )
            .inc();
        }
    }
    result
}

fn process_decoded(shared: &Shared, req: Request) -> (Response, bool) {
    let draining = shared.shutdown.load(Ordering::SeqCst);
    if req.is_control() {
        return control(shared, req, draining);
    }
    if draining {
        return (err(ErrorCode::ShuttingDown, "server is draining"), false);
    }
    // Admission gate: bound the work in flight, reject the overflow.
    let in_flight = shared.inflight.fetch_add(1, Ordering::SeqCst);
    if in_flight >= shared.cfg.max_inflight {
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        return (
            err(
                ErrorCode::Overloaded,
                format!("{in_flight} requests in flight"),
            ),
            false,
        );
    }
    let _permit = AdmissionGuard(shared);
    (dispatch(shared, req), false)
}

fn control(shared: &Shared, req: Request, draining: bool) -> (Response, bool) {
    match req {
        Request::Ping => (
            Response::Done {
                text: "pong".into(),
            },
            false,
        ),
        Request::Metrics => (
            Response::Metrics {
                text: obs::render_prometheus(),
            },
            false,
        ),
        Request::Hello => {
            if draining {
                return (err(ErrorCode::ShuttingDown, "server is draining"), false);
            }
            // Pin the chain head — a pointer clone, not the state
            // lock. Its capture clock is the session's watermark.
            let pin = shared.chain.acquire();
            let watermark = pin.data().now();
            let session = lock_sessions(shared).open(watermark, pin);
            (Response::Welcome { session, watermark }, false)
        }
        Request::Bye { session } => {
            lock_sessions(shared).close(session);
            (
                Response::Done {
                    text: format!("session {session} closed"),
                },
                false,
            )
        }
        Request::Shutdown { session } => {
            // Validate the session unless we are already draining (a
            // repeated Shutdown should stay idempotent).
            if !draining {
                if let Err(e) = lock_sessions(shared).touch(session) {
                    return (session_err(e, session), false);
                }
            }
            (
                Response::Done {
                    text: "shutting down".into(),
                },
                true,
            )
        }
        _ => unreachable!("is_control covers exactly these variants"),
    }
}

fn lock_sessions(shared: &Shared) -> std::sync::MutexGuard<'_, SessionTable<SessionPin>> {
    shared.sessions.lock().unwrap_or_else(|e| e.into_inner())
}

fn read_state(shared: &Shared) -> std::sync::RwLockReadGuard<'_, Gkbms> {
    shared.state.read().unwrap_or_else(|e| e.into_inner())
}

fn write_state(shared: &Shared) -> std::sync::RwLockWriteGuard<'_, Gkbms> {
    let waited = Instant::now();
    let guard = shared.state.write().unwrap_or_else(|e| e.into_inner());
    obs::histogram!(
        "gkbms_writer_lock_wait_seconds",
        "Time spent waiting to acquire the single-writer state lock"
    )
    .observe(waited.elapsed());
    guard
}

/// Completes a mutating request's commit: publishes the new store
/// version for snapshot readers, then enforces the configured fsync
/// policy (and the auto-checkpoint threshold) before the caller
/// acknowledges the mutation, releasing the write lock as early as the
/// policy allows. `mutated` is false when the operation failed and
/// appended nothing. Returns an error response if durability could not
/// be established — the mutation is applied in memory but the client
/// must not treat it as stable.
fn durable_commit(
    shared: &Shared,
    mut g: RwLockWriteGuard<'_, Gkbms>,
    mutated: bool,
) -> Result<(), Response> {
    if mutated {
        // Publish while still holding the write guard, so versions
        // enter the chain in commit order (capture is O(touched
        // chunks) thanks to structural sharing). This is the commit
        // point for snapshot readers: sessions opened after this see
        // the mutation, pinned sessions keep their version.
        shared.chain.publish(g.kb().version());
    }
    if !mutated || g.journal().is_none() {
        drop(g);
        if mutated {
            sweep_sessions(shared);
        }
        return Ok(());
    }
    let mut pending = None;
    match shared.cfg.fsync {
        FsyncPolicy::Always => {
            // Strict per-op durability: fsync while still holding the
            // write lock, one fsync per acknowledged mutation.
            if let Err(e) = g.journal_mut().expect("journal checked").sync() {
                return Err(err(ErrorCode::Internal, format!("journal fsync: {e}")));
            }
        }
        FsyncPolicy::Group(interval) => {
            pending = Some((
                g.journal().expect("journal checked").appended_ops(),
                interval,
            ));
        }
        FsyncPolicy::Never => {}
    }
    if let Some(every) = shared.cfg.checkpoint_every {
        if g.journal().expect("journal checked").ops_since_checkpoint() >= every {
            match g.checkpoint() {
                Ok(report) => {
                    if let Some(gc) = &shared.gc {
                        gc.mark_durable(report.appended_ops);
                    }
                    pending = None;
                }
                Err(e) => {
                    return Err(err(
                        ErrorCode::Internal,
                        format!("auto-checkpoint failed: {e}"),
                    ))
                }
            }
        }
    }
    drop(g);
    sweep_sessions(shared);
    if let (Some((op, interval)), Some(gc)) = (pending, &shared.gc) {
        if let Err(e) = gc.wait_durable(op, interval) {
            return Err(err(ErrorCode::Internal, format!("group-commit fsync: {e}")));
        }
    }
    Ok(())
}

/// Reaps idled-out sessions, dropping their version pins so the chain
/// can reclaim history they alone retained. Runs on every publish and
/// on idle connection polls; never called while holding the state
/// lock (sessions-then-state is the forbidden order, we take neither
/// together).
fn sweep_sessions(shared: &Shared) {
    lock_sessions(shared).sweep();
}

/// Touches the session and returns its watermark, bumping counters.
fn touch(shared: &Shared, id: u64) -> Result<i64, Response> {
    lock_sessions(shared)
        .touch(id)
        .map(|s| s.watermark)
        .map_err(|e| session_err(e, id))
}

/// Touches the session and returns its watermark plus a handle to its
/// pinned store version. The `Arc` clone keeps the version alive for
/// this request even if the session is reaped mid-read; the chain
/// mutex is never taken on this path.
fn touch_pinned(shared: &Shared, id: u64) -> Result<(i64, Arc<Version<KbVersion>>), Response> {
    lock_sessions(shared)
        .touch(id)
        .map(|s| (s.watermark, s.pin.version()))
        .map_err(|e| session_err(e, id))
}

/// Appends an over-threshold ASK to the bounded slow-query ring.
fn record_slow_query(
    shared: &Shared,
    var: &str,
    class: &str,
    expr: &str,
    duration: Duration,
    stats: &datalog::seminaive::EvalStats,
) {
    obs::counter!(
        "gkbms_slow_queries_total",
        "ASKs that crossed the slow-query threshold"
    )
    .inc();
    let mut log = shared.slow_log.lock().unwrap_or_else(|e| e.into_inner());
    if log.len() >= SLOW_LOG_CAP {
        log.pop_front();
    }
    log.push_back(SlowQuery {
        source: format!("ASK {var}/{class} WHERE {expr}"),
        duration,
        rounds: stats.rounds as u64,
        derivations: stats.derivations as u64,
        new_facts: stats.new_facts as u64,
        index_probes: stats.index_probes as u64,
        tuples_scanned: stats.tuples_scanned as u64,
    });
}

fn names(list: Vec<String>) -> Response {
    Response::Names {
        probes: 0,
        scanned: 0,
        names: list,
    }
}

fn dispatch(shared: &Shared, req: Request) -> Response {
    match req {
        Request::Refresh { session } => {
            let pin = shared.chain.acquire();
            let now = pin.data().now();
            match lock_sessions(shared).refresh(session, now, pin) {
                Ok(w) => Response::Done {
                    text: format!("watermark {w}"),
                },
                Err(e) => session_err(e, session),
            }
        }
        Request::Tell { session, src } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let mut g = write_state(shared);
            let outcome = g.tell_src_checked(&src, shared.cfg.strict_lint);
            if let Err(resp) = durable_commit(shared, g, outcome.is_ok()) {
                return resp;
            }
            match outcome {
                Ok((n, diags)) if diags.is_empty() => Response::Done {
                    text: format!("told {n} object(s)"),
                },
                Ok((n, diags)) => Response::Done {
                    text: format!(
                        "told {n} object(s); {} lint warning(s): {}",
                        diags.len(),
                        diags
                            .iter()
                            .map(|d| d.one_line())
                            .collect::<Vec<_>>()
                            .join("; ")
                    ),
                },
                Err(GkbmsError::Lint(diags)) => err(
                    ErrorCode::LintRejected,
                    diags
                        .iter()
                        .map(|d| d.one_line())
                        .collect::<Vec<_>>()
                        .join("; "),
                ),
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::Untell { session, name } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let mut g = write_state(shared);
            let outcome = g.untell(&name);
            if let Err(resp) = durable_commit(shared, g, outcome.is_ok()) {
                return resp;
            }
            match outcome {
                Ok(gone) => Response::Done {
                    text: format!("untold `{name}` ({gone} proposition(s))"),
                },
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::Ask {
            session,
            var,
            class,
            expr,
        } => {
            let (watermark, version) = match touch_pinned(shared, session) {
                Ok(wv) => wv,
                Err(resp) => return resp,
            };
            let started = Instant::now();
            // Served entirely from the session's pinned version: no
            // state lock, unaffected by concurrent writers.
            let result = objectbase::query::ask_with_stats_version(
                version.data(),
                watermark,
                &var,
                &class,
                &expr,
            );
            let elapsed = started.elapsed();
            match result {
                Ok((answers, stats)) => {
                    if shared
                        .cfg
                        .slow_query_threshold
                        .is_some_and(|t| elapsed >= t)
                    {
                        record_slow_query(shared, &var, &class, &expr, elapsed, &stats);
                    }
                    if let Ok(s) = lock_sessions(shared).touch(session) {
                        s.last_probes = stats.index_probes as u64;
                        s.last_scanned = stats.tuples_scanned as u64;
                        // The bookkeeping touch is not a client request.
                        s.requests -= 1;
                    }
                    Response::Names {
                        probes: stats.index_probes as u64,
                        scanned: stats.tuples_scanned as u64,
                        names: answers,
                    }
                }
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::Holds { session, expr } => {
            let (watermark, version) = match touch_pinned(shared, session) {
                Ok(wv) => wv,
                Err(resp) => return resp,
            };
            let parsed = match telos::assertion::parse(&expr) {
                Ok(p) => p,
                Err(e) => return err(ErrorCode::Rejected, e.to_string()),
            };
            let snap = version.data().snapshot_at(watermark);
            let mut env = telos::assertion::Env::new();
            match telos::assertion::eval(&snap, &parsed, &mut env) {
                Ok(value) => Response::Truth { value },
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::Show { session, name } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let g = read_state(shared);
            let Some(id) = g.kb().lookup(&name) else {
                return err(ErrorCode::Rejected, format!("unknown object `{name}`"));
            };
            match frame_of(g.kb(), id) {
                Ok(frame) => Response::Table {
                    text: frame.to_string(),
                },
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::ApplicableDecisions { session, object } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let g = read_state(shared);
            match g.applicable_decisions(&object) {
                Ok(rows) => names(
                    rows.into_iter()
                        .map(|(class, tools)| {
                            if tools.is_empty() {
                                class
                            } else {
                                format!("{class} [{}]", tools.join(", "))
                            }
                        })
                        .collect(),
                ),
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::Execute { session, decision } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let mut dr = DecisionRequest::new(&decision.class, &decision.name, &decision.performer);
            if let Some(tool) = &decision.tool {
                dr = dr.with_tool(tool);
            }
            for input in &decision.inputs {
                dr = dr.input(input);
            }
            for (out_name, out_class) in &decision.outputs {
                dr = dr.output(out_name, out_class);
            }
            for dis in &decision.discharges {
                dr = dr.discharge(match dis {
                    WireDischarge::Formal { obligation } => Discharge::Formal {
                        obligation: obligation.clone(),
                    },
                    WireDischarge::Signature { obligation, by } => Discharge::Signature {
                        obligation: obligation.clone(),
                        by: by.clone(),
                    },
                });
            }
            let mut g = write_state(shared);
            g.begin_write();
            let outcome = g.execute(dr);
            if let Err(resp) = durable_commit(shared, g, outcome.is_ok()) {
                return resp;
            }
            match outcome {
                Ok(summary) => Response::Done {
                    text: format!(
                        "executed {}: created [{}] at tick {}",
                        summary.name,
                        summary.created.join(", "),
                        summary.tick
                    ),
                },
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::RetractDecision { session, name } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let mut g = write_state(shared);
            g.begin_write();
            let outcome = g.retract_decision(&name);
            if let Err(resp) = durable_commit(shared, g, outcome.is_ok()) {
                return resp;
            }
            match outcome {
                Ok(affected) => names(affected),
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::History { session } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            Response::Table {
                text: read_state(shared).process_view().render(),
            }
        }
        Request::Status { session } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            Response::Table {
                text: read_state(shared).status_view().render(),
            }
        }
        Request::ObjectHistory { session, object } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let g = read_state(shared);
            match g.object_history(&object) {
                Ok(rows) => names(
                    rows.into_iter()
                        .map(|(tick, event)| format!("t{tick}: {event}"))
                        .collect(),
                ),
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::SessionStats { session } => {
            let (watermark, requests, probes, scanned, version) = {
                let mut sessions = lock_sessions(shared);
                match sessions.touch(session) {
                    Ok(s) => (
                        s.watermark,
                        s.requests,
                        s.last_probes,
                        s.last_scanned,
                        s.pin.version(),
                    ),
                    Err(e) => return session_err(e, session),
                }
            };
            Response::SessionInfo {
                session,
                watermark,
                // The chain head is published per commit, so its
                // capture clock is the live clock — no state lock.
                kb_now: shared.chain.head().data().now(),
                requests,
                believed: version.data().snapshot_at(watermark).believed_count() as u64,
                probes,
                scanned,
            }
        }
        Request::Save { session, path } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let g = read_state(shared);
            match g.save(&path) {
                Ok(()) => Response::Done {
                    text: format!("saved to {path}"),
                },
                Err(e) => err(ErrorCode::Internal, e.to_string()),
            }
        }
        Request::Load { session, path } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            if shared.gc.is_some() {
                return err(
                    ErrorCode::Rejected,
                    "cannot load into a journaled server: state is owned by the journal \
                     (restart with a different --journal dir instead)",
                );
            }
            match Gkbms::load(&path) {
                Ok(fresh) => {
                    let mut g = write_state(shared);
                    *g = fresh;
                    let now = g.kb().now();
                    shared.chain.publish(g.kb().version());
                    drop(g);
                    // Old watermarks and versions refer to a store
                    // that no longer exists; re-pin every session to
                    // the fresh head.
                    let pin = shared.chain.acquire();
                    lock_sessions(shared).repin_all(now, pin);
                    Response::Done {
                        text: format!("loaded from {path}"),
                    }
                }
                Err(e) => err(ErrorCode::Internal, e.to_string()),
            }
        }
        Request::Checkpoint { session } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let mut g = write_state(shared);
            match g.checkpoint() {
                Ok(report) => {
                    // The snapshot covers everything appended so far, so
                    // waiting group committers are durable too.
                    if let Some(gc) = &shared.gc {
                        gc.mark_durable(report.appended_ops);
                    }
                    Response::Done {
                        text: format!(
                            "checkpointed: {} op(s) compacted into the snapshot",
                            report.compacted_ops
                        ),
                    }
                }
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::Lint { session, src } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let diags = read_state(shared).lint_src(&src);
            Response::Diagnostics {
                diags: diags.iter().map(WireDiagnostic::from_diagnostic).collect(),
            }
        }
        Request::Sleep { session, millis } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let capped = Duration::from_millis(millis).min(shared.cfg.max_sleep);
            std::thread::sleep(capped);
            Response::Done {
                text: format!("slept {} ms", capped.as_millis()),
            }
        }
        Request::RegisterObject {
            session,
            name,
            class,
            source,
        } => {
            if let Err(resp) = touch(shared, session) {
                return resp;
            }
            let mut g = write_state(shared);
            g.begin_write();
            let outcome = g.register_object(&name, &class, &source);
            if let Err(resp) = durable_commit(shared, g, outcome.is_ok()) {
                return resp;
            }
            match outcome {
                Ok(_) => Response::Done {
                    text: format!("registered `{name}` in `{class}`"),
                },
                Err(e) => err(ErrorCode::Rejected, e.to_string()),
            }
        }
        Request::Hello
        | Request::Bye { .. }
        | Request::Ping
        | Request::Shutdown { .. }
        | Request::Metrics => {
            unreachable!("control requests are handled before dispatch")
        }
    }
}
