//! Crash-injection utilities for durability testing.
//!
//! A real kill-at-arbitrary-instant test would need process control the
//! test harness does not have; the observable effect of such a kill on
//! an append-only log, however, is fully described by the bytes that
//! reached the disk. These helpers simulate the outcome of a crash by
//! copying on-disk state and mutilating the copy:
//!
//! * truncation at an arbitrary offset models a kill mid-write (the
//!   tail of the file never made it to the platter);
//! * a flipped byte models sector rot or a misdirected write inside the
//!   committed region.
//!
//! Recovery code is then run against the mutilated copy and must uphold
//! the durability contract: every record acknowledged as synced before
//! the "crash" survives, no interior record is silently dropped, and
//! malformed bytes produce typed errors rather than panics.

use crate::error::StorageResult;
use std::fs;
use std::io;
use std::path::Path;

fn out_of_range(what: &str, offset: u64, len: u64) -> crate::error::StorageError {
    crate::error::StorageError::Io(io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("{what} offset {offset} out of range for {len}-byte file"),
    ))
}

/// Copies `src` to `dst`, truncated to the first `len` bytes — the
/// on-disk image a crash would leave if only `len` bytes had reached
/// stable storage. `len` past the end of `src` copies the whole file.
pub fn truncated_copy(src: impl AsRef<Path>, dst: impl AsRef<Path>, len: u64) -> StorageResult<()> {
    let mut bytes = fs::read(src)?;
    // Clamp in u64 before casting: a plain `len as usize` would wrap on
    // 32-bit targets and silently keep the wrong prefix.
    let keep = len.min(bytes.len() as u64) as usize;
    bytes.truncate(keep);
    fs::write(dst, &bytes)?;
    Ok(())
}

/// Truncates the file at `path` in place to `len` bytes. `len` beyond
/// the current length is an error — `set_len` would zero-extend, which
/// is not an image any crash can leave.
pub fn truncate_in_place(path: impl AsRef<Path>, len: u64) -> StorageResult<()> {
    let f = fs::OpenOptions::new().write(true).open(path)?;
    let current = f.metadata()?.len();
    if len > current {
        return Err(out_of_range("truncate", len, current));
    }
    f.set_len(len)?;
    Ok(())
}

/// XORs the byte at `offset` with `mask` (which must be non-zero to
/// actually corrupt). Returns the original byte value; an offset at or
/// past the end of the file is an error, not a panic.
pub fn flip_byte(path: impl AsRef<Path>, offset: u64, mask: u8) -> StorageResult<u8> {
    let path = path.as_ref();
    let mut bytes = fs::read(path)?;
    let idx = match usize::try_from(offset) {
        Ok(i) if i < bytes.len() => i,
        _ => return Err(out_of_range("flip", offset, bytes.len() as u64)),
    };
    let orig = bytes[idx];
    bytes[idx] ^= mask;
    fs::write(path, &bytes)?;
    Ok(orig)
}

/// Length of the file at `path` in bytes.
pub fn file_len(path: impl AsRef<Path>) -> StorageResult<u64> {
    Ok(fs::metadata(path)?.len())
}

/// Recursively copies the directory `src` to `dst` (flat files only —
/// journal directories hold no subdirectories). `dst` is created; any
/// previous contents are removed first so each injection starts clean.
pub fn copy_dir(src: impl AsRef<Path>, dst: impl AsRef<Path>) -> StorageResult<()> {
    let dst = dst.as_ref();
    if dst.exists() {
        fs::remove_dir_all(dst)?;
    }
    fs::create_dir_all(dst)?;
    for entry in fs::read_dir(src)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            fs::copy(entry.path(), dst.join(entry.file_name()))?;
        }
    }
    Ok(())
}

/// Evenly-spaced crash offsets covering `0..=len`, always including both
/// endpoints, at most `max_points` long. With `len <= max_points` every
/// single byte offset is exercised.
pub fn crash_offsets(len: u64, max_points: usize) -> Vec<u64> {
    if len == 0 {
        return vec![0];
    }
    let n = (len + 1).min(max_points as u64);
    let mut out = Vec::with_capacity(n as usize);
    for i in 0..n {
        out.push(i * len / (n - 1).max(1));
    }
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cb-crash-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn truncated_copy_clamps_to_file_length() {
        let src = tmp("tc-src");
        let dst = tmp("tc-dst");
        fs::write(&src, b"0123456789").unwrap();
        truncated_copy(&src, &dst, 4).unwrap();
        assert_eq!(fs::read(&dst).unwrap(), b"0123");
        truncated_copy(&src, &dst, 400).unwrap();
        assert_eq!(fs::read(&dst).unwrap(), b"0123456789");
        fs::remove_file(&src).unwrap();
        fs::remove_file(&dst).unwrap();
    }

    #[test]
    fn flip_byte_corrupts_and_reports_original() {
        let p = tmp("flip");
        fs::write(&p, b"abc").unwrap();
        let orig = flip_byte(&p, 1, 0xFF).unwrap();
        assert_eq!(orig, b'b');
        assert_eq!(fs::read(&p).unwrap(), vec![b'a', b'b' ^ 0xFF, b'c']);
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn out_of_range_injections_error_instead_of_panicking() {
        let p = tmp("oob");
        fs::write(&p, b"abc").unwrap();
        // Flip at and past the end: typed error, file untouched.
        assert!(flip_byte(&p, 3, 0xFF).is_err());
        assert!(flip_byte(&p, u64::MAX, 0xFF).is_err());
        assert_eq!(fs::read(&p).unwrap(), b"abc");
        // In-place truncation may shrink (or keep) but never extend.
        assert!(truncate_in_place(&p, 4).is_err());
        truncate_in_place(&p, 3).unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"abc");
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn copy_dir_replaces_destination() {
        let src = tmp("cd-src");
        let dst = tmp("cd-dst");
        fs::create_dir_all(&src).unwrap();
        fs::write(src.join("wal"), b"wal-bytes").unwrap();
        fs::create_dir_all(&dst).unwrap();
        fs::write(dst.join("stale"), b"old").unwrap();
        copy_dir(&src, &dst).unwrap();
        assert_eq!(fs::read(dst.join("wal")).unwrap(), b"wal-bytes");
        assert!(!dst.join("stale").exists());
        fs::remove_dir_all(&src).unwrap();
        fs::remove_dir_all(&dst).unwrap();
    }

    #[test]
    fn crash_offsets_cover_endpoints_and_bound_count() {
        assert_eq!(crash_offsets(0, 10), vec![0]);
        let all = crash_offsets(5, 100);
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
        let strided = crash_offsets(10_000, 201);
        assert!(strided.len() <= 201);
        assert_eq!(*strided.first().unwrap(), 0);
        assert_eq!(*strided.last().unwrap(), 10_000);
        // Strictly increasing.
        assert!(strided.windows(2).all(|w| w[0] < w[1]));
    }
}
