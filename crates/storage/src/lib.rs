#![warn(missing_docs)]

//! Physical storage substrate for the proposition base.
//!
//! The paper (§3.1) requires that "several physical representations
//! (e.g. Prolog workspaces, external databases) of propositions can be
//! managed by the proposition base". This crate provides the building
//! blocks for such representations:
//!
//! * [`record`] — a length-prefixed, CRC-checked binary record format;
//! * [`log`] — an append-only segment log with torn-tail recovery;
//! * [`crash`] — crash-injection helpers for durability tests;
//! * [`kv`] — a log-structured key-value store with compaction;
//! * [`pager`] — a fixed-size page cache with LRU eviction;
//! * [`heap`] — a slotted heap file of variable-length records on top of
//!   the pager;
//! * [`index`] — ordered in-memory secondary indexes.
//!
//! The `telos` crate builds its persistent proposition-base backend from
//! these pieces; an in-memory backend needs only [`index`].

pub mod crash;
pub mod error;
pub mod heap;
pub mod index;
pub mod kv;
pub mod log;
pub mod pager;
pub mod record;

pub use error::{StorageError, StorageResult};
pub use kv::KvStore;
pub use log::{AppendLog, Lsn};
