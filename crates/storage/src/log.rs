//! Append-only record log with torn-tail recovery.
//!
//! The log is the durability primitive behind the persistent proposition
//! base: every `TELL` appends one record, and recovery replays the log in
//! order. A torn write at the very tail (process killed mid-append) is
//! truncated away; corruption anywhere *before* the tail is a hard error,
//! because silently dropping interior history would violate the paper's
//! "nothing is ever destructively deleted" documentation discipline.

use crate::error::{StorageError, StorageResult};
use crate::record::{self, ReadOutcome};
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Log sequence number: byte offset of a record's header in the log file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lsn(pub u64);

/// What `open` found at the tail of an existing log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailState {
    /// Log ended cleanly on a record boundary.
    Clean,
    /// A torn record was truncated at this offset.
    TruncatedAt(u64),
}

/// An append-only log of CRC-checked records in a single file.
pub struct AppendLog {
    path: PathBuf,
    writer: BufWriter<File>,
    /// Next append offset == current logical length.
    tail: u64,
    /// Number of live records.
    records: u64,
    tail_state: TailState,
}

impl AppendLog {
    /// Opens (or creates) the log at `path`, scanning it to validate all
    /// records and locate the tail. A torn final record is truncated (and
    /// the truncation is synced, so a crash right after recovery cannot
    /// resurrect the torn bytes). Creating a fresh log syncs the parent
    /// directory so the file itself survives a crash.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<Self> {
        let path = path.as_ref().to_path_buf();
        let existed = path.exists();
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        if !existed {
            sync_parent_dir(&path)?;
        }
        let mut reader = BufReader::new(file.try_clone()?);
        reader.seek(SeekFrom::Start(0))?;
        let mut offset = 0u64;
        let mut records = 0u64;
        let mut tail_state = TailState::Clean;
        loop {
            match record::read_record(&mut reader, offset)? {
                ReadOutcome::Record(payload) => {
                    offset += (record::HEADER_LEN + payload.len()) as u64;
                    records += 1;
                }
                ReadOutcome::Eof => break,
                ReadOutcome::Torn { offset: at } => {
                    // Torn tail: truncate and carry on. sync_all (not
                    // sync_data) because the truncation changed the size,
                    // and an unsynced truncation could come back torn.
                    file.set_len(at)?;
                    file.sync_all()?;
                    tail_state = TailState::TruncatedAt(at);
                    obs::counter!(
                        "storage_log_torn_truncations_total",
                        "Torn tail records truncated away during log open"
                    )
                    .inc();
                    break;
                }
                ReadOutcome::BadCrc { offset: at } => {
                    return Err(StorageError::Corrupt {
                        offset: at,
                        detail: "crc mismatch in log interior".into(),
                    });
                }
            }
        }
        let mut writer = BufWriter::new(file);
        writer.seek(SeekFrom::Start(offset))?;
        Ok(AppendLog {
            path,
            writer,
            tail: offset,
            records,
            tail_state,
        })
    }

    /// Appends one record and returns its LSN. Data is buffered; call
    /// [`AppendLog::sync`] to force it to stable storage.
    pub fn append(&mut self, payload: &[u8]) -> StorageResult<Lsn> {
        let lsn = Lsn(self.tail);
        let written = record::write_record(&mut self.writer, payload)?;
        self.tail += written as u64;
        self.records += 1;
        obs::counter!(
            "storage_log_appends_total",
            "Records appended to append logs"
        )
        .inc();
        obs::counter!(
            "storage_log_appended_bytes_total",
            "Bytes appended to append logs (headers included)"
        )
        .add(written as u64);
        Ok(lsn)
    }

    /// Flushes buffers and fsyncs the file.
    pub fn sync(&mut self) -> StorageResult<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        obs::counter!("storage_log_fsyncs_total", "fsyncs issued by append logs").inc();
        Ok(())
    }

    /// Flushes buffered appends into the OS page cache without fsyncing.
    /// After this, a clone of [`AppendLog::file`] sees every append, so a
    /// group-commit leader can fsync outside the writer's lock.
    pub fn flush(&mut self) -> StorageResult<()> {
        self.writer.flush()?;
        Ok(())
    }

    /// Returns a cloned handle to the backing file (flushing buffered
    /// appends first). `sync_data` on the clone durably commits every
    /// append flushed so far — the handle shares one open file
    /// description with the log, so it stays valid across
    /// [`AppendLog::truncate_all`].
    pub fn file(&mut self) -> StorageResult<File> {
        self.writer.flush()?;
        Ok(self.writer.get_ref().try_clone()?)
    }

    /// Discards every record, resetting the log to empty — used after a
    /// checkpoint has compacted the log's contents into a snapshot. The
    /// truncation is fsynced. The same inode is kept, so handles from
    /// [`AppendLog::file`] remain valid.
    pub fn truncate_all(&mut self) -> StorageResult<()> {
        self.writer.flush()?;
        self.writer.get_ref().set_len(0)?;
        self.writer.seek(SeekFrom::Start(0))?;
        self.writer.get_ref().sync_all()?;
        self.tail = 0;
        self.records = 0;
        self.tail_state = TailState::Clean;
        obs::counter!(
            "storage_log_truncations_total",
            "Full log truncations after checkpoints"
        )
        .inc();
        Ok(())
    }

    /// Number of records currently in the log.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// True if the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Logical byte length (next append offset).
    pub fn byte_len(&self) -> u64 {
        self.tail
    }

    /// What `open` found at the tail.
    pub fn tail_state(&self) -> TailState {
        self.tail_state
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Iterates all records from the beginning. Buffered appends are
    /// flushed first so the iterator sees every record appended so far.
    pub fn iter(&mut self) -> StorageResult<LogIter> {
        self.writer.flush()?;
        let file = File::open(&self.path)?;
        Ok(LogIter {
            reader: BufReader::new(file),
            offset: 0,
            end: self.tail,
        })
    }
}

/// Fsyncs the parent directory of `path`, making a rename or file
/// creation inside it durable. On a crash before the directory sync, the
/// directory entry itself may be lost even though the file's bytes were
/// fsynced.
pub fn sync_parent_dir(path: impl AsRef<Path>) -> StorageResult<()> {
    let parent = match path.as_ref().parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    File::open(parent)?.sync_all()?;
    Ok(())
}

/// Iterator over `(Lsn, payload)` pairs of a log.
pub struct LogIter {
    reader: BufReader<File>,
    offset: u64,
    end: u64,
}

impl Iterator for LogIter {
    type Item = StorageResult<(Lsn, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.offset >= self.end {
            return None;
        }
        match record::read_record(&mut self.reader, self.offset) {
            Ok(ReadOutcome::Record(payload)) => {
                let lsn = Lsn(self.offset);
                self.offset += (record::HEADER_LEN + payload.len()) as u64;
                Some(Ok((lsn, payload)))
            }
            Ok(ReadOutcome::Eof) => None,
            Ok(ReadOutcome::Torn { offset }) => Some(Err(StorageError::Corrupt {
                offset,
                detail: "torn record inside committed region".into(),
            })),
            Ok(ReadOutcome::BadCrc { offset }) => Some(Err(StorageError::Corrupt {
                offset,
                detail: "crc mismatch".into(),
            })),
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cb-log-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_and_iterate() {
        let path = tmp("basic");
        let mut log = AppendLog::open(&path).unwrap();
        assert!(log.is_empty());
        let a = log.append(b"alpha").unwrap();
        let b = log.append(b"beta").unwrap();
        assert!(a < b);
        let items: Vec<_> = log.iter().unwrap().map(|r| r.unwrap().1).collect();
        assert_eq!(items, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_preserves_records() {
        let path = tmp("reopen");
        {
            let mut log = AppendLog::open(&path).unwrap();
            log.append(b"one").unwrap();
            log.append(b"two").unwrap();
            log.sync().unwrap();
        }
        let mut log = AppendLog::open(&path).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.tail_state(), TailState::Clean);
        log.append(b"three").unwrap();
        let items: Vec<_> = log.iter().unwrap().map(|r| r.unwrap().1).collect();
        assert_eq!(items.len(), 3);
        assert_eq!(items[2], b"three");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = tmp("torn");
        {
            let mut log = AppendLog::open(&path).unwrap();
            log.append(b"committed").unwrap();
            log.append(b"torn-away-record").unwrap();
            log.sync().unwrap();
        }
        // Simulate a crash mid-append of the second record.
        let full = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 5).unwrap();
        drop(f);
        let mut log = AppendLog::open(&path).unwrap();
        assert_eq!(log.len(), 1);
        assert!(matches!(log.tail_state(), TailState::TruncatedAt(_)));
        // The truncation reached the file itself (not just our view of
        // it): an independent handle sees the shortened length.
        let committed_len = std::fs::metadata(&path).unwrap().len();
        assert!(committed_len < full - 5);
        assert_eq!(committed_len, log.byte_len());
        let items: Vec<_> = log.iter().unwrap().map(|r| r.unwrap().1).collect();
        assert_eq!(items, vec![b"committed".to_vec()]);
        // The log is usable again after truncation.
        log.append(b"new").unwrap();
        assert_eq!(log.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_all_resets_and_keeps_log_usable() {
        let path = tmp("truncate-all");
        let mut log = AppendLog::open(&path).unwrap();
        log.append(b"one").unwrap();
        log.append(b"two").unwrap();
        log.sync().unwrap();
        // A file handle cloned before the truncation must stay usable
        // afterwards (group commit holds one across checkpoints).
        let handle = log.file().unwrap();
        log.truncate_all().unwrap();
        assert!(log.is_empty());
        assert_eq!(log.byte_len(), 0);
        assert_eq!(log.tail_state(), TailState::Clean);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        log.append(b"after").unwrap();
        log.flush().unwrap();
        handle.sync_data().unwrap();
        let items: Vec<_> = log.iter().unwrap().map(|r| r.unwrap().1).collect();
        assert_eq!(items, vec![b"after".to_vec()]);
        // Reopen sees only the post-truncation record.
        drop(log);
        let log = AppendLog::open(&path).unwrap();
        assert_eq!(log.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cloned_file_commits_flushed_appends() {
        let path = tmp("cloned-file");
        let mut log = AppendLog::open(&path).unwrap();
        log.append(b"payload").unwrap();
        let handle = log.file().unwrap();
        // flush happened inside file(): an independent reader already
        // sees the bytes, and sync_data on the clone makes them durable.
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            log.byte_len(),
            "file() must flush buffered appends"
        );
        handle.sync_data().unwrap();
        drop(log);
        let log = AppendLog::open(&path).unwrap();
        assert_eq!(log.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sync_parent_dir_accepts_plain_and_relative_paths() {
        let path = tmp("syncdir");
        std::fs::write(&path, b"x").unwrap();
        sync_parent_dir(&path).unwrap();
        // A bare file name has no parent component; the current
        // directory is synced instead of erroring.
        sync_parent_dir("Cargo.toml").unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn interior_corruption_is_fatal() {
        let path = tmp("corrupt");
        {
            let mut log = AppendLog::open(&path).unwrap();
            log.append(b"aaaaaaaa").unwrap();
            log.append(b"bbbbbbbb").unwrap();
            log.sync().unwrap();
        }
        // Flip a payload byte of the FIRST record.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[record::HEADER_LEN + 2] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            AppendLog::open(&path),
            Err(StorageError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lsn_is_byte_offset() {
        let path = tmp("lsn");
        let mut log = AppendLog::open(&path).unwrap();
        let a = log.append(b"xy").unwrap();
        let b = log.append(b"z").unwrap();
        assert_eq!(a, Lsn(0));
        assert_eq!(b, Lsn((record::HEADER_LEN + 2) as u64));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_log_iterates_nothing() {
        let path = tmp("empty");
        let mut log = AppendLog::open(&path).unwrap();
        assert_eq!(log.iter().unwrap().count(), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
