//! Slotted-page heap file of variable-length records.
//!
//! Each page holds a slot directory growing from the front and record
//! bytes growing from the back. Records are addressed by stable
//! [`RecordId`]s (page, slot); deletion tombstones a slot without moving
//! other records. This is the classic layout used for relation storage —
//! DBPL programs produced by the mapping assistants are "stored" in such
//! heaps in the benches.
//!
//! Page layout:
//!
//! ```text
//! [ nslots: u16 | free_lo: u16 | slots... ] ...free... [ records... ]
//! slot = [ offset: u16 | len: u16 ]   (offset == 0xFFFF means dead)
//! ```

use crate::error::{StorageError, StorageResult};
use crate::pager::{PageId, Pager, PAGE_SIZE};
use std::path::Path;

/// Stable address of a record in a heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Page containing the record.
    pub page: u64,
    /// Slot index within the page.
    pub slot: u16,
}

const HDR: usize = 4;
const SLOT: usize = 4;
const DEAD: u16 = 0xFFFF;

fn read_u16(d: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([d[at], d[at + 1]])
}

fn write_u16(d: &mut [u8], at: usize, v: u16) {
    d[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

/// A heap file storing variable-length records in slotted pages.
pub struct HeapFile {
    pager: Pager,
    /// Page currently receiving inserts.
    current: Option<PageId>,
}

impl HeapFile {
    /// Maximum insertable record size (one page minus header and slot).
    pub const MAX_RECORD: usize = PAGE_SIZE - HDR - SLOT;

    /// Opens (or creates) a heap file at `path` with a cache of
    /// `cache_pages` pages.
    pub fn open(path: impl AsRef<Path>, cache_pages: usize) -> StorageResult<Self> {
        let pager = Pager::open(path, cache_pages)?;
        let current = if pager.page_count() > 0 {
            Some(PageId(pager.page_count() - 1))
        } else {
            None
        };
        Ok(HeapFile { pager, current })
    }

    /// Inserts a record and returns its stable id.
    pub fn insert(&mut self, data: &[u8]) -> StorageResult<RecordId> {
        if data.len() > Self::MAX_RECORD {
            return Err(StorageError::RecordTooLarge(data.len()));
        }
        if let Some(page) = self.current {
            if let Some(rid) = self.try_insert(page, data)? {
                return Ok(rid);
            }
        }
        let page = self.pager.allocate()?;
        self.pager.with_page_mut(page, |d| {
            write_u16(d, 0, 0); // nslots
            write_u16(d, 2, PAGE_SIZE as u16); // free_lo (records grow down from end)
        })?;
        self.current = Some(page);
        let rid = self.try_insert(page, data)?;
        Ok(rid.expect("fresh page must fit a MAX_RECORD-bounded record"))
    }

    fn try_insert(&mut self, page: PageId, data: &[u8]) -> StorageResult<Option<RecordId>> {
        let len = data.len();
        self.pager.with_page_mut(page, |d| {
            let nslots = read_u16(d, 0) as usize;
            let free_lo = read_u16(d, 2) as usize;
            let dir_end = HDR + nslots * SLOT;
            if free_lo < dir_end + SLOT + len {
                return None; // no room on this page
            }
            let off = free_lo - len;
            d[off..off + len].copy_from_slice(data);
            write_u16(d, dir_end, off as u16);
            write_u16(d, dir_end + 2, len as u16);
            write_u16(d, 0, (nslots + 1) as u16);
            write_u16(d, 2, off as u16);
            Some(RecordId {
                page: page.0,
                slot: nslots as u16,
            })
        })
    }

    /// Reads the record at `rid`.
    pub fn get(&mut self, rid: RecordId) -> StorageResult<Vec<u8>> {
        let out = self.pager.with_page(PageId(rid.page), |d| {
            let nslots = read_u16(d, 0);
            if rid.slot >= nslots {
                return None;
            }
            let at = HDR + rid.slot as usize * SLOT;
            let off = read_u16(d, at);
            if off == DEAD {
                return None;
            }
            let len = read_u16(d, at + 2) as usize;
            Some(d[off as usize..off as usize + len].to_vec())
        })?;
        out.ok_or(StorageError::InvalidSlot {
            page: rid.page,
            slot: rid.slot,
        })
    }

    /// Deletes the record at `rid` (tombstone; space reclaimed only by a
    /// rewrite). Returns whether the record was live.
    pub fn delete(&mut self, rid: RecordId) -> StorageResult<bool> {
        self.pager.with_page_mut(PageId(rid.page), |d| {
            let nslots = read_u16(d, 0);
            if rid.slot >= nslots {
                return false;
            }
            let at = HDR + rid.slot as usize * SLOT;
            if read_u16(d, at) == DEAD {
                return false;
            }
            write_u16(d, at, DEAD);
            true
        })
    }

    /// Iterates all live records as `(RecordId, bytes)` pairs.
    pub fn scan(&mut self) -> StorageResult<Vec<(RecordId, Vec<u8>)>> {
        let mut out = Vec::new();
        for p in 0..self.pager.page_count() {
            self.pager.with_page(PageId(p), |d| {
                let nslots = read_u16(d, 0);
                for s in 0..nslots {
                    let at = HDR + s as usize * SLOT;
                    let off = read_u16(d, at);
                    if off == DEAD {
                        continue;
                    }
                    let len = read_u16(d, at + 2) as usize;
                    out.push((
                        RecordId { page: p, slot: s },
                        d[off as usize..off as usize + len].to_vec(),
                    ));
                }
            })?;
        }
        Ok(out)
    }

    /// Flushes dirty pages to disk.
    pub fn flush(&mut self) -> StorageResult<()> {
        self.pager.flush()
    }

    /// Number of pages in the file.
    pub fn page_count(&self) -> u64 {
        self.pager.page_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cb-heap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn insert_get_roundtrip() {
        let path = tmp("rt");
        let mut heap = HeapFile::open(&path, 8).unwrap();
        let a = heap.insert(b"RELATION InvitationRel").unwrap();
        let b = heap.insert(b"SELECTOR InvitationsPaperIC").unwrap();
        assert_eq!(heap.get(a).unwrap(), b"RELATION InvitationRel");
        assert_eq!(heap.get(b).unwrap(), b"SELECTOR InvitationsPaperIC");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn delete_tombstones() {
        let path = tmp("del");
        let mut heap = HeapFile::open(&path, 8).unwrap();
        let a = heap.insert(b"one").unwrap();
        let b = heap.insert(b"two").unwrap();
        assert!(heap.delete(a).unwrap());
        assert!(!heap.delete(a).unwrap());
        assert!(heap.get(a).is_err());
        assert_eq!(heap.get(b).unwrap(), b"two");
        let live = heap.scan().unwrap();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].0, b);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn spills_to_new_pages() {
        let path = tmp("spill");
        let mut heap = HeapFile::open(&path, 4).unwrap();
        let big = vec![7u8; 1000];
        let ids: Vec<RecordId> = (0..20).map(|_| heap.insert(&big).unwrap()).collect();
        assert!(heap.page_count() > 1);
        for id in &ids {
            assert_eq!(heap.get(*id).unwrap().len(), 1000);
        }
        assert_eq!(heap.scan().unwrap().len(), 20);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn survives_reopen() {
        let path = tmp("reopen");
        let rid;
        {
            let mut heap = HeapFile::open(&path, 4).unwrap();
            rid = heap.insert(b"persistent").unwrap();
            heap.flush().unwrap();
        }
        let mut heap = HeapFile::open(&path, 4).unwrap();
        assert_eq!(heap.get(rid).unwrap(), b"persistent");
        // New inserts continue on the last page.
        let rid2 = heap.insert(b"more").unwrap();
        assert_eq!(rid2.page, rid.page);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn oversized_rejected() {
        let path = tmp("big");
        let mut heap = HeapFile::open(&path, 4).unwrap();
        let too_big = vec![0u8; HeapFile::MAX_RECORD + 1];
        assert!(matches!(
            heap.insert(&too_big),
            Err(StorageError::RecordTooLarge(_))
        ));
        // Exactly max fits.
        let max = vec![1u8; HeapFile::MAX_RECORD];
        let rid = heap.insert(&max).unwrap();
        assert_eq!(heap.get(rid).unwrap().len(), HeapFile::MAX_RECORD);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn invalid_slot_is_error() {
        let path = tmp("slot");
        let mut heap = HeapFile::open(&path, 4).unwrap();
        heap.insert(b"x").unwrap();
        assert!(heap.get(RecordId { page: 0, slot: 9 }).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
