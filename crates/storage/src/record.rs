//! Length-prefixed, CRC-checked binary records.
//!
//! Wire layout of a record:
//!
//! ```text
//! +----------------+----------------+------------------+
//! | len: u32 (LE)  | crc32: u32(LE) | payload: len * u8|
//! +----------------+----------------+------------------+
//! ```
//!
//! The CRC covers the payload only; the length field is validated
//! indirectly (a wrong length produces a CRC mismatch or a short read,
//! both reported as corruption — except at the tail of a log, where a
//! short read is treated as a torn write by [`crate::log::AppendLog`]).

use crate::error::{StorageError, StorageResult};
use std::io::{Read, Write};

/// Maximum encodable payload size (16 MiB). Propositions are tiny; this
/// bound exists to turn corrupted length fields into clean errors instead
/// of huge allocations.
pub const MAX_RECORD_LEN: usize = 16 * 1024 * 1024;

/// Size of the per-record header (length + CRC).
pub const HEADER_LEN: usize = 8;

const CRC_POLY: u32 = 0xEDB8_8320;

/// Computes the CRC-32 (IEEE) of `data` with a lazily built table.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    CRC_POLY ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Encodes `payload` into the wire format, appending to `out`.
pub fn encode(payload: &[u8], out: &mut Vec<u8>) -> StorageResult<()> {
    if payload.len() > MAX_RECORD_LEN {
        return Err(StorageError::RecordTooLarge(payload.len()));
    }
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// Writes one record to `w`.
pub fn write_record<W: Write>(w: &mut W, payload: &[u8]) -> StorageResult<usize> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    encode(payload, &mut buf)?;
    w.write_all(&buf)?;
    Ok(buf.len())
}

/// Outcome of attempting to read a record from a stream.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// A complete, CRC-valid record.
    Record(Vec<u8>),
    /// Clean end of stream (no bytes where a header would start).
    Eof,
    /// The stream ended mid-record: a torn write at `offset`.
    Torn {
        /// Offset of the torn record's header.
        offset: u64,
    },
    /// The header parsed but the payload failed its CRC.
    BadCrc {
        /// Offset of the corrupt record's header.
        offset: u64,
    },
}

/// Reads one record starting at stream offset `offset` (used only for
/// error reporting). Distinguishes clean EOF, torn tail, and corruption
/// so the log layer can decide which are recoverable.
pub fn read_record<R: Read>(r: &mut R, offset: u64) -> StorageResult<ReadOutcome> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            return Ok(if filled == 0 {
                ReadOutcome::Eof
            } else {
                ReadOutcome::Torn { offset }
            });
        }
        filled += n;
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_RECORD_LEN {
        return Ok(ReadOutcome::BadCrc { offset });
    }
    let mut payload = vec![0u8; len];
    let mut got = 0;
    while got < len {
        let n = r.read(&mut payload[got..])?;
        if n == 0 {
            return Ok(ReadOutcome::Torn { offset });
        }
        got += n;
    }
    if crc32(&payload) != crc {
        return Ok(ReadOutcome::BadCrc { offset });
    }
    Ok(ReadOutcome::Record(payload))
}

/// Helpers for encoding the primitive values used by record payloads.
/// All integers are little-endian; strings are length-prefixed UTF-8.
pub mod codec {
    use crate::error::{StorageError, StorageResult};

    /// Appends a `u32`.
    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`.
    pub fn put_i64(out: &mut Vec<u8>, v: i64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
        put_u32(out, v.len() as u32);
        out.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(out: &mut Vec<u8>, v: &str) {
        put_bytes(out, v.as_bytes());
    }

    /// Sequential reader over an encoded payload.
    pub struct Cursor<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Cursor<'a> {
        /// Starts reading `buf` from the beginning.
        pub fn new(buf: &'a [u8]) -> Self {
            Cursor { buf, pos: 0 }
        }

        fn take(&mut self, n: usize) -> StorageResult<&'a [u8]> {
            if self.pos + n > self.buf.len() {
                return Err(StorageError::Corrupt {
                    offset: self.pos as u64,
                    detail: format!("payload truncated: need {n} bytes"),
                });
            }
            let s = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }

        /// Reads a `u32`.
        pub fn get_u32(&mut self) -> StorageResult<u32> {
            let s = self.take(4)?;
            Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
        }

        /// Reads a `u64`.
        pub fn get_u64(&mut self) -> StorageResult<u64> {
            let s = self.take(8)?;
            Ok(u64::from_le_bytes(s.try_into().expect("len 8")))
        }

        /// Reads an `i64`.
        pub fn get_i64(&mut self) -> StorageResult<i64> {
            let s = self.take(8)?;
            Ok(i64::from_le_bytes(s.try_into().expect("len 8")))
        }

        /// Reads a length-prefixed byte string.
        pub fn get_bytes(&mut self) -> StorageResult<&'a [u8]> {
            let n = self.get_u32()? as usize;
            self.take(n)
        }

        /// Reads a length-prefixed UTF-8 string.
        pub fn get_str(&mut self) -> StorageResult<&'a str> {
            let b = self.get_bytes()?;
            std::str::from_utf8(b).map_err(|e| StorageError::Corrupt {
                offset: self.pos as u64,
                detail: format!("invalid utf-8: {e}"),
            })
        }

        /// True if every byte has been consumed.
        pub fn is_exhausted(&self) -> bool {
            self.pos == self.buf.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor as IoCursor;

    #[test]
    fn crc_known_vector() {
        // IEEE CRC-32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc_empty() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_single() {
        let mut buf = Vec::new();
        encode(b"hello", &mut buf).unwrap();
        let mut r = IoCursor::new(buf);
        match read_record(&mut r, 0).unwrap() {
            ReadOutcome::Record(p) => assert_eq!(p, b"hello"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(read_record(&mut r, 0).unwrap(), ReadOutcome::Eof);
    }

    #[test]
    fn roundtrip_empty_payload() {
        let mut buf = Vec::new();
        encode(b"", &mut buf).unwrap();
        let mut r = IoCursor::new(buf);
        assert_eq!(read_record(&mut r, 0).unwrap(), ReadOutcome::Record(vec![]));
    }

    #[test]
    fn torn_header_detected() {
        let mut buf = Vec::new();
        encode(b"hello", &mut buf).unwrap();
        buf.truncate(3); // mid-header
        let mut r = IoCursor::new(buf);
        assert_eq!(
            read_record(&mut r, 7).unwrap(),
            ReadOutcome::Torn { offset: 7 }
        );
    }

    #[test]
    fn torn_payload_detected() {
        let mut buf = Vec::new();
        encode(b"hello world", &mut buf).unwrap();
        buf.truncate(HEADER_LEN + 4); // mid-payload
        let mut r = IoCursor::new(buf);
        assert_eq!(
            read_record(&mut r, 9).unwrap(),
            ReadOutcome::Torn { offset: 9 }
        );
    }

    #[test]
    fn flipped_bit_detected() {
        let mut buf = Vec::new();
        encode(b"hello", &mut buf).unwrap();
        buf[HEADER_LEN] ^= 0x40;
        let mut r = IoCursor::new(buf);
        assert_eq!(
            read_record(&mut r, 0).unwrap(),
            ReadOutcome::BadCrc { offset: 0 }
        );
    }

    #[test]
    fn absurd_length_rejected_cleanly() {
        let mut buf = vec![0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0];
        buf.extend_from_slice(b"x");
        let mut r = IoCursor::new(buf);
        assert_eq!(
            read_record(&mut r, 0).unwrap(),
            ReadOutcome::BadCrc { offset: 0 }
        );
    }

    #[test]
    fn oversized_record_rejected() {
        let huge = vec![0u8; MAX_RECORD_LEN + 1];
        let mut out = Vec::new();
        assert!(matches!(
            encode(&huge, &mut out),
            Err(StorageError::RecordTooLarge(_))
        ));
    }

    #[test]
    fn codec_roundtrip() {
        let mut buf = Vec::new();
        codec::put_u32(&mut buf, 7);
        codec::put_u64(&mut buf, u64::MAX);
        codec::put_i64(&mut buf, -42);
        codec::put_str(&mut buf, "Invitation");
        codec::put_bytes(&mut buf, &[1, 2, 3]);
        let mut c = codec::Cursor::new(&buf);
        assert_eq!(c.get_u32().unwrap(), 7);
        assert_eq!(c.get_u64().unwrap(), u64::MAX);
        assert_eq!(c.get_i64().unwrap(), -42);
        assert_eq!(c.get_str().unwrap(), "Invitation");
        assert_eq!(c.get_bytes().unwrap(), &[1, 2, 3]);
        assert!(c.is_exhausted());
    }

    #[test]
    fn codec_truncation_is_error() {
        let mut buf = Vec::new();
        codec::put_str(&mut buf, "Paper");
        buf.truncate(buf.len() - 2);
        let mut c = codec::Cursor::new(&buf);
        assert!(c.get_str().is_err());
    }

    #[test]
    fn codec_bad_utf8_is_error() {
        let mut buf = Vec::new();
        codec::put_bytes(&mut buf, &[0xFF, 0xFE]);
        let mut c = codec::Cursor::new(&buf);
        assert!(c.get_str().is_err());
    }
}
