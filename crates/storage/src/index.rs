//! Ordered in-memory secondary indexes.
//!
//! The proposition processor maintains four access paths over the
//! proposition base (by id, by source, by label, by destination); the
//! [`MultiIndex`] here is the shared implementation: an ordered multimap
//! with range scans and exact-key lookup.

use std::collections::BTreeMap;

/// An ordered multimap from keys to sets of values.
///
/// Values under one key are kept sorted and deduplicated, so lookups and
/// scans yield deterministic order — important because display tools and
/// tests depend on stable output.
#[derive(Debug, Clone, Default)]
pub struct MultiIndex<K: Ord + Clone, V: Ord + Clone> {
    map: BTreeMap<K, Vec<V>>,
    len: usize,
}

impl<K: Ord + Clone, V: Ord + Clone> MultiIndex<K, V> {
    /// Creates an empty index.
    pub fn new() -> Self {
        MultiIndex {
            map: BTreeMap::new(),
            len: 0,
        }
    }

    /// Inserts `(key, value)`; returns false if the pair was already
    /// present.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        let vals = self.map.entry(key).or_default();
        match vals.binary_search(&value) {
            Ok(_) => false,
            Err(at) => {
                vals.insert(at, value);
                self.len += 1;
                true
            }
        }
    }

    /// Removes `(key, value)`; returns whether it was present.
    pub fn remove(&mut self, key: &K, value: &V) -> bool {
        if let Some(vals) = self.map.get_mut(key) {
            if let Ok(at) = vals.binary_search(value) {
                vals.remove(at);
                self.len -= 1;
                if vals.is_empty() {
                    self.map.remove(key);
                }
                return true;
            }
        }
        false
    }

    /// All values under `key`, in sorted order.
    pub fn get(&self, key: &K) -> &[V] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// True if the exact pair is present.
    pub fn contains(&self, key: &K, value: &V) -> bool {
        self.map
            .get(key)
            .is_some_and(|vals| vals.binary_search(value).is_ok())
    }

    /// Total number of `(key, value)` pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Iterates all pairs in `(key, value)` order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map
            .iter()
            .flat_map(|(k, vs)| vs.iter().map(move |v| (k, v)))
    }

    /// Iterates pairs whose key lies in `lo..=hi`.
    pub fn range<'a>(&'a self, lo: &K, hi: &K) -> impl Iterator<Item = (&'a K, &'a V)> + 'a {
        self.map
            .range(lo.clone()..=hi.clone())
            .flat_map(|(k, vs)| vs.iter().map(move |v| (k, v)))
    }

    /// Removes every value under `key`, returning how many were removed.
    pub fn remove_key(&mut self, key: &K) -> usize {
        match self.map.remove(key) {
            Some(vals) => {
                self.len -= vals.len();
                vals.len()
            }
            None => 0,
        }
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.map.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedup_and_order() {
        let mut ix: MultiIndex<&str, u32> = MultiIndex::new();
        assert!(ix.insert("isa", 3));
        assert!(ix.insert("isa", 1));
        assert!(!ix.insert("isa", 3));
        assert_eq!(ix.get(&"isa"), &[1, 3]);
        assert_eq!(ix.len(), 2);
        assert_eq!(ix.key_count(), 1);
    }

    #[test]
    fn remove_and_cleanup() {
        let mut ix: MultiIndex<u8, u8> = MultiIndex::new();
        ix.insert(1, 10);
        ix.insert(1, 11);
        assert!(ix.remove(&1, &10));
        assert!(!ix.remove(&1, &10));
        assert_eq!(ix.get(&1), &[11]);
        assert!(ix.remove(&1, &11));
        assert_eq!(ix.key_count(), 0);
        assert!(ix.is_empty());
    }

    #[test]
    fn range_scan() {
        let mut ix: MultiIndex<u32, &str> = MultiIndex::new();
        ix.insert(1, "a");
        ix.insert(2, "b");
        ix.insert(2, "c");
        ix.insert(5, "d");
        let hits: Vec<_> = ix.range(&2, &4).map(|(_, v)| *v).collect();
        assert_eq!(hits, vec!["b", "c"]);
    }

    #[test]
    fn remove_key_bulk() {
        let mut ix: MultiIndex<u32, u32> = MultiIndex::new();
        for v in 0..5 {
            ix.insert(7, v);
        }
        ix.insert(8, 0);
        assert_eq!(ix.remove_key(&7), 5);
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.remove_key(&7), 0);
    }

    #[test]
    fn iter_is_globally_ordered() {
        let mut ix: MultiIndex<u32, u32> = MultiIndex::new();
        ix.insert(2, 1);
        ix.insert(1, 9);
        ix.insert(1, 2);
        let all: Vec<_> = ix.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(all, vec![(1, 2), (1, 9), (2, 1)]);
    }

    #[test]
    fn contains_checks_exact_pair() {
        let mut ix: MultiIndex<&str, u32> = MultiIndex::new();
        ix.insert("from", 4);
        assert!(ix.contains(&"from", &4));
        assert!(!ix.contains(&"from", &5));
        assert!(!ix.contains(&"to", &4));
    }

    #[test]
    fn clear_resets() {
        let mut ix: MultiIndex<u8, u8> = MultiIndex::new();
        ix.insert(1, 1);
        ix.clear();
        assert!(ix.is_empty());
        assert_eq!(ix.key_count(), 0);
    }
}
