//! Error type shared by all storage components.

use std::fmt;
use std::io;

/// Errors raised by the storage substrate.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A record failed its CRC check (and was not the torn tail of a log).
    Corrupt {
        /// Byte offset at which corruption was detected.
        offset: u64,
        /// Human-readable detail.
        detail: String,
    },
    /// A record exceeded the maximum encodable length.
    RecordTooLarge(usize),
    /// A requested page lies beyond the end of the file.
    PageOutOfBounds(u64),
    /// A heap slot reference does not denote a live record.
    InvalidSlot {
        /// Page number of the bad reference.
        page: u64,
        /// Slot index of the bad reference.
        slot: u16,
    },
    /// The store was opened with an incompatible on-disk format version.
    BadFormatVersion(u32),
}

/// Convenient alias used throughout the crate.
pub type StorageResult<T> = Result<T, StorageError>;

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::Corrupt { offset, detail } => {
                write!(f, "corrupt record at offset {offset}: {detail}")
            }
            StorageError::RecordTooLarge(n) => {
                write!(f, "record of {n} bytes exceeds maximum encodable length")
            }
            StorageError::PageOutOfBounds(p) => write!(f, "page {p} out of bounds"),
            StorageError::InvalidSlot { page, slot } => {
                write!(f, "invalid heap slot {slot} on page {page}")
            }
            StorageError::BadFormatVersion(v) => write!(f, "unsupported format version {v}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_io() {
        let e = StorageError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn display_corrupt() {
        let e = StorageError::Corrupt {
            offset: 42,
            detail: "bad crc".into(),
        };
        let s = e.to_string();
        assert!(s.contains("42") && s.contains("bad crc"));
    }

    #[test]
    fn display_misc() {
        assert!(StorageError::RecordTooLarge(7).to_string().contains('7'));
        assert!(StorageError::PageOutOfBounds(3).to_string().contains('3'));
        assert!(StorageError::InvalidSlot { page: 1, slot: 2 }
            .to_string()
            .contains("slot 2"));
        assert!(StorageError::BadFormatVersion(9).to_string().contains('9'));
    }
}
