//! Fixed-size page cache with LRU eviction.
//!
//! [`Pager`] mediates access to a paged file: reads go through an LRU
//! cache of dirty-tracked frames, writes mark frames dirty, and
//! [`Pager::flush`] writes dirty frames back. The heap file (see
//! [`crate::heap`]) is built on top of it.

use crate::error::{StorageError, StorageResult};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Size of one page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page (its index within the file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

struct Frame {
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    /// Logical clock of last access, for LRU eviction.
    last_used: u64,
}

/// A page cache over a single file.
pub struct Pager {
    file: File,
    frames: HashMap<PageId, Frame>,
    capacity: usize,
    clock: u64,
    pages: u64,
    /// Statistics: cache hits and misses, exposed for the benches.
    pub hits: u64,
    /// Statistics: cache misses.
    pub misses: u64,
}

impl Pager {
    /// Opens (or creates) the paged file at `path` with an in-memory
    /// cache of `capacity` pages (minimum 1).
    pub fn open(path: impl AsRef<Path>, capacity: usize) -> StorageResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let pages = len.div_ceil(PAGE_SIZE as u64);
        Ok(Pager {
            file,
            frames: HashMap::new(),
            capacity: capacity.max(1),
            clock: 0,
            pages,
            hits: 0,
            misses: 0,
        })
    }

    /// Number of pages currently in the file.
    pub fn page_count(&self) -> u64 {
        self.pages
    }

    /// Appends a fresh zeroed page and returns its id.
    pub fn allocate(&mut self) -> StorageResult<PageId> {
        let id = PageId(self.pages);
        self.pages += 1;
        self.clock += 1;
        self.evict_if_full()?;
        self.frames.insert(
            id,
            Frame {
                data: Box::new([0u8; PAGE_SIZE]),
                dirty: true,
                last_used: self.clock,
            },
        );
        Ok(id)
    }

    fn load(&mut self, id: PageId) -> StorageResult<()> {
        if id.0 >= self.pages {
            return Err(StorageError::PageOutOfBounds(id.0));
        }
        if self.frames.contains_key(&id) {
            self.hits += 1;
            return Ok(());
        }
        self.misses += 1;
        self.evict_if_full()?;
        let mut data = Box::new([0u8; PAGE_SIZE]);
        self.file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
        // The file may be shorter than a full page if the last page was
        // never flushed; read what exists, the rest stays zero.
        let mut filled = 0;
        while filled < PAGE_SIZE {
            let n = self.file.read(&mut data[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        self.frames.insert(
            id,
            Frame {
                data,
                dirty: false,
                last_used: self.clock,
            },
        );
        Ok(())
    }

    fn evict_if_full(&mut self) -> StorageResult<()> {
        while self.frames.len() >= self.capacity {
            let victim = self
                .frames
                .iter()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(id, _)| *id)
                .expect("frames non-empty");
            self.write_back(victim)?;
            self.frames.remove(&victim);
        }
        Ok(())
    }

    fn write_back(&mut self, id: PageId) -> StorageResult<()> {
        if let Some(frame) = self.frames.get_mut(&id) {
            if frame.dirty {
                self.file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
                self.file.write_all(frame.data.as_ref())?;
                frame.dirty = false;
            }
        }
        Ok(())
    }

    /// Runs `f` with read access to the page's bytes.
    pub fn with_page<R>(
        &mut self,
        id: PageId,
        f: impl FnOnce(&[u8; PAGE_SIZE]) -> R,
    ) -> StorageResult<R> {
        self.load(id)?;
        self.clock += 1;
        let clock = self.clock;
        let frame = self.frames.get_mut(&id).expect("just loaded");
        frame.last_used = clock;
        Ok(f(&frame.data))
    }

    /// Runs `f` with write access to the page's bytes and marks it dirty.
    pub fn with_page_mut<R>(
        &mut self,
        id: PageId,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> StorageResult<R> {
        self.load(id)?;
        self.clock += 1;
        let clock = self.clock;
        let frame = self.frames.get_mut(&id).expect("just loaded");
        frame.last_used = clock;
        frame.dirty = true;
        Ok(f(&mut frame.data))
    }

    /// Writes all dirty frames back and fsyncs.
    pub fn flush(&mut self) -> StorageResult<()> {
        let dirty: Vec<PageId> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(id, _)| *id)
            .collect();
        let pages = dirty.len() as u64;
        for id in dirty {
            self.write_back(id)?;
        }
        self.file.sync_data()?;
        obs::counter!(
            "storage_pager_flushes_total",
            "Pager flush calls (each fsyncs)"
        )
        .inc();
        obs::counter!(
            "storage_pager_pages_flushed_total",
            "Dirty pages written back by pager flushes"
        )
        .add(pages);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cb-pager-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn allocate_write_read() {
        let path = tmp("rw");
        let mut pager = Pager::open(&path, 4).unwrap();
        let p0 = pager.allocate().unwrap();
        pager
            .with_page_mut(p0, |d| {
                d[0] = 0xAB;
                d[PAGE_SIZE - 1] = 0xCD;
            })
            .unwrap();
        let (a, b) = pager.with_page(p0, |d| (d[0], d[PAGE_SIZE - 1])).unwrap();
        assert_eq!((a, b), (0xAB, 0xCD));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn data_survives_eviction() {
        let path = tmp("evict");
        let mut pager = Pager::open(&path, 2).unwrap();
        let ids: Vec<PageId> = (0..8).map(|_| pager.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            pager.with_page_mut(id, |d| d[0] = i as u8).unwrap();
        }
        for (i, &id) in ids.iter().enumerate() {
            let v = pager.with_page(id, |d| d[0]).unwrap();
            assert_eq!(v, i as u8, "page {i}");
        }
        assert!(pager.misses > 0, "with capacity 2 and 8 pages, must miss");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn data_survives_reopen_after_flush() {
        let path = tmp("reopen");
        {
            let mut pager = Pager::open(&path, 4).unwrap();
            let p = pager.allocate().unwrap();
            pager.with_page_mut(p, |d| d[100] = 42).unwrap();
            pager.flush().unwrap();
        }
        let mut pager = Pager::open(&path, 4).unwrap();
        assert_eq!(pager.page_count(), 1);
        let v = pager.with_page(PageId(0), |d| d[100]).unwrap();
        assert_eq!(v, 42);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_bounds_read_is_error() {
        let path = tmp("oob");
        let mut pager = Pager::open(&path, 2).unwrap();
        assert!(matches!(
            pager.with_page(PageId(5), |_| ()),
            Err(StorageError::PageOutOfBounds(5))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lru_prefers_older_pages() {
        let path = tmp("lru");
        let mut pager = Pager::open(&path, 2).unwrap();
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        // Touch `a` so that `b` is the LRU victim when `c` arrives.
        pager.with_page(a, |_| ()).unwrap();
        let _c = pager.allocate().unwrap();
        let hits_before = pager.hits;
        pager.with_page(a, |_| ()).unwrap();
        assert_eq!(pager.hits, hits_before + 1, "a should still be cached");
        let misses_before = pager.misses;
        pager.with_page(b, |_| ()).unwrap();
        assert_eq!(
            pager.misses,
            misses_before + 1,
            "b should have been evicted"
        );
        std::fs::remove_file(&path).unwrap();
    }
}
