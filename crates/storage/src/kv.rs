//! Log-structured key-value store with compaction.
//!
//! A thin "external database" in the sense of §3.1: keys and values are
//! opaque byte strings; `set`/`delete` append to the [`AppendLog`], an
//! in-memory ordered index maps each live key to its latest value, and
//! [`KvStore::compact`] rewrites the log keeping only live entries.

use crate::error::StorageResult;
use crate::log::AppendLog;
use crate::record::codec::{self, Cursor};
use std::collections::BTreeMap;
use std::ops::Bound;
use std::path::{Path, PathBuf};

const OP_SET: u32 = 1;
const OP_DELETE: u32 = 2;

/// A durable ordered map from byte keys to byte values.
pub struct KvStore {
    log: AppendLog,
    path: PathBuf,
    /// Live view: key -> value. Values are stored inline; propositions
    /// are small, so this favours simplicity over a <key -> LSN> index.
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    /// Records in the log that are no longer live (overwritten/deleted).
    dead: u64,
}

impl KvStore {
    /// Opens (or creates) a store backed by the log file at `path`,
    /// replaying the log to rebuild the live map.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<Self> {
        let path = path.as_ref().to_path_buf();
        let mut log = AppendLog::open(&path)?;
        let mut map = BTreeMap::new();
        let mut dead = 0u64;
        for item in log.iter()? {
            let (_, payload) = item?;
            let mut c = Cursor::new(&payload);
            let op = c.get_u32()?;
            let key = c.get_bytes()?.to_vec();
            match op {
                OP_SET => {
                    let value = c.get_bytes()?.to_vec();
                    if map.insert(key, value).is_some() {
                        dead += 1;
                    }
                }
                _ => {
                    if map.remove(&key).is_some() {
                        dead += 1;
                    }
                    dead += 1; // the delete record itself is dead weight
                }
            }
        }
        Ok(KvStore {
            log,
            path,
            map,
            dead,
        })
    }

    /// Stores `value` under `key`, replacing any previous value.
    pub fn set(&mut self, key: &[u8], value: &[u8]) -> StorageResult<()> {
        let mut payload = Vec::with_capacity(12 + key.len() + value.len());
        codec::put_u32(&mut payload, OP_SET);
        codec::put_bytes(&mut payload, key);
        codec::put_bytes(&mut payload, value);
        self.log.append(&payload)?;
        if self.map.insert(key.to_vec(), value.to_vec()).is_some() {
            self.dead += 1;
        }
        Ok(())
    }

    /// Removes `key`; returns whether it was present.
    pub fn delete(&mut self, key: &[u8]) -> StorageResult<bool> {
        let existed = self.map.remove(key).is_some();
        if existed {
            let mut payload = Vec::with_capacity(8 + key.len());
            codec::put_u32(&mut payload, OP_DELETE);
            codec::put_bytes(&mut payload, key);
            self.log.append(&payload)?;
            self.dead += 2;
        }
        Ok(existed)
    }

    /// Returns the value stored under `key`, if any.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.map.get(key).map(|v| v.as_slice())
    }

    /// True if `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.map.contains_key(key)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no keys are live.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of dead (superseded) log records; drives compaction policy.
    pub fn dead_records(&self) -> u64 {
        self.dead
    }

    /// Iterates live `(key, value)` pairs whose key starts with `prefix`,
    /// in key order.
    pub fn scan_prefix<'a>(
        &'a self,
        prefix: &'a [u8],
    ) -> impl Iterator<Item = (&'a [u8], &'a [u8])> + 'a {
        self.map
            .range::<[u8], _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    /// Iterates all live pairs in key order.
    pub fn scan(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.map.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    /// Forces buffered appends to stable storage.
    pub fn sync(&mut self) -> StorageResult<()> {
        self.log.sync()
    }

    /// Rewrites the log with only live entries, atomically replacing the
    /// old file. Returns the number of dead records dropped.
    pub fn compact(&mut self) -> StorageResult<u64> {
        let dropped = self.dead;
        let tmp_path = self.path.with_extension("compact");
        let _ = std::fs::remove_file(&tmp_path);
        {
            let mut fresh = AppendLog::open(&tmp_path)?;
            for (k, v) in &self.map {
                let mut payload = Vec::with_capacity(12 + k.len() + v.len());
                codec::put_u32(&mut payload, OP_SET);
                codec::put_bytes(&mut payload, k);
                codec::put_bytes(&mut payload, v);
                fresh.append(&payload)?;
            }
            fresh.sync()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        self.log = AppendLog::open(&self.path)?;
        self.dead = 0;
        Ok(dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cb-kv-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn set_get_delete() {
        let path = tmp("sgd");
        let mut kv = KvStore::open(&path).unwrap();
        kv.set(b"a", b"1").unwrap();
        kv.set(b"b", b"2").unwrap();
        assert_eq!(kv.get(b"a"), Some(b"1".as_slice()));
        assert!(kv.delete(b"a").unwrap());
        assert!(!kv.delete(b"a").unwrap());
        assert_eq!(kv.get(b"a"), None);
        assert_eq!(kv.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn overwrite_keeps_latest() {
        let path = tmp("over");
        let mut kv = KvStore::open(&path).unwrap();
        kv.set(b"k", b"v1").unwrap();
        kv.set(b"k", b"v2").unwrap();
        assert_eq!(kv.get(b"k"), Some(b"v2".as_slice()));
        assert_eq!(kv.dead_records(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recovery_rebuilds_state() {
        let path = tmp("recover");
        {
            let mut kv = KvStore::open(&path).unwrap();
            kv.set(b"x", b"1").unwrap();
            kv.set(b"y", b"2").unwrap();
            kv.set(b"x", b"3").unwrap();
            kv.delete(b"y").unwrap();
            kv.sync().unwrap();
        }
        let kv = KvStore::open(&path).unwrap();
        assert_eq!(kv.get(b"x"), Some(b"3".as_slice()));
        assert_eq!(kv.get(b"y"), None);
        assert_eq!(kv.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn prefix_scan_in_order() {
        let path = tmp("scan");
        let mut kv = KvStore::open(&path).unwrap();
        kv.set(b"p/2", b"b").unwrap();
        kv.set(b"p/1", b"a").unwrap();
        kv.set(b"q/1", b"c").unwrap();
        let hits: Vec<_> = kv.scan_prefix(b"p/").map(|(k, _)| k.to_vec()).collect();
        assert_eq!(hits, vec![b"p/1".to_vec(), b"p/2".to_vec()]);
        assert_eq!(kv.scan().count(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_preserves_live_data() {
        let path = tmp("compact");
        let mut kv = KvStore::open(&path).unwrap();
        for i in 0..100u32 {
            kv.set(b"hot", format!("{i}").as_bytes()).unwrap();
        }
        kv.set(b"cold", b"stays").unwrap();
        kv.sync().unwrap();
        let before = std::fs::metadata(&path).unwrap().len();
        let dropped = kv.compact().unwrap();
        assert!(dropped >= 99);
        kv.sync().unwrap();
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(after < before);
        assert_eq!(kv.get(b"hot"), Some(b"99".as_slice()));
        assert_eq!(kv.get(b"cold"), Some(b"stays".as_slice()));
        // And the compacted file recovers correctly.
        drop(kv);
        let kv = KvStore::open(&path).unwrap();
        assert_eq!(kv.get(b"hot"), Some(b"99".as_slice()));
        assert_eq!(kv.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn store_usable_after_compaction() {
        let path = tmp("after");
        let mut kv = KvStore::open(&path).unwrap();
        kv.set(b"a", b"1").unwrap();
        kv.compact().unwrap();
        kv.set(b"b", b"2").unwrap();
        drop(kv);
        let kv = KvStore::open(&path).unwrap();
        assert_eq!(kv.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }
}
