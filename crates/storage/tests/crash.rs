//! Byte-level crash matrix for [`storage::AppendLog`].
//!
//! Simulates a kill at every possible byte offset of a synced log and
//! asserts the durability contract of `open`: the recovered log is
//! always the longest clean prefix of whole records — never a panic,
//! never a record resurrected past the crash point, and never a record
//! dropped from before it.

use storage::crash;
use storage::record::HEADER_LEN;
use storage::{AppendLog, StorageError};

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cb-crashmatrix-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn truncation_at_every_offset_recovers_clean_prefix() {
    let path = tmp("matrix");
    let payloads: Vec<Vec<u8>> = (0u8..12).map(|i| vec![i; 3 + (i as usize) * 5]).collect();
    // Record the log's byte length after each synced append: crash
    // offset >= boundary[i] must preserve at least the first i records.
    let mut boundaries = vec![0u64];
    {
        let mut log = AppendLog::open(&path).unwrap();
        for p in &payloads {
            log.append(p).unwrap();
            log.sync().unwrap();
            boundaries.push(log.byte_len());
        }
    }
    let full = crash::file_len(&path).unwrap();
    assert_eq!(full, *boundaries.last().unwrap());

    let copy = tmp("matrix-copy");
    for cut in 0..=full {
        crash::truncated_copy(&path, &copy, cut).unwrap();
        let mut log = AppendLog::open(&copy).unwrap();
        // Exactly the records wholly before the cut survive.
        let expect = boundaries.iter().filter(|&&b| b <= cut).count() as u64 - 1;
        assert_eq!(log.len(), expect, "cut at {cut}");
        let items: Vec<Vec<u8>> = log.iter().unwrap().map(|r| r.unwrap().1).collect();
        assert_eq!(items.len() as u64, expect, "cut at {cut}");
        for (i, item) in items.iter().enumerate() {
            assert_eq!(item, &payloads[i], "interior loss at cut {cut}");
        }
        // Recovery leaves a usable log: a new append round-trips.
        log.append(b"post-crash").unwrap();
        log.sync().unwrap();
        let n = log.iter().unwrap().count() as u64;
        assert_eq!(n, expect + 1, "cut at {cut}");
    }
    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&copy).unwrap();
}

#[test]
fn interior_byte_flips_yield_typed_errors_never_panics() {
    let path = tmp("flips");
    {
        let mut log = AppendLog::open(&path).unwrap();
        for i in 0u8..6 {
            log.append(&[i; 16]).unwrap();
        }
        log.sync().unwrap();
    }
    let full = crash::file_len(&path).unwrap();
    let copy = tmp("flips-copy");
    // Flip every byte in turn. Every outcome must be a typed error or a
    // clean *prefix* of the original records: a flip in a length field
    // can make the record run past EOF, which is indistinguishable from
    // a torn tail and is truncated by design — but whatever survives
    // must be uncorrupted original records, in order, with no gaps.
    for off in 0..full {
        crash::truncated_copy(&path, &copy, full).unwrap();
        crash::flip_byte(&copy, off, 0xA5).unwrap();
        match AppendLog::open(&copy) {
            Ok(mut log) => {
                let items: Vec<Vec<u8>> = log
                    .iter()
                    .unwrap()
                    .collect::<Result<Vec<_>, _>>()
                    .unwrap()
                    .into_iter()
                    .map(|(_, p)| p)
                    .collect();
                for (i, item) in items.iter().enumerate() {
                    assert_eq!(item, &vec![i as u8; 16], "flip at {off}: not a prefix");
                }
            }
            Err(StorageError::Corrupt { .. }) => {}
            Err(e) => panic!("flip at {off}: unexpected error kind {e}"),
        }
    }
    // A flip strictly inside an interior payload is always fatal.
    crash::truncated_copy(&path, &copy, full).unwrap();
    crash::flip_byte(&copy, (HEADER_LEN + 4) as u64, 0xA5).unwrap();
    assert!(matches!(
        AppendLog::open(&copy),
        Err(StorageError::Corrupt { .. })
    ));
    // A flip inside the very first header byte specifically must not be
    // read as a shorter valid record (CRC covers the payload).
    crash::truncated_copy(&path, &copy, full).unwrap();
    crash::flip_byte(&copy, (HEADER_LEN / 2) as u64, 0xFF).unwrap();
    assert!(matches!(
        AppendLog::open(&copy),
        Err(StorageError::Corrupt { .. })
    ));
    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&copy).unwrap();
}
