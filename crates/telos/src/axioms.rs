//! The CML axioms as checkable judgements.
//!
//! §3.1: "Axioms of CML restrict the set of well-formed networks and
//! help define their semantics." Construction-time checks in [`crate::kb`]
//! enforce the cheap ones (isa acyclicity, reserved labels); the
//! functions here validate a whole KB — they are what the object
//! processor's Consistency Checker calls, set-oriented, after a batch
//! of TELLs.

use crate::kb::Kb;
use crate::prop::PropId;
use std::fmt;

/// One detected axiom violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the violated axiom.
    pub axiom: &'static str,
    /// The offending proposition.
    pub prop: PropId,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.axiom, self.message)
    }
}

/// Attribute typing (aggregation axiom): for every believed attribute
/// proposition `a = <x, l, y>` classified under an attribute class
/// `A = <C, m, D>`, `x` must be an instance of `C` and `y` an instance
/// of `D`.
pub fn check_attribute_typing(kb: &Kb) -> Vec<Violation> {
    let mut out = Vec::new();
    for id in all_ids(kb) {
        typing_for(kb, id, &mut out);
    }
    out
}

fn all_ids(kb: &Kb) -> impl Iterator<Item = PropId> {
    (0..kb.len() as u32).map(PropId)
}

fn typing_for(kb: &Kb, id: PropId, out: &mut Vec<Violation>) {
    let p = match kb.get(id) {
        Ok(p) => p.clone(),
        Err(_) => return,
    };
    if !p.is_believed() || p.is_individual() {
        return;
    }
    let Some(attr_class_id) = kb.attr_class_of(id) else {
        return;
    };
    let Ok(attr_class) = kb.get(attr_class_id) else {
        return;
    };
    if attr_class.is_individual() {
        return; // classified under a plain class, not an attribute class
    }
    let (c, d) = (attr_class.source, attr_class.dest);
    if !kb.is_instance_of(p.source, c) {
        out.push(Violation {
            axiom: "attribute-typing/source",
            prop: id,
            message: format!(
                "{}: source `{}` is not an instance of `{}`",
                kb.display(id),
                kb.display(p.source),
                kb.display(c)
            ),
        });
    }
    if !kb.is_instance_of(p.dest, d) {
        out.push(Violation {
            axiom: "attribute-typing/dest",
            prop: id,
            message: format!(
                "{}: destination `{}` is not an instance of `{}`",
                kb.display(id),
                kb.display(p.dest),
                kb.display(d)
            ),
        });
    }
}

/// Strict aggregation: every believed attribute on an object that has
/// at least one class must be *declarable* — some class of the object
/// (transitively) carries an attribute class with the same label.
/// Objects with no classes at all (raw network nodes) are exempt.
pub fn check_attribute_declared(kb: &Kb) -> Vec<Violation> {
    let mut out = Vec::new();
    for id in all_ids(kb) {
        declared_for(kb, id, &mut out);
    }
    out
}

fn declared_for(kb: &Kb, id: PropId, out: &mut Vec<Violation>) {
    let Ok(p) = kb.get(id) else { return };
    if !p.is_believed() || p.is_individual() {
        return;
    }
    let label = kb.resolve(p.label).to_string();
    if label == crate::kb::L_INSTANCEOF || label == crate::kb::L_ISA {
        return;
    }
    let owner = p.source;
    if kb.classes_of(owner).is_empty() {
        return; // untyped node: class-level modelling, exempt
    }
    // An attribute *on a class* is an attribute class — a declaration,
    // not a use — and therefore exempt.
    if kb.is_instance_of(owner, kb.builtins().class) {
        return;
    }
    if kb.find_attr_class(owner, &label).is_none() {
        out.push(Violation {
            axiom: "aggregation/undeclared",
            prop: id,
            message: format!(
                "attribute `{}` on `{}` matches no attribute class",
                label,
                kb.display(owner)
            ),
        });
    }
}

/// Specialization soundness: the believed isa graph is acyclic. The
/// KB rejects cycles at TELL time, so a violation here indicates
/// memory corruption or a bad replay — checked anyway, defensively.
pub fn check_isa_acyclic(kb: &Kb) -> Vec<Violation> {
    let mut out = Vec::new();
    for id in all_ids(kb) {
        acyclic_for(kb, id, &mut out);
    }
    out
}

fn acyclic_for(kb: &Kb, id: PropId, out: &mut Vec<Violation>) {
    let Ok(p) = kb.get(id) else { return };
    if !p.is_believed() || p.is_individual() {
        return;
    }
    if kb.resolve(p.label) != crate::kb::L_ISA {
        return;
    }
    if kb.isa_ancestors(p.dest).contains(&p.source) {
        out.push(Violation {
            axiom: "specialization/cycle",
            prop: id,
            message: format!("isa cycle through {}", kb.display(id)),
        });
    }
}

/// Attribute refinement: if `C isa D` and both declare an attribute
/// class with the same label, every declaration on `C` must refine
/// *some* declaration on `D` with that label — the value class equals
/// it, specializes it, or is an instance of it (value refinement).
/// Declarations are multi-valued, so the check is existential over
/// `D`'s declarations.
pub fn check_attribute_refinement(kb: &Kb) -> Vec<Violation> {
    let mut out = Vec::new();
    for c in all_ids(kb) {
        refinement_for(kb, c, &mut out);
    }
    out
}

fn refinement_for(kb: &Kb, c: PropId, out: &mut Vec<Violation>) {
    let Ok(p) = kb.get(c) else { return };
    if !p.is_believed() || !p.is_individual() {
        return;
    }
    for d in kb.isa_ancestors(c) {
        for attr_c in kb.attrs_of(c) {
            let Ok(ac) = kb.get(attr_c) else { continue };
            let label = kb.resolve(ac.label).to_string();
            let super_decls: Vec<PropId> = kb
                .attrs_of(d)
                .into_iter()
                .filter(|&a| {
                    kb.get(a)
                        .map(|ad| kb.resolve(ad.label) == label)
                        .unwrap_or(false)
                })
                .collect();
            if super_decls.is_empty() {
                continue; // label not declared above: nothing to refine
            }
            let refines_one = super_decls.iter().any(|&a| {
                let Ok(ad) = kb.get(a) else { return false };
                ac.dest == ad.dest
                    || kb.isa_ancestors(ac.dest).contains(&ad.dest)
                    || kb.is_instance_of(ac.dest, ad.dest)
            });
            if !refines_one {
                out.push(Violation {
                    axiom: "specialization/attribute-refinement",
                    prop: attr_c,
                    message: format!(
                        "`{}`.{} : `{}` refines no `{}`.{} declaration",
                        kb.display(c),
                        label,
                        kb.display(ac.dest),
                        kb.display(d),
                        label
                    ),
                });
            }
        }
    }
}

/// Runs every axiom check.
pub fn check_all(kb: &Kb) -> Vec<Violation> {
    let mut out = check_attribute_typing(kb);
    out.extend(check_attribute_declared(kb));
    out.extend(check_isa_acyclic(kb));
    out.extend(check_attribute_refinement(kb));
    out
}

/// Set-oriented axiom check over a batch: only the given propositions
/// (and for refinement, the individuals they touch) are re-validated.
/// Sound for incremental use because every axiom here is *local* to a
/// proposition and the objects it connects: a fresh violation can only
/// involve a proposition of the batch.
pub fn check_props(kb: &Kb, ids: &[PropId]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut refinement_roots: Vec<PropId> = Vec::new();
    for &id in ids {
        typing_for(kb, id, &mut out);
        declared_for(kb, id, &mut out);
        acyclic_for(kb, id, &mut out);
        let Ok(p) = kb.get(id) else { continue };
        let root = if p.is_individual() { id } else { p.source };
        if !refinement_roots.contains(&root) {
            refinement_roots.push(root);
        }
        // New isa links threaten refinement of the subclass side's
        // existing declarations (and its descendants'); a new attribute
        // declaration on a class likewise threatens every subclass that
        // redeclares the label.
        let is_isa = !p.is_individual() && kb.resolve(p.label) == crate::kb::L_ISA;
        let is_attr_decl =
            !p.is_individual() && kb.resolve(p.label) != crate::kb::L_INSTANCEOF && !is_isa;
        if is_isa || is_attr_decl {
            for desc in kb.isa_descendants(p.source) {
                if !refinement_roots.contains(&desc) {
                    refinement_roots.push(desc);
                }
            }
        }
    }
    for root in refinement_roots {
        refinement_for(kb, root, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_is_axiom_clean() {
        let kb = Kb::new();
        assert_eq!(check_all(&kb), Vec::new());
    }

    #[test]
    fn well_typed_attribute_passes() {
        let mut kb = Kb::new();
        let invitation = kb.individual("Invitation").unwrap();
        let person = kb.individual("Person").unwrap();
        let inv42 = kb.individual("inv42").unwrap();
        let maria = kb.individual("maria").unwrap();
        kb.instantiate(inv42, invitation).unwrap();
        kb.instantiate(maria, person).unwrap();
        let sender = kb.put_attr(invitation, "sender", person).unwrap();
        kb.put_attr_typed(inv42, "sender", maria, sender).unwrap();
        assert!(check_attribute_typing(&kb).is_empty());
        assert!(check_attribute_declared(&kb).is_empty());
    }

    #[test]
    fn ill_typed_attribute_detected() {
        let mut kb = Kb::new();
        let invitation = kb.individual("Invitation").unwrap();
        let person = kb.individual("Person").unwrap();
        let room = kb.individual("Room").unwrap();
        let inv42 = kb.individual("inv42").unwrap();
        let hall = kb.individual("hall").unwrap();
        kb.instantiate(inv42, invitation).unwrap();
        kb.instantiate(hall, room).unwrap();
        let sender = kb.put_attr(invitation, "sender", person).unwrap();
        // hall is a Room, not a Person:
        kb.put_attr_typed(inv42, "sender", hall, sender).unwrap();
        let v = check_attribute_typing(&kb);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].axiom, "attribute-typing/dest");
        assert!(v[0].to_string().contains("hall"));
    }

    #[test]
    fn undeclared_attribute_detected() {
        let mut kb = Kb::new();
        let invitation = kb.individual("Invitation").unwrap();
        let inv42 = kb.individual("inv42").unwrap();
        let x = kb.individual("x").unwrap();
        kb.instantiate(inv42, invitation).unwrap();
        kb.put_attr(inv42, "bogus", x).unwrap();
        let v = check_attribute_declared(&kb);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].axiom, "aggregation/undeclared");
    }

    #[test]
    fn refinement_violation_detected() {
        let mut kb = Kb::new();
        let paper = kb.individual("Paper").unwrap();
        let invitation = kb.individual("Invitation").unwrap();
        let person = kb.individual("Person").unwrap();
        let room = kb.individual("Room").unwrap();
        kb.specialize(invitation, paper).unwrap();
        kb.put_attr(paper, "author", person).unwrap();
        // Invitation redeclares author with an unrelated class:
        kb.put_attr(invitation, "author", room).unwrap();
        let v = check_attribute_refinement(&kb);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].axiom, "specialization/attribute-refinement");
    }

    #[test]
    fn valid_refinement_passes() {
        let mut kb = Kb::new();
        let paper = kb.individual("Paper").unwrap();
        let invitation = kb.individual("Invitation").unwrap();
        let person = kb.individual("Person").unwrap();
        let organizer = kb.individual("Organizer").unwrap();
        kb.specialize(invitation, paper).unwrap();
        kb.specialize(organizer, person).unwrap();
        kb.put_attr(paper, "author", person).unwrap();
        kb.put_attr(invitation, "author", organizer).unwrap();
        assert!(check_attribute_refinement(&kb).is_empty());
    }

    #[test]
    fn batch_check_sees_superclass_declaration_conflicts() {
        // Incremental soundness: a new declaration on a parent class
        // must re-validate the subclasses' redeclarations.
        let mut kb = Kb::new();
        let paper = kb.individual("Paper").unwrap();
        let invitation = kb.individual("Invitation").unwrap();
        let person = kb.individual("Person").unwrap();
        let room = kb.individual("Room").unwrap();
        kb.specialize(invitation, paper).unwrap();
        kb.put_attr(invitation, "author", room).unwrap();
        assert!(check_all(&kb).is_empty(), "no conflict before the batch");
        // The batch: a conflicting declaration on the superclass.
        let decl = kb.put_attr(paper, "author", person).unwrap();
        let v = check_props(&kb, &[decl]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].axiom, "specialization/attribute-refinement");
    }

    #[test]
    fn untold_violations_disappear() {
        let mut kb = Kb::new();
        let invitation = kb.individual("Invitation").unwrap();
        let inv42 = kb.individual("inv42").unwrap();
        let x = kb.individual("x").unwrap();
        kb.instantiate(inv42, invitation).unwrap();
        let bad = kb.put_attr(inv42, "bogus", x).unwrap();
        assert_eq!(check_all(&kb).len(), 1);
        kb.untell(bad).unwrap();
        assert!(check_all(&kb).is_empty());
    }
}
