//! Immutable, shareable versions of the proposition store.
//!
//! [`KbVersion`] is an owned, `Send + Sync` copy of everything a
//! belief-time read needs: the propositions, the three access-path
//! indexes, the symbol table and the clock. It is built by
//! [`crate::Kb::version`] through structural sharing — the proposition
//! chunks ([`PVec`]) and index postings ([`PIndex`]) are behind `Arc`s,
//! so capturing a version costs one pointer bump per chunk/posting
//! list, not a deep copy — and once captured it never changes: the
//! writer's later TELLs and UNTELLs copy the chunks they touch instead
//! of mutating shared memory.
//!
//! The read logic itself lives in the [`PropStore`] trait, implemented
//! by both the live [`crate::Kb`] and [`KbVersion`], so
//! [`crate::Snapshot`] evaluates identically over either: a snapshot of
//! a version pinned at watermark `w` answers byte-identically to a
//! snapshot of the live KB at `w`. That equivalence is what lets the
//! server serve ASK from a pinned version without the writer lock.

use crate::kb::{KbRead, Snapshot};
use crate::prop::{PropId, Proposition};
use crate::pvec::PVec;
use crate::symbols::{Symbol, SymbolTable};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// A persistent postings index: key → ids of propositions filed under
/// it, in insertion (= id) order. The map spine is cloned per version;
/// the posting lists are shared `Arc`s, copied on write only when a
/// shared list grows.
#[derive(Debug, Clone)]
pub struct PIndex<K: Eq + Hash> {
    map: HashMap<K, Arc<Vec<PropId>>>,
}

impl<K: Eq + Hash> PIndex<K> {
    /// An empty index.
    pub fn new() -> Self {
        PIndex {
            map: HashMap::new(),
        }
    }

    /// Files `value` under `key`. Values are only ever appended with
    /// increasing ids, so each posting list stays sorted by
    /// construction.
    pub fn insert(&mut self, key: K, value: PropId) {
        Arc::make_mut(self.map.entry(key).or_default()).push(value);
    }

    /// The posting list for `key` (empty if absent).
    pub fn get(&self, key: &K) -> &[PropId] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

impl<K: Eq + Hash> Default for PIndex<K> {
    fn default() -> Self {
        PIndex::new()
    }
}

/// The raw read surface shared by the live [`crate::Kb`] and an
/// immutable [`KbVersion`]: dense proposition access, the three access
/// paths, and symbol resolution. [`Snapshot`] is generic over this
/// trait, so belief-time query logic is written once.
pub trait PropStore {
    /// Total number of propositions ever told.
    fn prop_count(&self) -> usize;
    /// The proposition with the given id, if in bounds.
    fn prop(&self, id: PropId) -> Option<&Proposition>;
    /// Resolves a symbol to its string.
    fn resolve_sym(&self, sym: Symbol) -> &str;
    /// Looks up an existing symbol without interning.
    fn lookup_sym(&self, s: &str) -> Option<Symbol>;
    /// Ids of propositions with source `x`.
    fn postings_from(&self, x: PropId) -> &[PropId];
    /// Ids of propositions carrying `label`.
    fn postings_label(&self, label: Symbol) -> &[PropId];
    /// Ids of propositions with destination `y`.
    fn postings_to(&self, y: PropId) -> &[PropId];
    /// The interned `instanceof` symbol.
    fn instanceof_sym(&self) -> Symbol;
    /// The interned `isa` symbol.
    fn isa_sym(&self) -> Symbol;

    /// True if `l` is one of the reserved link labels.
    fn is_link_sym(&self, l: Symbol) -> bool {
        l == self.instanceof_sym() || l == self.isa_sym()
    }

    /// Human-readable name: an individual's label, or `<src label dst>`.
    fn display_prop(&self, id: PropId) -> String {
        match self.prop(id) {
            None => format!("?{}", id.0),
            Some(p) if p.is_individual() => self.resolve_sym(p.label).to_string(),
            Some(p) => format!(
                "<{} {} {}>",
                self.display_prop(p.source),
                self.resolve_sym(p.label),
                self.display_prop(p.dest)
            ),
        }
    }

    /// Destinations of links `<x, label, _>` live in the given belief
    /// view (`None` = believed now, `Some(t)` = believed at tick `t`).
    fn typed_dests_at(&self, x: PropId, label: Symbol, at: Option<i64>) -> Vec<PropId> {
        self.postings_from(x)
            .iter()
            .copied()
            .filter_map(|p| {
                let prop = self.prop(p)?;
                let live = match at {
                    None => prop.is_believed(),
                    Some(t) => prop.believed_at(t),
                };
                (live && prop.label == label && p != x).then_some(prop.dest)
            })
            .collect()
    }

    /// Sources of links `<_, label, y>` live in the given belief view.
    fn typed_sources_at(&self, y: PropId, label: Symbol, at: Option<i64>) -> Vec<PropId> {
        self.postings_to(y)
            .iter()
            .copied()
            .filter_map(|p| {
                let prop = self.prop(p)?;
                let live = match at {
                    None => prop.is_believed(),
                    Some(t) => prop.believed_at(t),
                };
                (live && prop.label == label && p != y).then_some(prop.source)
            })
            .collect()
    }
}

/// An immutable version of the knowledge base, captured at a belief
/// tick by [`crate::Kb::version`]. `Send + Sync` and self-contained:
/// readers holding a version never touch the live KB or any lock.
#[derive(Debug, Clone)]
pub struct KbVersion {
    pub(crate) symbols: SymbolTable,
    pub(crate) props: PVec<Proposition>,
    pub(crate) by_source: PIndex<PropId>,
    pub(crate) by_label: PIndex<Symbol>,
    pub(crate) by_dest: PIndex<PropId>,
    pub(crate) clock: i64,
    pub(crate) sym_instanceof: Symbol,
    pub(crate) sym_isa: Symbol,
}

impl KbVersion {
    /// The belief tick at which this version was captured. All belief
    /// ticks ≤ this are fully answerable from this version.
    pub fn now(&self) -> i64 {
        self.clock
    }

    /// Total number of propositions ever told, as of capture.
    pub fn len(&self) -> usize {
        self.props.len()
    }

    /// True if the version holds no propositions.
    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }

    /// The proposition with the given id, if present in this version.
    pub fn get(&self, id: PropId) -> Option<&Proposition> {
        self.props.get(id.idx())
    }

    /// Human-readable name of a proposition.
    pub fn display(&self, id: PropId) -> String {
        self.display_prop(id)
    }

    /// A read-only view pinned at the capture tick.
    pub fn snapshot(&self) -> Snapshot<'_, KbVersion> {
        self.snapshot_at(self.clock)
    }

    /// A read-only view pinned at belief tick `at` (≤ the capture tick
    /// for full fidelity). Answers are byte-identical to
    /// `Kb::snapshot_at(at)` on the KB this version was captured from.
    pub fn snapshot_at(&self, at: i64) -> Snapshot<'_, KbVersion> {
        Snapshot::over(self, at)
    }
}

impl PropStore for KbVersion {
    fn prop_count(&self) -> usize {
        self.props.len()
    }
    fn prop(&self, id: PropId) -> Option<&Proposition> {
        self.props.get(id.idx())
    }
    fn resolve_sym(&self, sym: Symbol) -> &str {
        self.symbols.resolve(sym)
    }
    fn lookup_sym(&self, s: &str) -> Option<Symbol> {
        self.symbols.lookup(s)
    }
    fn postings_from(&self, x: PropId) -> &[PropId] {
        self.by_source.get(&x)
    }
    fn postings_label(&self, label: Symbol) -> &[PropId] {
        self.by_label.get(&label)
    }
    fn postings_to(&self, y: PropId) -> &[PropId] {
        self.by_dest.get(&y)
    }
    fn instanceof_sym(&self) -> Symbol {
        self.sym_instanceof
    }
    fn isa_sym(&self) -> Symbol {
        self.sym_isa
    }
}

/// Current-belief reads against a version answer as of its capture
/// tick, matching what `KbRead for Kb` answered at that moment.
impl KbRead for KbVersion {
    fn lookup(&self, name: &str) -> Option<PropId> {
        self.snapshot().lookup(name)
    }
    fn display(&self, id: PropId) -> String {
        self.display_prop(id)
    }
    fn is_instance_of(&self, x: PropId, c: PropId) -> bool {
        self.snapshot().is_instance_of(x, c)
    }
    fn isa_ancestors(&self, c: PropId) -> Vec<PropId> {
        self.snapshot().isa_ancestors(c)
    }
    fn all_instances_of(&self, c: PropId) -> Vec<PropId> {
        self.snapshot().all_instances_of(c)
    }
    fn attr_values(&self, x: PropId, label: &str) -> Vec<PropId> {
        self.snapshot().attr_values(x, label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kb;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn version_is_send_sync() {
        assert_send_sync::<KbVersion>();
    }

    #[test]
    fn version_answers_like_the_kb_it_was_captured_from() {
        let mut kb = Kb::new();
        let c = kb.individual("C").unwrap();
        let x = kb.individual("x").unwrap();
        kb.instantiate(x, c).unwrap();
        let v = kb.version();
        assert_eq!(v.now(), kb.now());
        assert_eq!(v.len(), kb.len());
        assert_eq!(v.lookup("x"), Some(x));
        assert_eq!(v.display(x), "x");
        assert_eq!(
            v.snapshot().all_instances_of(c),
            kb.snapshot().all_instances_of(c)
        );
    }

    #[test]
    fn version_is_immutable_under_later_writes() {
        let mut kb = Kb::new();
        let c = kb.individual("C").unwrap();
        let x = kb.individual("x").unwrap();
        let link = kb.instantiate(x, c).unwrap();
        let w = kb.now();
        let v = kb.version();

        // Later TELL and UNTELL do not leak into the captured version.
        // (As in the server's begin_write, the clock ticks before the
        // mutation, so the new belief intervals start above `w`.)
        kb.tick();
        let y = kb.individual("y").unwrap();
        kb.instantiate(y, c).unwrap();
        kb.untell(link).unwrap();

        assert_eq!(v.snapshot_at(w).all_instances_of(c), vec![x]);
        assert_eq!(v.lookup("y"), None);
        assert_eq!(v.len() + 2, kb.len());
        // And the version agrees with a live temporal query at w.
        assert_eq!(
            v.snapshot_at(w).all_instances_of(c),
            kb.snapshot_at(w).all_instances_of(c)
        );
    }

    #[test]
    fn pindex_append_and_miss() {
        let mut ix: PIndex<Symbol> = PIndex::new();
        assert!(ix.get(&Symbol(0)).is_empty());
        ix.insert(Symbol(0), PropId(1));
        ix.insert(Symbol(0), PropId(4));
        ix.insert(Symbol(2), PropId(5));
        assert_eq!(ix.get(&Symbol(0)), &[PropId(1), PropId(4)]);
        assert_eq!(ix.get(&Symbol(2)), &[PropId(5)]);
        let snap = ix.clone();
        ix.insert(Symbol(0), PropId(9));
        assert_eq!(snap.get(&Symbol(0)), &[PropId(1), PropId(4)]);
        assert_eq!(ix.get(&Symbol(0)), &[PropId(1), PropId(4), PropId(9)]);
    }
}
