//! A persistent chunked vector with copy-on-write structural sharing.
//!
//! [`PVec`] stores elements in fixed-capacity chunks behind [`Arc`]s.
//! Cloning copies only the spine (one `Arc` per chunk), so a clone of a
//! million-proposition store costs a few thousand pointer bumps and the
//! two copies share every chunk. Mutation goes through
//! [`Arc::make_mut`]: a `push` or in-place update copies at most one
//! chunk (the one it touches) when that chunk is shared with an older
//! clone, leaving all other chunks shared.
//!
//! This is the storage layer of the MVCC proposition store: the writer
//! owns the live `PVec` and publishes cheap clones as immutable
//! versions; closing a belief interval copies one chunk instead of
//! invalidating every outstanding reader.

use std::ops::Index;
use std::sync::Arc;

/// Elements per chunk. Large enough that the spine stays short, small
/// enough that a copy-on-write of one chunk is cheap.
const CHUNK: usize = 512;

/// A persistent vector: O(1) indexed reads, amortized O(1) append,
/// O(len / CHUNK) clone, copy-on-write in-place updates.
#[derive(Debug, Clone, Default)]
pub struct PVec<T> {
    chunks: Vec<Arc<Vec<T>>>,
    len: usize,
}

impl<T: Clone> PVec<T> {
    /// An empty vector.
    pub fn new() -> Self {
        PVec {
            chunks: Vec::new(),
            len: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no elements have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends an element. Copies the tail chunk only if it is shared
    /// with a clone.
    pub fn push(&mut self, value: T) {
        if self.len == self.chunks.len() * CHUNK {
            let mut v = Vec::with_capacity(CHUNK);
            v.push(value);
            self.chunks.push(Arc::new(v));
        } else {
            let last = self.chunks.last_mut().expect("tail chunk exists");
            Arc::make_mut(last).push(value);
        }
        self.len += 1;
    }

    /// The element at `i`, if in bounds.
    pub fn get(&self, i: usize) -> Option<&T> {
        if i >= self.len {
            return None;
        }
        Some(&self.chunks[i / CHUNK][i % CHUNK])
    }

    /// Mutable access to the element at `i`. Copies the containing
    /// chunk if it is shared (copy-on-write), so clones taken earlier
    /// are unaffected by the mutation.
    pub fn get_mut(&mut self, i: usize) -> Option<&mut T> {
        if i >= self.len {
            return None;
        }
        let chunk = Arc::make_mut(&mut self.chunks[i / CHUNK]);
        Some(&mut chunk[i % CHUNK])
    }

    /// Iterates over all elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// Number of chunks currently shared with at least one clone.
    /// Diagnostic only (used by tests to prove structural sharing).
    pub fn shared_chunks(&self) -> usize {
        self.chunks
            .iter()
            .filter(|c| Arc::strong_count(c) > 1)
            .count()
    }
}

impl<T: Clone> Index<usize> for PVec<T> {
    type Output = T;

    fn index(&self, i: usize) -> &T {
        self.get(i).expect("PVec index out of bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip_across_chunks() {
        let mut v = PVec::new();
        for i in 0..(CHUNK * 3 + 17) {
            v.push(i);
        }
        assert_eq!(v.len(), CHUNK * 3 + 17);
        for i in 0..v.len() {
            assert_eq!(v[i], i);
        }
        assert_eq!(v.get(v.len()), None);
        let collected: Vec<usize> = v.iter().copied().collect();
        assert_eq!(collected.len(), v.len());
        assert_eq!(collected[CHUNK + 1], CHUNK + 1);
    }

    #[test]
    fn clone_is_isolated_from_later_pushes() {
        let mut v = PVec::new();
        for i in 0..(CHUNK + 10) {
            v.push(i);
        }
        let snap = v.clone();
        for i in 0..CHUNK {
            v.push(1_000_000 + i);
        }
        assert_eq!(snap.len(), CHUNK + 10);
        assert_eq!(snap.get(CHUNK + 10), None);
        assert_eq!(v.len(), 2 * CHUNK + 10);
        assert_eq!(v[CHUNK + 10], 1_000_000);
    }

    #[test]
    fn get_mut_copies_only_the_touched_chunk() {
        let mut v = PVec::new();
        for i in 0..(CHUNK * 4) {
            v.push(i);
        }
        let snap = v.clone();
        assert_eq!(v.shared_chunks(), 4, "all chunks shared after clone");
        *v.get_mut(0).unwrap() = 999;
        // Chunk 0 was copied for the write; chunks 1..4 stay shared.
        assert_eq!(v.shared_chunks(), 3);
        assert_eq!(snap[0], 0, "older clone unaffected");
        assert_eq!(v[0], 999);
        assert_eq!(v[CHUNK], snap[CHUNK], "untouched chunks identical");
    }

    #[test]
    fn empty_vector() {
        let v: PVec<u8> = PVec::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.get(0), None);
        assert_eq!(v.iter().count(), 0);
    }
}
