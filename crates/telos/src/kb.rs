//! The proposition base and its operations.
//!
//! [`Kb`] stores every proposition ever told, maintains four access
//! paths (by id, by source, by label, by destination), and exposes the
//! two operations of the paper's proposition-processor interface —
//! `create_proposition` and `retrieve_proposition` — in typed form:
//! TELL-style constructors ([`Kb::individual`], [`Kb::instantiate`],
//! [`Kb::specialize`], [`Kb::put_attr`]) and retrieval methods that
//! respect belief time and the classification/specialization axioms.
//!
//! Nothing is ever destructively deleted: [`Kb::untell`] closes a
//! proposition's belief interval, so past states remain queryable
//! (`*_at` variants) — the basis of temporal navigation (§3.3.1).

use crate::backend::KbBackend;
use crate::error::{TelosError, TelosResult};
use crate::omega::{self, Builtins};
use crate::prop::{PropId, Proposition};
use crate::pvec::PVec;
use crate::symbols::{Symbol, SymbolTable};
use crate::time::interval::Interval;
use crate::version::{KbVersion, PIndex, PropStore};
use std::collections::{HashMap, HashSet, VecDeque};

/// Reserved label of classification links.
pub const L_INSTANCEOF: &str = "instanceof";
/// Reserved label of specialization links.
pub const L_ISA: &str = "isa";

/// The knowledge base: proposition store + access paths + clock.
///
/// Storage is persistent (chunked `Arc` spines — see [`crate::pvec`]),
/// so [`Kb::version`] captures an immutable [`KbVersion`] by structural
/// sharing and later writes copy only the chunks they touch.
pub struct Kb {
    symbols: SymbolTable,
    props: PVec<Proposition>,
    /// Believed individuals by name.
    by_name: HashMap<Symbol, PropId>,
    by_source: PIndex<PropId>,
    by_label: PIndex<Symbol>,
    by_dest: PIndex<PropId>,
    /// Belief-time clock: advanced by [`Kb::tick`].
    clock: i64,
    backend: KbBackend,
    builtins: Builtins,
    sym_instanceof: Symbol,
    sym_isa: Symbol,
}

impl Kb {
    /// A fresh in-memory KB with the ω-level bootstrapped.
    pub fn new() -> Self {
        Kb::with_backend(KbBackend::Memory).expect("in-memory bootstrap cannot fail")
    }

    /// Opens a KB on the given backend. An empty backend is
    /// bootstrapped (and the bootstrap recorded); a non-empty one is
    /// replayed.
    pub fn with_backend(mut backend: KbBackend) -> TelosResult<Self> {
        let replayed = backend.load()?;
        let mut symbols = SymbolTable::new();
        let sym_instanceof = symbols.intern(L_INSTANCEOF);
        let sym_isa = symbols.intern(L_ISA);
        let mut kb = Kb {
            symbols,
            props: PVec::new(),
            by_name: HashMap::new(),
            by_source: PIndex::new(),
            by_label: PIndex::new(),
            by_dest: PIndex::new(),
            clock: 0,
            backend: KbBackend::Memory, // installed after replay
            builtins: Builtins::placeholder(),
            sym_instanceof,
            sym_isa,
        };
        match replayed {
            Some(ops) => {
                kb.replay(ops)?;
                kb.backend = backend;
                kb.builtins = Builtins::resolve(&kb)?;
            }
            None => {
                kb.backend = backend;
                kb.builtins = omega::bootstrap(&mut kb)?;
            }
        }
        Ok(kb)
    }

    fn replay(&mut self, ops: Vec<crate::backend::LogOp>) -> TelosResult<()> {
        use crate::backend::LogOp;
        for op in ops {
            match op {
                LogOp::Create {
                    id,
                    source,
                    label,
                    dest,
                    history,
                    belief_start,
                } => {
                    if id.idx() != self.props.len() {
                        return Err(TelosError::Storage(storage::StorageError::Corrupt {
                            offset: 0,
                            detail: format!("replay id gap at {id:?}"),
                        }));
                    }
                    let label = self.symbols.intern(&label);
                    let prop = Proposition {
                        id,
                        source,
                        label,
                        dest,
                        history,
                        belief: Interval::from_tick(belief_start),
                    };
                    self.index_prop(&prop);
                    self.props.push(prop);
                }
                LogOp::Close { id, at } => {
                    self.apply_close(id, at)?;
                }
                LogOp::Tick { to } => {
                    self.clock = to;
                }
            }
        }
        Ok(())
    }

    fn index_prop(&mut self, p: &Proposition) {
        self.by_source.insert(p.source, p.id);
        self.by_label.insert(p.label, p.id);
        self.by_dest.insert(p.dest, p.id);
        if p.is_individual() {
            self.by_name.insert(p.label, p.id);
        }
    }

    fn apply_close(&mut self, id: PropId, at: i64) -> TelosResult<()> {
        let p = self
            .props
            .get_mut(id.idx())
            .ok_or(TelosError::UnknownProposition(id))?;
        p.belief = p.belief.closed_at(at)?;
        if p.source == p.id && p.dest == p.id {
            let label = p.label;
            if self.by_name.get(&label) == Some(&id) {
                self.by_name.remove(&label);
            }
        }
        Ok(())
    }

    // ----- clock ---------------------------------------------------------

    /// Current belief tick.
    pub fn now(&self) -> i64 {
        self.clock
    }

    /// Advances the belief clock (one "transaction boundary") and
    /// returns the new tick.
    pub fn tick(&mut self) -> i64 {
        self.clock += 1;
        self.backend.record_tick(self.clock);
        self.clock
    }

    // ----- symbols -------------------------------------------------------

    /// Interns a string as a symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.symbols.intern(s)
    }

    /// Resolves a symbol to its string.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.symbols.resolve(sym)
    }

    /// The ω-level built-in objects.
    pub fn builtins(&self) -> &Builtins {
        &self.builtins
    }

    // ----- creation ------------------------------------------------------

    /// Low-level `create_proposition`: records `<id, source, label,
    /// dest, history>` believed from now on. Prefer the typed
    /// constructors below.
    pub fn create_raw(
        &mut self,
        source: PropId,
        label: Symbol,
        dest: PropId,
        history: Interval,
    ) -> TelosResult<PropId> {
        // Both endpoints must denote existing propositions; the
        // self-referential case of individual creation goes through
        // [`Kb::individual`], which does not call this path.
        if source.idx() >= self.props.len() {
            return Err(TelosError::UnknownProposition(source));
        }
        if dest.idx() >= self.props.len() {
            return Err(TelosError::UnknownProposition(dest));
        }
        let id = PropId(self.props.len() as u32);
        let prop = Proposition {
            id,
            source,
            label,
            dest,
            history,
            belief: Interval::from_tick(self.clock),
        };
        self.index_prop(&prop);
        self.backend
            .record_create(&prop, self.symbols.resolve(label))?;
        self.props.push(prop);
        Ok(id)
    }

    /// Finds the believed individual named `name`, or creates a
    /// self-referential proposition for it (history `Always`).
    pub fn individual(&mut self, name: &str) -> TelosResult<PropId> {
        self.individual_during(name, Interval::always())
    }

    /// Like [`Kb::individual`], with an explicit history time.
    pub fn individual_during(&mut self, name: &str, history: Interval) -> TelosResult<PropId> {
        let sym = self.symbols.intern(name);
        if let Some(&id) = self.by_name.get(&sym) {
            return Ok(id);
        }
        let id = PropId(self.props.len() as u32);
        let prop = Proposition {
            id,
            source: id,
            label: sym,
            dest: id,
            history,
            belief: Interval::from_tick(self.clock),
        };
        self.index_prop(&prop);
        self.backend.record_create(&prop, name)?;
        self.props.push(prop);
        Ok(id)
    }

    /// The believed individual named `name`, if any.
    pub fn lookup(&self, name: &str) -> Option<PropId> {
        let sym = self.symbols.lookup(name)?;
        self.by_name.get(&sym).copied()
    }

    /// Like [`Kb::lookup`] but an error if absent.
    pub fn expect(&self, name: &str) -> TelosResult<PropId> {
        self.lookup(name)
            .ok_or_else(|| TelosError::UnknownName(name.to_string()))
    }

    /// Creates (or finds) the believed classification link `x instanceof c`.
    pub fn instantiate(&mut self, x: PropId, c: PropId) -> TelosResult<PropId> {
        if let Some(existing) = self.find_link(x, self.sym_instanceof, c) {
            return Ok(existing);
        }
        self.create_raw(x, self.sym_instanceof, c, Interval::always())
    }

    /// Creates (or finds) the believed specialization link `c isa d`.
    /// Rejects cycles (the specialization axiom requires a partial
    /// order).
    pub fn specialize(&mut self, c: PropId, d: PropId) -> TelosResult<PropId> {
        if c == d || self.isa_ancestors(d).contains(&c) {
            return Err(TelosError::AxiomViolation(format!(
                "isa cycle: `{}` isa `{}`",
                self.display(c),
                self.display(d)
            )));
        }
        if let Some(existing) = self.find_link(c, self.sym_isa, d) {
            return Ok(existing);
        }
        self.create_raw(c, self.sym_isa, d, Interval::always())
    }

    /// Creates the attribute proposition `<x, label, y>` (history
    /// `Always`). `label` must not be one of the reserved link labels.
    pub fn put_attr(&mut self, x: PropId, label: &str, y: PropId) -> TelosResult<PropId> {
        self.put_attr_during(x, label, y, Interval::always())
    }

    /// Like [`Kb::put_attr`] with explicit history time.
    pub fn put_attr_during(
        &mut self,
        x: PropId,
        label: &str,
        y: PropId,
        history: Interval,
    ) -> TelosResult<PropId> {
        if label == L_INSTANCEOF || label == L_ISA {
            return Err(TelosError::AxiomViolation(format!(
                "`{label}` is a reserved link label"
            )));
        }
        let sym = self.symbols.intern(label);
        self.create_raw(x, sym, y, history)
    }

    /// Creates an attribute and classifies it under the attribute class
    /// `attr_class` (an attribute proposition on some class of `x`),
    /// materializing `<attr, instanceof, attr_class>` as fig 3-2 shows.
    pub fn put_attr_typed(
        &mut self,
        x: PropId,
        label: &str,
        y: PropId,
        attr_class: PropId,
    ) -> TelosResult<PropId> {
        let attr = self.put_attr(x, label, y)?;
        self.instantiate(attr, attr_class)?;
        Ok(attr)
    }

    /// Searches the classes of `x` (transitively, through isa) for an
    /// attribute class whose label is `label`.
    pub fn find_attr_class(&self, x: PropId, label: &str) -> Option<PropId> {
        let sym = self.symbols.lookup(label)?;
        for class in self.all_classes_of(x) {
            for &p in self.by_source.get(&class) {
                let prop = &self.props[p.idx()];
                if prop.is_believed() && prop.label == sym && !self.is_link_label(prop.label) {
                    return Some(p);
                }
            }
        }
        None
    }

    fn is_link_label(&self, l: Symbol) -> bool {
        self.is_link_sym(l)
    }

    // ----- untell --------------------------------------------------------

    /// Stops believing proposition `id` (closes its belief interval at
    /// the next tick). Links *about* `id` are untouched; see
    /// [`Kb::untell_cascade`].
    pub fn untell(&mut self, id: PropId) -> TelosResult<()> {
        let at = self.tick();
        if !self.get(id)?.is_believed() {
            return Err(TelosError::NotBelieved(id));
        }
        self.apply_close(id, at)?;
        self.backend.record_close(id, at)?;
        Ok(())
    }

    /// Stops believing `id` and, transitively, every believed link that
    /// has an untold proposition as source or destination. Returns the
    /// ids untold, in order.
    pub fn untell_cascade(&mut self, id: PropId) -> TelosResult<Vec<PropId>> {
        let at = self.tick();
        if !self.get(id)?.is_believed() {
            return Err(TelosError::NotBelieved(id));
        }
        let mut untold = Vec::new();
        let mut queue = VecDeque::from([id]);
        let mut seen = HashSet::from([id]);
        while let Some(cur) = queue.pop_front() {
            self.apply_close(cur, at)?;
            self.backend.record_close(cur, at)?;
            untold.push(cur);
            let dependents: Vec<PropId> = self
                .by_source
                .get(&cur)
                .iter()
                .chain(self.by_dest.get(&cur).iter())
                .copied()
                .filter(|&p| p != cur && self.props[p.idx()].is_believed())
                .collect();
            for d in dependents {
                if seen.insert(d) {
                    queue.push_back(d);
                }
            }
        }
        Ok(untold)
    }

    // ----- retrieval -----------------------------------------------------

    /// The proposition with the given id.
    pub fn get(&self, id: PropId) -> TelosResult<&Proposition> {
        self.props
            .get(id.idx())
            .ok_or(TelosError::UnknownProposition(id))
    }

    /// Total number of propositions ever told.
    pub fn len(&self) -> usize {
        self.props.len()
    }

    /// True if the KB holds no propositions.
    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }

    /// Number of currently believed propositions.
    pub fn believed_count(&self) -> usize {
        self.props.iter().filter(|p| p.is_believed()).count()
    }

    /// Human-readable name: an individual's label, or `<src label dst>`.
    pub fn display(&self, id: PropId) -> String {
        self.display_prop(id)
    }

    /// Finds a believed link `<x, label, y>`.
    pub fn find_link(&self, x: PropId, label: Symbol, y: PropId) -> Option<PropId> {
        self.by_source.get(&x).iter().copied().find(|&p| {
            let prop = &self.props[p.idx()];
            prop.is_believed() && prop.label == label && prop.dest == y && p != x
        })
    }

    /// All believed propositions with source `x`.
    pub fn links_from(&self, x: PropId) -> Vec<PropId> {
        self.by_source
            .get(&x)
            .iter()
            .copied()
            .filter(|&p| p != x && self.props[p.idx()].is_believed())
            .collect()
    }

    /// All believed propositions with destination `y`.
    pub fn links_to(&self, y: PropId) -> Vec<PropId> {
        self.by_dest
            .get(&y)
            .iter()
            .copied()
            .filter(|&p| p != y && self.props[p.idx()].is_believed())
            .collect()
    }

    /// All believed propositions carrying `label`.
    pub fn props_with_label(&self, label: &str) -> Vec<PropId> {
        match self.symbols.lookup(label) {
            None => Vec::new(),
            Some(sym) => self
                .by_label
                .get(&sym)
                .iter()
                .copied()
                .filter(|&p| self.props[p.idx()].is_believed())
                .collect(),
        }
    }

    /// Direct classes of `x` (believed `instanceof` links).
    pub fn classes_of(&self, x: PropId) -> Vec<PropId> {
        self.typed_dests_at(x, self.sym_instanceof, None)
    }

    /// Direct believed instances of class `c`.
    pub fn instances_of(&self, c: PropId) -> Vec<PropId> {
        self.typed_sources_at(c, self.sym_instanceof, None)
    }

    /// Direct isa parents of `c`.
    pub fn isa_parents(&self, c: PropId) -> Vec<PropId> {
        self.typed_dests_at(c, self.sym_isa, None)
    }

    /// Direct isa children of `c`.
    pub fn isa_children(&self, c: PropId) -> Vec<PropId> {
        self.typed_sources_at(c, self.sym_isa, None)
    }

    /// Transitive isa ancestors of `c` (excluding `c`), breadth-first,
    /// deduplicated.
    pub fn isa_ancestors(&self, c: PropId) -> Vec<PropId> {
        self.closure(c, |kb, x| kb.isa_parents(x))
    }

    /// Transitive isa descendants of `c` (excluding `c`).
    pub fn isa_descendants(&self, c: PropId) -> Vec<PropId> {
        self.closure(c, |kb, x| kb.isa_children(x))
    }

    fn closure(&self, start: PropId, step: impl Fn(&Kb, PropId) -> Vec<PropId>) -> Vec<PropId> {
        let mut out = Vec::new();
        let mut seen = HashSet::from([start]);
        let mut queue = VecDeque::from([start]);
        while let Some(cur) = queue.pop_front() {
            for next in step(self, cur) {
                if seen.insert(next) {
                    out.push(next);
                    queue.push_back(next);
                }
            }
        }
        out
    }

    /// Classes of `x` closed under specialization: if `x in c` and
    /// `c isa d` then `x` is also an instance of `d` (the instance-
    /// inheritance axiom).
    pub fn all_classes_of(&self, x: PropId) -> Vec<PropId> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for c in self.classes_of(x) {
            if seen.insert(c) {
                out.push(c);
            }
            for a in self.isa_ancestors(c) {
                if seen.insert(a) {
                    out.push(a);
                }
            }
        }
        out
    }

    /// Instances of `c` including those of all isa descendants.
    pub fn all_instances_of(&self, c: PropId) -> Vec<PropId> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for class in std::iter::once(c).chain(self.isa_descendants(c)) {
            for i in self.instances_of(class) {
                if seen.insert(i) {
                    out.push(i);
                }
            }
        }
        out
    }

    /// True if `x` is an instance of `c`, directly or through
    /// specialization.
    pub fn is_instance_of(&self, x: PropId, c: PropId) -> bool {
        self.classes_of(x)
            .into_iter()
            .any(|d| d == c || self.isa_ancestors(d).contains(&c))
    }

    /// Believed attribute propositions of `x` (links from `x` that are
    /// neither instanceof nor isa).
    pub fn attrs_of(&self, x: PropId) -> Vec<PropId> {
        self.by_source
            .get(&x)
            .iter()
            .copied()
            .filter(|&p| {
                let prop = &self.props[p.idx()];
                p != x && prop.is_believed() && !self.is_link_label(prop.label)
            })
            .collect()
    }

    /// Values of the believed attribute `label` on `x`.
    pub fn attr_values(&self, x: PropId, label: &str) -> Vec<PropId> {
        match self.symbols.lookup(label) {
            None => Vec::new(),
            Some(sym) if self.is_link_label(sym) => Vec::new(),
            Some(sym) => self.typed_dests_at(x, sym, None),
        }
    }

    /// The attribute class an attribute proposition was classified
    /// under, if materialized.
    pub fn attr_class_of(&self, attr: PropId) -> Option<PropId> {
        self.classes_of(attr).into_iter().next()
    }

    // ----- temporal retrieval ---------------------------------------------

    /// Direct classes of `x` as believed at tick `t`.
    pub fn classes_of_at(&self, x: PropId, t: i64) -> Vec<PropId> {
        self.typed_dests_at(x, self.sym_instanceof, Some(t))
    }

    /// Values of attribute `label` on `x` as believed at tick `t`.
    pub fn attr_values_at(&self, x: PropId, label: &str, t: i64) -> Vec<PropId> {
        match self.symbols.lookup(label) {
            None => Vec::new(),
            Some(sym) => self.typed_dests_at(x, sym, Some(t)),
        }
    }

    /// All propositions believed at tick `t`.
    pub fn believed_at(&self, t: i64) -> Vec<PropId> {
        self.props
            .iter()
            .filter(|p| p.believed_at(t))
            .map(|p| p.id)
            .collect()
    }

    /// Flushes the backend (fsync for the log backend).
    pub fn sync(&mut self) -> TelosResult<()> {
        self.backend.sync()
    }

    // ----- snapshot reads -------------------------------------------------

    /// A read-only view pinned at the current belief tick.
    pub fn snapshot(&self) -> Snapshot<'_> {
        self.snapshot_at(self.clock)
    }

    /// A read-only view pinned at belief tick `at`. Because the KB
    /// never destroys propositions — UNTELL only closes belief
    /// intervals — the view is a *consistent snapshot*: it sees exactly
    /// the propositions believed at `at`, regardless of TELLs and
    /// UNTELLs applied afterwards. This is the basis of the server's
    /// snapshot-isolated read sessions.
    pub fn snapshot_at(&self, at: i64) -> Snapshot<'_> {
        Snapshot::over(self, at)
    }

    // ----- versions -------------------------------------------------------

    /// Captures an immutable [`KbVersion`] of the current state by
    /// structural sharing: proposition chunks, index postings and
    /// interned strings are shared `Arc`s, so the capture is O(spine),
    /// not O(propositions). The version is `Send + Sync`, never
    /// changes, and answers `snapshot_at(w)` byte-identically to this
    /// KB for every `w ≤ self.now()` — the server's MVCC read path
    /// hands one to each session so ASK never takes the writer lock.
    pub fn version(&self) -> KbVersion {
        KbVersion {
            symbols: self.symbols.clone(),
            props: self.props.clone(),
            by_source: self.by_source.clone(),
            by_label: self.by_label.clone(),
            by_dest: self.by_dest.clone(),
            clock: self.clock,
            sym_instanceof: self.sym_instanceof,
            sym_isa: self.sym_isa,
        }
    }
}

impl PropStore for Kb {
    fn prop_count(&self) -> usize {
        self.props.len()
    }
    fn prop(&self, id: PropId) -> Option<&Proposition> {
        self.props.get(id.idx())
    }
    fn resolve_sym(&self, sym: Symbol) -> &str {
        self.symbols.resolve(sym)
    }
    fn lookup_sym(&self, s: &str) -> Option<Symbol> {
        self.symbols.lookup(s)
    }
    fn postings_from(&self, x: PropId) -> &[PropId] {
        self.by_source.get(&x)
    }
    fn postings_label(&self, label: Symbol) -> &[PropId] {
        self.by_label.get(&label)
    }
    fn postings_to(&self, y: PropId) -> &[PropId] {
        self.by_dest.get(&y)
    }
    fn instanceof_sym(&self) -> Symbol {
        self.sym_instanceof
    }
    fn isa_sym(&self) -> Symbol {
        self.sym_isa
    }
}

/// The uniform read-only query surface over a knowledge base: the
/// operations the assertion evaluator and ASK need, implemented both by
/// [`Kb`] (current-belief semantics) and by [`Snapshot`] (pinned at a
/// belief tick). Callers generic over `KbRead` evaluate identically
/// against live state or a snapshot.
pub trait KbRead {
    /// The individual named `name` believed in this view, if any.
    fn lookup(&self, name: &str) -> Option<PropId>;
    /// Human-readable name of a proposition.
    fn display(&self, id: PropId) -> String;
    /// True if `x` is an instance of `c` in this view, directly or
    /// through specialization.
    fn is_instance_of(&self, x: PropId, c: PropId) -> bool;
    /// Transitive isa ancestors of `c` (excluding `c`) in this view.
    fn isa_ancestors(&self, c: PropId) -> Vec<PropId>;
    /// Instances of `c` in this view, including those of all isa
    /// descendants.
    fn all_instances_of(&self, c: PropId) -> Vec<PropId>;
    /// Values of the attribute `label` on `x` in this view.
    fn attr_values(&self, x: PropId, label: &str) -> Vec<PropId>;
}

impl KbRead for Kb {
    fn lookup(&self, name: &str) -> Option<PropId> {
        Kb::lookup(self, name)
    }
    fn display(&self, id: PropId) -> String {
        Kb::display(self, id)
    }
    fn is_instance_of(&self, x: PropId, c: PropId) -> bool {
        Kb::is_instance_of(self, x, c)
    }
    fn isa_ancestors(&self, c: PropId) -> Vec<PropId> {
        Kb::isa_ancestors(self, c)
    }
    fn all_instances_of(&self, c: PropId) -> Vec<PropId> {
        Kb::all_instances_of(self, c)
    }
    fn attr_values(&self, x: PropId, label: &str) -> Vec<PropId> {
        Kb::attr_values(self, x, label)
    }
}

/// A belief-time-pinned, read-only view of a proposition store (see
/// [`Kb::snapshot_at`] and [`KbVersion::snapshot_at`]). All retrieval
/// methods answer as of the pinned tick: a proposition told or untold
/// after the snapshot was taken is invisible.
///
/// Generic over [`PropStore`], so the same belief-time logic runs
/// against the live [`Kb`] (under a lock) or an immutable
/// [`KbVersion`] (no lock at all).
pub struct Snapshot<'a, S: PropStore = Kb> {
    store: &'a S,
    at: i64,
}

impl<S: PropStore> Clone for Snapshot<'_, S> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<S: PropStore> Copy for Snapshot<'_, S> {}

impl<'a> Snapshot<'a, Kb> {
    /// The underlying KB.
    pub fn kb(&self) -> &'a Kb {
        self.store
    }
}

impl<'a, S: PropStore> Snapshot<'a, S> {
    /// Pins a view of `store` at belief tick `at`.
    pub(crate) fn over(store: &'a S, at: i64) -> Self {
        Snapshot { store, at }
    }

    /// The pinned belief tick (the snapshot's watermark).
    pub fn at(&self) -> i64 {
        self.at
    }

    /// True if proposition `id` is believed in this snapshot.
    pub fn sees(&self, id: PropId) -> bool {
        self.store.prop(id).is_some_and(|p| p.believed_at(self.at))
    }

    /// The individual named `name` believed at the pinned tick. Unlike
    /// [`Kb::lookup`] this cannot use the believed-name index (which
    /// tracks the *current* belief state), so it scans the label's
    /// postings; the latest generation believed at the tick wins.
    pub fn lookup(&self, name: &str) -> Option<PropId> {
        let sym = self.store.lookup_sym(name)?;
        self.store.postings_label(sym).iter().copied().rfind(|&p| {
            self.store
                .prop(p)
                .is_some_and(|prop| prop.is_individual() && prop.believed_at(self.at))
        })
    }

    /// Direct classes of `x` at the pinned tick.
    pub fn classes_of(&self, x: PropId) -> Vec<PropId> {
        self.store
            .typed_dests_at(x, self.store.instanceof_sym(), Some(self.at))
    }

    /// Direct instances of class `c` at the pinned tick.
    pub fn instances_of(&self, c: PropId) -> Vec<PropId> {
        self.store
            .typed_sources_at(c, self.store.instanceof_sym(), Some(self.at))
    }

    /// Direct isa parents of `c` at the pinned tick.
    pub fn isa_parents(&self, c: PropId) -> Vec<PropId> {
        self.store
            .typed_dests_at(c, self.store.isa_sym(), Some(self.at))
    }

    /// Direct isa children of `c` at the pinned tick.
    pub fn isa_children(&self, c: PropId) -> Vec<PropId> {
        self.store
            .typed_sources_at(c, self.store.isa_sym(), Some(self.at))
    }

    fn closure(&self, start: PropId, step: impl Fn(&Self, PropId) -> Vec<PropId>) -> Vec<PropId> {
        let mut out = Vec::new();
        let mut seen = HashSet::from([start]);
        let mut queue = VecDeque::from([start]);
        while let Some(cur) = queue.pop_front() {
            for next in step(self, cur) {
                if seen.insert(next) {
                    out.push(next);
                    queue.push_back(next);
                }
            }
        }
        out
    }

    /// Transitive isa ancestors of `c` at the pinned tick.
    pub fn isa_ancestors(&self, c: PropId) -> Vec<PropId> {
        self.closure(c, |s, x| s.isa_parents(x))
    }

    /// Transitive isa descendants of `c` at the pinned tick.
    pub fn isa_descendants(&self, c: PropId) -> Vec<PropId> {
        self.closure(c, |s, x| s.isa_children(x))
    }

    /// Classes of `x` closed under specialization, at the pinned tick.
    pub fn all_classes_of(&self, x: PropId) -> Vec<PropId> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for c in self.classes_of(x) {
            if seen.insert(c) {
                out.push(c);
            }
            for a in self.isa_ancestors(c) {
                if seen.insert(a) {
                    out.push(a);
                }
            }
        }
        out
    }

    /// Instances of `c` including those of all isa descendants, at the
    /// pinned tick.
    pub fn all_instances_of(&self, c: PropId) -> Vec<PropId> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for class in std::iter::once(c).chain(self.isa_descendants(c)) {
            for i in self.instances_of(class) {
                if seen.insert(i) {
                    out.push(i);
                }
            }
        }
        out
    }

    /// True if `x` is an instance of `c` at the pinned tick.
    pub fn is_instance_of(&self, x: PropId, c: PropId) -> bool {
        self.classes_of(x)
            .into_iter()
            .any(|d| d == c || self.isa_ancestors(d).contains(&c))
    }

    /// Values of attribute `label` on `x` at the pinned tick.
    pub fn attr_values(&self, x: PropId, label: &str) -> Vec<PropId> {
        match self.store.lookup_sym(label) {
            None => Vec::new(),
            Some(sym) if self.store.is_link_sym(sym) => Vec::new(),
            Some(sym) => self.store.typed_dests_at(x, sym, Some(self.at)),
        }
    }

    /// Attribute propositions of `x` believed at the pinned tick.
    pub fn attrs_of(&self, x: PropId) -> Vec<PropId> {
        self.store
            .postings_from(x)
            .iter()
            .copied()
            .filter(|&p| {
                self.store.prop(p).is_some_and(|prop| {
                    p != x && prop.believed_at(self.at) && !self.store.is_link_sym(prop.label)
                })
            })
            .collect()
    }

    /// Number of propositions believed at the pinned tick.
    pub fn believed_count(&self) -> usize {
        (0..self.store.prop_count())
            .filter(|&i| {
                self.store
                    .prop(PropId(i as u32))
                    .is_some_and(|p| p.believed_at(self.at))
            })
            .count()
    }
}

impl<S: PropStore> KbRead for Snapshot<'_, S> {
    fn lookup(&self, name: &str) -> Option<PropId> {
        Snapshot::lookup(self, name)
    }
    fn display(&self, id: PropId) -> String {
        self.store.display_prop(id)
    }
    fn is_instance_of(&self, x: PropId, c: PropId) -> bool {
        Snapshot::is_instance_of(self, x, c)
    }
    fn isa_ancestors(&self, c: PropId) -> Vec<PropId> {
        Snapshot::isa_ancestors(self, c)
    }
    fn all_instances_of(&self, c: PropId) -> Vec<PropId> {
        Snapshot::all_instances_of(self, c)
    }
    fn attr_values(&self, x: PropId, label: &str) -> Vec<PropId> {
        Snapshot::attr_values(self, x, label)
    }
}

impl Default for Kb {
    fn default() -> Self {
        Kb::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb() -> Kb {
        Kb::new()
    }

    #[test]
    fn bootstrap_creates_omega_level() {
        let kb = kb();
        assert!(kb.lookup("Proposition").is_some());
        assert!(kb.lookup("Class").is_some());
        assert!(!kb.is_empty());
    }

    #[test]
    fn individual_is_idempotent() {
        let mut kb = kb();
        let a = kb.individual("Paper").unwrap();
        let b = kb.individual("Paper").unwrap();
        assert_eq!(a, b);
        assert!(kb.get(a).unwrap().is_individual());
        assert_eq!(kb.display(a), "Paper");
    }

    #[test]
    fn instantiate_and_query() {
        let mut kb = kb();
        let paper = kb.individual("Paper").unwrap();
        let class = kb.builtins().simple_class;
        kb.instantiate(paper, class).unwrap();
        assert!(kb.classes_of(paper).contains(&class));
        assert!(kb.instances_of(class).contains(&paper));
        // Dedup: instantiating twice creates no new link.
        let n = kb.len();
        kb.instantiate(paper, class).unwrap();
        assert_eq!(kb.len(), n);
    }

    #[test]
    fn specialization_closes_instances() {
        let mut kb = kb();
        let paper = kb.individual("Paper").unwrap();
        let invitation = kb.individual("Invitation").unwrap();
        let inv42 = kb.individual("inv42").unwrap();
        kb.specialize(invitation, paper).unwrap();
        kb.instantiate(inv42, invitation).unwrap();
        assert!(kb.is_instance_of(inv42, invitation));
        assert!(kb.is_instance_of(inv42, paper), "instance inheritance");
        assert!(kb.all_instances_of(paper).contains(&inv42));
        assert!(kb.all_classes_of(inv42).contains(&paper));
        assert!(!kb.is_instance_of(paper, invitation));
    }

    #[test]
    fn isa_cycles_rejected() {
        let mut kb = kb();
        let a = kb.individual("A").unwrap();
        let b = kb.individual("B").unwrap();
        let c = kb.individual("C").unwrap();
        kb.specialize(a, b).unwrap();
        kb.specialize(b, c).unwrap();
        assert!(matches!(
            kb.specialize(c, a),
            Err(TelosError::AxiomViolation(_))
        ));
        assert!(matches!(
            kb.specialize(a, a),
            Err(TelosError::AxiomViolation(_))
        ));
    }

    #[test]
    fn deep_isa_closure() {
        let mut kb = kb();
        let mut prev = kb.individual("C0").unwrap();
        let bottom = prev;
        for i in 1..50 {
            let c = kb.individual(&format!("C{i}")).unwrap();
            kb.specialize(prev, c).unwrap();
            prev = c;
        }
        assert_eq!(kb.isa_ancestors(bottom).len(), 49);
        assert_eq!(kb.isa_descendants(prev).len(), 49);
    }

    #[test]
    fn attributes_and_attribute_classes() {
        let mut kb = kb();
        let invitation = kb.individual("Invitation").unwrap();
        let person = kb.individual("Person").unwrap();
        let inv42 = kb.individual("inv42").unwrap();
        let maria = kb.individual("maria").unwrap();
        kb.instantiate(inv42, invitation).unwrap();
        // attribute class on the class …
        let sender_class = kb.put_attr(invitation, "sender", person).unwrap();
        // … found through classification:
        assert_eq!(kb.find_attr_class(inv42, "sender"), Some(sender_class));
        // typed token-level attribute:
        let attr = kb
            .put_attr_typed(inv42, "sender", maria, sender_class)
            .unwrap();
        assert_eq!(kb.attr_values(inv42, "sender"), vec![maria]);
        assert_eq!(kb.attr_class_of(attr), Some(sender_class));
        assert_eq!(kb.attrs_of(inv42), vec![attr]);
        assert_eq!(kb.display(attr), "<inv42 sender maria>");
    }

    #[test]
    fn attr_class_found_through_isa() {
        let mut kb = kb();
        let paper = kb.individual("Paper").unwrap();
        let invitation = kb.individual("Invitation").unwrap();
        let person = kb.individual("Person").unwrap();
        let inv42 = kb.individual("inv42").unwrap();
        kb.specialize(invitation, paper).unwrap();
        kb.instantiate(inv42, invitation).unwrap();
        let author_class = kb.put_attr(paper, "author", person).unwrap();
        assert_eq!(kb.find_attr_class(inv42, "author"), Some(author_class));
    }

    #[test]
    fn reserved_labels_rejected_as_attributes() {
        let mut kb = kb();
        let a = kb.individual("A").unwrap();
        let b = kb.individual("B").unwrap();
        assert!(kb.put_attr(a, "instanceof", b).is_err());
        assert!(kb.put_attr(a, "isa", b).is_err());
    }

    #[test]
    fn untell_closes_belief_and_history_remains() {
        let mut kb = kb();
        let a = kb.individual("A").unwrap();
        let b = kb.individual("B").unwrap();
        let attr = kb.put_attr(a, "rel", b).unwrap();
        let before = kb.now();
        kb.untell(attr).unwrap();
        assert!(!kb.get(attr).unwrap().is_believed());
        assert!(kb.attr_values(a, "rel").is_empty());
        // Temporal query still sees it.
        assert_eq!(kb.attr_values_at(a, "rel", before), vec![b]);
        // Double-untell is an error.
        assert!(matches!(kb.untell(attr), Err(TelosError::NotBelieved(_))));
    }

    #[test]
    fn untell_individual_frees_name() {
        let mut kb = kb();
        let a = kb.individual("Ghost").unwrap();
        kb.untell(a).unwrap();
        assert_eq!(kb.lookup("Ghost"), None);
        let a2 = kb.individual("Ghost").unwrap();
        assert_ne!(a, a2, "a fresh proposition is created");
    }

    #[test]
    fn untell_cascade_takes_dependents() {
        let mut kb = kb();
        let a = kb.individual("A").unwrap();
        let b = kb.individual("B").unwrap();
        let c = kb.individual("C").unwrap();
        let ab = kb.put_attr(a, "x", b).unwrap();
        // a link about the link:
        let meta = kb.put_attr(ab, "why", c).unwrap();
        let bc = kb.put_attr(b, "y", c).unwrap();
        let untold = kb.untell_cascade(ab).unwrap();
        assert!(untold.contains(&ab));
        assert!(untold.contains(&meta), "dependent link cascades");
        assert!(!untold.contains(&bc), "unrelated link survives");
        assert!(kb.get(bc).unwrap().is_believed());
    }

    #[test]
    fn believed_count_tracks_untell() {
        let mut kb = kb();
        let base = kb.believed_count();
        let a = kb.individual("A").unwrap();
        assert_eq!(kb.believed_count(), base + 1);
        kb.untell(a).unwrap();
        assert_eq!(kb.believed_count(), base);
        assert_eq!(kb.len(), base + 1, "nothing destroyed");
    }

    #[test]
    fn links_from_to_and_labels() {
        let mut kb = kb();
        let a = kb.individual("A").unwrap();
        let b = kb.individual("B").unwrap();
        let l1 = kb.put_attr(a, "uses", b).unwrap();
        let l2 = kb.put_attr(b, "uses", a).unwrap();
        assert_eq!(kb.links_from(a), vec![l1]);
        assert!(kb.links_to(a).contains(&l2));
        let with_label = kb.props_with_label("uses");
        assert_eq!(with_label.len(), 2);
        assert!(kb.props_with_label("nosuch").is_empty());
    }

    #[test]
    fn temporal_class_membership() {
        let mut kb = kb();
        let c = kb.individual("C").unwrap();
        let x = kb.individual("x").unwrap();
        let link = kb.instantiate(x, c).unwrap();
        let t_in = kb.now();
        kb.untell(link).unwrap();
        assert!(kb.classes_of(x).is_empty());
        assert_eq!(kb.classes_of_at(x, t_in), vec![c]);
    }

    #[test]
    fn create_raw_validates_both_endpoints() {
        let mut kb = kb();
        let a = kb.individual("A").unwrap();
        let label = kb.intern("r");
        let bogus = PropId(kb.len() as u32 + 7);
        let at_len = PropId(kb.len() as u32);
        assert!(matches!(
            kb.create_raw(bogus, label, a, crate::Interval::always()),
            Err(TelosError::UnknownProposition(_))
        ));
        assert!(matches!(
            kb.create_raw(at_len, label, a, crate::Interval::always()),
            Err(TelosError::UnknownProposition(_))
        ));
        assert!(matches!(
            kb.create_raw(a, label, bogus, crate::Interval::always()),
            Err(TelosError::UnknownProposition(_))
        ));
    }

    #[test]
    fn expect_reports_unknown_names() {
        let kb = kb();
        assert!(matches!(
            kb.expect("Nonexistent"),
            Err(TelosError::UnknownName(_))
        ));
    }

    #[test]
    fn snapshot_pins_belief_time() {
        let mut kb = kb();
        let c = kb.individual("C").unwrap();
        let x = kb.individual("x").unwrap();
        kb.instantiate(x, c).unwrap();
        kb.tick();
        let snap_tick = kb.now();
        // A later TELL is invisible to a snapshot pinned here …
        kb.tick();
        let y = kb.individual("y").unwrap();
        kb.instantiate(y, c).unwrap();
        let snap = kb.snapshot_at(snap_tick);
        assert_eq!(snap.lookup("y"), None);
        assert_eq!(snap.all_instances_of(c), vec![x]);
        // … while the live view and a fresh snapshot see it.
        assert_eq!(kb.all_instances_of(c).len(), 2);
        assert_eq!(kb.snapshot().all_instances_of(c).len(), 2);
        assert_eq!(kb.snapshot().lookup("y"), Some(y));
    }

    #[test]
    fn snapshot_survives_untell() {
        let mut kb = kb();
        let a = kb.individual("A").unwrap();
        let b = kb.individual("B").unwrap();
        let attr = kb.put_attr(a, "rel", b).unwrap();
        let before = kb.now();
        kb.untell(attr).unwrap();
        let snap = kb.snapshot_at(before);
        assert!(snap.sees(attr));
        assert_eq!(snap.attr_values(a, "rel"), vec![b]);
        assert!(kb.attr_values(a, "rel").is_empty());
        // An untold individual is still resolvable in an old snapshot.
        let ghost = kb.individual("Ghost").unwrap();
        let t = kb.now();
        kb.untell(ghost).unwrap();
        assert_eq!(kb.lookup("Ghost"), None);
        assert_eq!(kb.snapshot_at(t).lookup("Ghost"), Some(ghost));
    }

    #[test]
    fn snapshot_isa_closure_and_classes() {
        let mut kb = kb();
        let paper = kb.individual("Paper").unwrap();
        let inv = kb.individual("Invitation").unwrap();
        let inv1 = kb.individual("inv1").unwrap();
        let link = kb.specialize(inv, paper).unwrap();
        kb.instantiate(inv1, inv).unwrap();
        kb.tick();
        let t = kb.now();
        kb.untell(link).unwrap();
        let snap = kb.snapshot_at(t);
        assert!(snap.is_instance_of(inv1, paper), "isa held at t");
        assert!(snap.all_classes_of(inv1).contains(&paper));
        assert_eq!(snap.isa_ancestors(inv), vec![paper]);
        assert_eq!(snap.isa_descendants(paper), vec![inv]);
        assert!(!kb.is_instance_of(inv1, paper), "isa gone now");
        assert!(snap.believed_count() > kb.snapshot_at(0).believed_count());
    }

    #[test]
    fn display_of_nested_links() {
        let mut kb = kb();
        let a = kb.individual("A").unwrap();
        let b = kb.individual("B").unwrap();
        let ab = kb.put_attr(a, "r", b).unwrap();
        let c = kb.individual("C").unwrap();
        let meta = kb.put_attr(ab, "s", c).unwrap();
        assert_eq!(kb.display(meta), "<<A r B> s C>");
    }
}
