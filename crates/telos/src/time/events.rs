//! A logic-based calculus of events \[KS86\].
//!
//! Events occur at ticks and *initiate* or *terminate* fluents
//! (time-varying properties). From the event record the calculus derives
//! `holds_at(fluent, t)` and the maximal validity periods of each
//! fluent — the mechanism behind "the time components … are again viewed
//! as propositions" (§3.1): in the GKBMS, executed design decisions are
//! the events, and design-object validity is the fluent.

use crate::time::interval::Interval;
use std::collections::HashMap;

/// A fluent: a named time-varying property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fluent(pub u32);

/// An event identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u32);

#[derive(Debug, Clone)]
struct Event {
    time: i64,
    initiates: Vec<Fluent>,
    terminates: Vec<Fluent>,
}

/// The event record plus derived queries.
#[derive(Debug, Default, Clone)]
pub struct EventCalculus {
    events: Vec<Event>,
    /// fluent -> sorted list of (tick, starts?) transitions, rebuilt lazily.
    timeline: HashMap<Fluent, Vec<(i64, bool, EventId)>>,
    dirty: bool,
}

impl EventCalculus {
    /// An empty record.
    pub fn new() -> Self {
        EventCalculus::default()
    }

    /// Records an event at `time` initiating and terminating the given
    /// fluents; returns its id.
    pub fn happens(&mut self, time: i64, initiates: &[Fluent], terminates: &[Fluent]) -> EventId {
        let id = EventId(self.events.len() as u32);
        self.events.push(Event {
            time,
            initiates: initiates.to_vec(),
            terminates: terminates.to_vec(),
        });
        self.dirty = true;
        id
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has happened.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of an event.
    pub fn time_of(&self, e: EventId) -> Option<i64> {
        self.events.get(e.0 as usize).map(|ev| ev.time)
    }

    fn rebuild(&mut self) {
        if !self.dirty {
            return;
        }
        self.timeline.clear();
        for (i, ev) in self.events.iter().enumerate() {
            let id = EventId(i as u32);
            for &f in &ev.initiates {
                self.timeline
                    .entry(f)
                    .or_default()
                    .push((ev.time, true, id));
            }
            for &f in &ev.terminates {
                self.timeline
                    .entry(f)
                    .or_default()
                    .push((ev.time, false, id));
            }
        }
        for transitions in self.timeline.values_mut() {
            // Sort by time; at equal times a termination precedes an
            // initiation, so "terminate+reinitiate at t" leaves the
            // fluent holding.
            transitions.sort_by_key(|&(t, starts, id)| (t, starts, id));
        }
        self.dirty = false;
    }

    /// True if `fluent` holds at tick `t`: some event at or before `t`
    /// initiated it and no later-or-equal event up to `t` terminated it
    /// afterwards.
    pub fn holds_at(&mut self, fluent: Fluent, t: i64) -> bool {
        self.rebuild();
        let Some(transitions) = self.timeline.get(&fluent) else {
            return false;
        };
        let mut holding = false;
        for &(time, starts, _) in transitions {
            if time > t {
                break;
            }
            holding = starts;
        }
        holding
    }

    /// The maximal periods during which `fluent` holds, as half-open
    /// intervals (the last one open-ended if never terminated).
    pub fn periods(&mut self, fluent: Fluent) -> Vec<Interval> {
        self.rebuild();
        let Some(transitions) = self.timeline.get(&fluent) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut open_since: Option<i64> = None;
        for &(time, starts, _) in transitions {
            match (starts, open_since) {
                (true, None) => open_since = Some(time),
                (false, Some(s)) => {
                    if s < time {
                        out.push(Interval::between(s, time).expect("s < time"));
                    }
                    open_since = None;
                }
                _ => {}
            }
        }
        if let Some(s) = open_since {
            out.push(Interval::from_tick(s));
        }
        out
    }

    /// The event that most recently initiated `fluent` at or before `t`,
    /// if the fluent holds at `t` — the "justifying" event.
    pub fn initiator_at(&mut self, fluent: Fluent, t: i64) -> Option<EventId> {
        self.rebuild();
        let transitions = self.timeline.get(&fluent)?;
        let mut current: Option<EventId> = None;
        for &(time, starts, id) in transitions {
            if time > t {
                break;
            }
            current = if starts { Some(id) } else { None };
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: Fluent = Fluent(0);
    const G: Fluent = Fluent(1);

    #[test]
    fn holds_between_initiation_and_termination() {
        let mut ec = EventCalculus::new();
        ec.happens(5, &[F], &[]);
        ec.happens(10, &[], &[F]);
        assert!(!ec.holds_at(F, 4));
        assert!(ec.holds_at(F, 5));
        assert!(ec.holds_at(F, 9));
        assert!(!ec.holds_at(F, 10));
    }

    #[test]
    fn unterminated_fluent_holds_forever() {
        let mut ec = EventCalculus::new();
        ec.happens(3, &[F], &[]);
        assert!(ec.holds_at(F, 1_000_000));
        assert_eq!(ec.periods(F), vec![Interval::from_tick(3)]);
    }

    #[test]
    fn unknown_fluent_never_holds() {
        let mut ec = EventCalculus::new();
        ec.happens(3, &[F], &[]);
        assert!(!ec.holds_at(G, 5));
        assert!(ec.periods(G).is_empty());
    }

    #[test]
    fn multiple_periods() {
        let mut ec = EventCalculus::new();
        ec.happens(1, &[F], &[]);
        ec.happens(3, &[], &[F]);
        ec.happens(7, &[F], &[]);
        ec.happens(9, &[], &[F]);
        assert_eq!(
            ec.periods(F),
            vec![
                Interval::between(1, 3).unwrap(),
                Interval::between(7, 9).unwrap()
            ]
        );
        assert!(ec.holds_at(F, 2));
        assert!(!ec.holds_at(F, 5));
        assert!(ec.holds_at(F, 8));
    }

    #[test]
    fn simultaneous_terminate_and_initiate_keeps_holding() {
        let mut ec = EventCalculus::new();
        ec.happens(1, &[F], &[]);
        // A "revision" event at t=4: old version terminated, new initiated.
        ec.happens(4, &[F], &[F]);
        assert!(ec.holds_at(F, 4));
        assert!(ec.holds_at(F, 6));
    }

    #[test]
    fn initiator_is_most_recent() {
        let mut ec = EventCalculus::new();
        let e1 = ec.happens(1, &[F], &[]);
        let e2 = ec.happens(5, &[F], &[]);
        assert_eq!(ec.initiator_at(F, 3), Some(e1));
        assert_eq!(ec.initiator_at(F, 6), Some(e2));
        ec.happens(8, &[], &[F]);
        assert_eq!(ec.initiator_at(F, 9), None);
    }

    #[test]
    fn events_out_of_order_are_sorted() {
        let mut ec = EventCalculus::new();
        ec.happens(10, &[], &[F]);
        ec.happens(2, &[F], &[]);
        assert!(ec.holds_at(F, 5));
        assert!(!ec.holds_at(F, 11));
        assert_eq!(ec.periods(F), vec![Interval::between(2, 10).unwrap()]);
    }

    #[test]
    fn one_event_many_fluents() {
        let mut ec = EventCalculus::new();
        ec.happens(1, &[F, G], &[]);
        ec.happens(4, &[], &[G]);
        assert!(ec.holds_at(F, 5));
        assert!(!ec.holds_at(G, 5));
        assert_eq!(ec.time_of(EventId(0)), Some(1));
        assert_eq!(ec.time_of(EventId(9)), None);
    }
}
