//! Allen's qualitative interval algebra \[ALLE83\].
//!
//! The 13 basic relations between two intervals, relation *sets* encoded
//! as 13-bit masks, converse, composition, and a path-consistency
//! constraint network — the machinery CML uses to maintain "the
//! relationships (e.g. during, before)" between time components as
//! propositions.
//!
//! The composition table is not hand-transcribed: it is derived once, at
//! first use, by exhaustive enumeration of endpoint configurations over
//! a small finite domain. The domain `0..8` is large enough to realize
//! every consistent triple of basic relations, so the derived table
//! equals Allen's published one (asserted by spot tests below).

use crate::time::interval::Interval;
use std::fmt;
use std::sync::OnceLock;

/// One of Allen's 13 basic interval relations (`a REL b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AllenRel {
    /// `a` ends before `b` starts.
    Before = 0,
    /// `a` ends exactly where `b` starts.
    Meets = 1,
    /// `a` starts first, they overlap, `b` ends last.
    Overlaps = 2,
    /// same start, `a` ends first.
    Starts = 3,
    /// `a` strictly inside `b`.
    During = 4,
    /// same end, `a` starts later.
    Finishes = 5,
    /// identical intervals.
    Equal = 6,
    /// converse of Finishes.
    FinishedBy = 7,
    /// converse of During.
    Contains = 8,
    /// converse of Starts.
    StartedBy = 9,
    /// converse of Overlaps.
    OverlappedBy = 10,
    /// converse of Meets.
    MetBy = 11,
    /// converse of Before.
    After = 12,
}

/// All 13 basic relations, in discriminant order.
pub const ALL_RELS: [AllenRel; 13] = [
    AllenRel::Before,
    AllenRel::Meets,
    AllenRel::Overlaps,
    AllenRel::Starts,
    AllenRel::During,
    AllenRel::Finishes,
    AllenRel::Equal,
    AllenRel::FinishedBy,
    AllenRel::Contains,
    AllenRel::StartedBy,
    AllenRel::OverlappedBy,
    AllenRel::MetBy,
    AllenRel::After,
];

impl AllenRel {
    /// The converse relation: if `a R b` then `b converse(R) a`.
    pub fn converse(self) -> AllenRel {
        use AllenRel::*;
        match self {
            Before => After,
            Meets => MetBy,
            Overlaps => OverlappedBy,
            Starts => StartedBy,
            During => Contains,
            Finishes => FinishedBy,
            Equal => Equal,
            FinishedBy => Finishes,
            Contains => During,
            StartedBy => Starts,
            OverlappedBy => Overlaps,
            MetBy => Meets,
            After => Before,
        }
    }

    /// Computes the basic relation holding between two concrete
    /// intervals (total: exactly one relation always holds).
    pub fn between(a: &Interval, b: &Interval) -> AllenRel {
        use std::cmp::Ordering as O;
        let ss = a.start().cmp(&b.start());
        let ee = a.end().cmp(&b.end());
        let se = a.start().cmp(&b.end());
        let es = a.end().cmp(&b.start());
        match (ss, ee, se, es) {
            (_, _, _, O::Less) => AllenRel::Before,
            (_, _, _, O::Equal) => AllenRel::Meets,
            (_, _, O::Equal, _) => AllenRel::MetBy,
            (_, _, O::Greater, _) => AllenRel::After,
            (O::Equal, O::Equal, _, _) => AllenRel::Equal,
            (O::Equal, O::Less, _, _) => AllenRel::Starts,
            (O::Equal, O::Greater, _, _) => AllenRel::StartedBy,
            (O::Less, O::Equal, _, _) => AllenRel::FinishedBy,
            (O::Greater, O::Equal, _, _) => AllenRel::Finishes,
            (O::Less, O::Less, _, _) => AllenRel::Overlaps,
            (O::Greater, O::Greater, _, _) => AllenRel::OverlappedBy,
            (O::Greater, O::Less, _, _) => AllenRel::During,
            (O::Less, O::Greater, _, _) => AllenRel::Contains,
        }
    }

    /// Parses the standard abbreviations (`b m o s d f eq fi di si oi mi a`).
    pub fn from_abbrev(s: &str) -> Option<AllenRel> {
        use AllenRel::*;
        Some(match s {
            "b" => Before,
            "m" => Meets,
            "o" => Overlaps,
            "s" => Starts,
            "d" => During,
            "f" => Finishes,
            "eq" | "=" => Equal,
            "fi" => FinishedBy,
            "di" => Contains,
            "si" => StartedBy,
            "oi" => OverlappedBy,
            "mi" => MetBy,
            "a" | "bi" => After,
            _ => return None,
        })
    }

    /// The standard abbreviation.
    pub fn abbrev(self) -> &'static str {
        use AllenRel::*;
        match self {
            Before => "b",
            Meets => "m",
            Overlaps => "o",
            Starts => "s",
            During => "d",
            Finishes => "f",
            Equal => "eq",
            FinishedBy => "fi",
            Contains => "di",
            StartedBy => "si",
            OverlappedBy => "oi",
            MetBy => "mi",
            After => "a",
        }
    }
}

impl fmt::Display for AllenRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abbrev())
    }
}

/// A set of basic relations, encoded as a 13-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RelSet(pub u16);

impl RelSet {
    /// The empty (inconsistent) set.
    pub const EMPTY: RelSet = RelSet(0);
    /// The full set (no information).
    pub const FULL: RelSet = RelSet((1 << 13) - 1);

    /// The singleton set for `r`.
    pub fn of(r: AllenRel) -> RelSet {
        RelSet(1 << (r as u8))
    }

    /// Builds a set from basic relations.
    pub fn from_rels(rels: &[AllenRel]) -> RelSet {
        rels.iter()
            .fold(RelSet::EMPTY, |s, &r| s.union(RelSet::of(r)))
    }

    /// Membership test.
    pub fn contains(self, r: AllenRel) -> bool {
        self.0 & (1 << (r as u8)) != 0
    }

    /// Set union.
    pub fn union(self, other: RelSet) -> RelSet {
        RelSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: RelSet) -> RelSet {
        RelSet(self.0 & other.0)
    }

    /// True if no relation is possible — an inconsistency.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of possible relations.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Converse of every member.
    pub fn converse(self) -> RelSet {
        let mut out = RelSet::EMPTY;
        for r in ALL_RELS {
            if self.contains(r) {
                out = out.union(RelSet::of(r.converse()));
            }
        }
        out
    }

    /// Composition: the set of relations possible between `A` and `C`
    /// given `A self B` and `B other C`.
    pub fn compose(self, other: RelSet) -> RelSet {
        let table = composition_table();
        let mut out = RelSet::EMPTY;
        for r1 in ALL_RELS {
            if !self.contains(r1) {
                continue;
            }
            for r2 in ALL_RELS {
                if other.contains(r2) {
                    out = out.union(table[r1 as usize][r2 as usize]);
                }
            }
        }
        out
    }

    /// Iterates the member relations.
    pub fn iter(self) -> impl Iterator<Item = AllenRel> {
        ALL_RELS.into_iter().filter(move |&r| self.contains(r))
    }
}

impl fmt::Display for RelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", r.abbrev())?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Derives the 13×13 composition table by exhaustive enumeration of
/// endpoint configurations over the domain `0..8` (sufficient to
/// realize every consistent triple).
fn composition_table() -> &'static [[RelSet; 13]; 13] {
    static TABLE: OnceLock<[[RelSet; 13]; 13]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [[RelSet::EMPTY; 13]; 13];
        // All intervals [s, e) with 0 <= s < e <= 7: 28 of them.
        let mut ivals = Vec::new();
        for s in 0..7i64 {
            for e in (s + 1)..8 {
                ivals.push(Interval::between(s, e).expect("s < e"));
            }
        }
        for a in &ivals {
            for b in &ivals {
                let r1 = AllenRel::between(a, b);
                for c in &ivals {
                    let r2 = AllenRel::between(b, c);
                    let r3 = AllenRel::between(a, c);
                    table[r1 as usize][r2 as usize] =
                        table[r1 as usize][r2 as usize].union(RelSet::of(r3));
                }
            }
        }
        table
    })
}

/// A qualitative constraint network over `n` interval variables.
///
/// Constraint `get(i, j)` is the set of relations still possible between
/// variables `i` and `j`. [`AllenNetwork::propagate`] runs Allen's
/// path-consistency algorithm; it returns `false` when the network is
/// detected inconsistent.
#[derive(Debug, Clone)]
pub struct AllenNetwork {
    n: usize,
    /// Row-major n×n matrix; `m[i][j]` and `m[j][i]` kept converse.
    m: Vec<RelSet>,
}

impl AllenNetwork {
    /// A network of `n` variables with no constraints.
    pub fn new(n: usize) -> Self {
        let mut m = vec![RelSet::FULL; n * n];
        for i in 0..n {
            m[i * n + i] = RelSet::of(AllenRel::Equal);
        }
        AllenNetwork { n, m }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the network has no variables.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current constraint between `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> RelSet {
        self.m[i * self.n + j]
    }

    /// Asserts `i rel j`, intersecting with existing knowledge. Returns
    /// `false` if this makes the constraint empty.
    pub fn assert_rel(&mut self, i: usize, j: usize, rels: RelSet) -> bool {
        let cur = self.get(i, j);
        let new = cur.intersect(rels);
        self.m[i * self.n + j] = new;
        self.m[j * self.n + i] = new.converse();
        !new.is_empty()
    }

    /// Path-consistency propagation (Allen's constraint propagation
    /// algorithm). Returns `false` if an inconsistency is detected.
    pub fn propagate(&mut self) -> bool {
        let n = self.n;
        let mut queue: Vec<(usize, usize)> = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    queue.push((i, j));
                }
            }
        }
        while let Some((i, j)) = queue.pop() {
            let rij = self.get(i, j);
            for k in 0..n {
                if k == i || k == j {
                    continue;
                }
                // Tighten (i, k) via (i, j) ∘ (j, k).
                let rik = self.get(i, k);
                let tightened = rik.intersect(rij.compose(self.get(j, k)));
                if tightened != rik {
                    if tightened.is_empty() {
                        self.m[i * n + k] = tightened;
                        return false;
                    }
                    self.m[i * n + k] = tightened;
                    self.m[k * n + i] = tightened.converse();
                    queue.push((i, k));
                }
                // Tighten (k, j) via (k, i) ∘ (i, j).
                let rkj = self.get(k, j);
                let tightened = rkj.intersect(self.get(k, i).compose(rij));
                if tightened != rkj {
                    if tightened.is_empty() {
                        self.m[k * n + j] = tightened;
                        return false;
                    }
                    self.m[k * n + j] = tightened;
                    self.m[j * n + k] = tightened.converse();
                    queue.push((k, j));
                }
            }
        }
        true
    }

    /// True if every constraint is a singleton (a fully decided scenario).
    pub fn is_singleton(&self) -> bool {
        (0..self.n)
            .flat_map(|i| (0..self.n).map(move |j| (i, j)))
            .all(|(i, j)| self.get(i, j).len() == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn between_covers_all_thirteen() {
        use AllenRel::*;
        let iv = |a, b| Interval::between(a, b).unwrap();
        assert_eq!(AllenRel::between(&iv(0, 2), &iv(3, 5)), Before);
        assert_eq!(AllenRel::between(&iv(0, 3), &iv(3, 5)), Meets);
        assert_eq!(AllenRel::between(&iv(0, 4), &iv(2, 6)), Overlaps);
        assert_eq!(AllenRel::between(&iv(0, 2), &iv(0, 5)), Starts);
        assert_eq!(AllenRel::between(&iv(2, 4), &iv(0, 6)), During);
        assert_eq!(AllenRel::between(&iv(3, 6), &iv(0, 6)), Finishes);
        assert_eq!(AllenRel::between(&iv(1, 2), &iv(1, 2)), Equal);
        assert_eq!(AllenRel::between(&iv(0, 6), &iv(3, 6)), FinishedBy);
        assert_eq!(AllenRel::between(&iv(0, 6), &iv(2, 4)), Contains);
        assert_eq!(AllenRel::between(&iv(0, 5), &iv(0, 2)), StartedBy);
        assert_eq!(AllenRel::between(&iv(2, 6), &iv(0, 4)), OverlappedBy);
        assert_eq!(AllenRel::between(&iv(3, 5), &iv(0, 3)), MetBy);
        assert_eq!(AllenRel::between(&iv(3, 5), &iv(0, 2)), After);
    }

    #[test]
    fn converse_is_involution() {
        for r in ALL_RELS {
            assert_eq!(r.converse().converse(), r);
        }
    }

    #[test]
    fn converse_agrees_with_between() {
        let a = Interval::between(0, 4).unwrap();
        let b = Interval::between(2, 6).unwrap();
        assert_eq!(
            AllenRel::between(&a, &b).converse(),
            AllenRel::between(&b, &a)
        );
    }

    #[test]
    fn composition_spot_checks_against_published_table() {
        use AllenRel::*;
        // before ∘ before = {before}
        assert_eq!(
            RelSet::of(Before).compose(RelSet::of(Before)),
            RelSet::of(Before)
        );
        // meets ∘ meets = {before}
        assert_eq!(
            RelSet::of(Meets).compose(RelSet::of(Meets)),
            RelSet::of(Before)
        );
        // during ∘ after = {after}
        assert_eq!(
            RelSet::of(During).compose(RelSet::of(After)),
            RelSet::of(After)
        );
        // overlaps ∘ overlaps = {before, meets, overlaps}
        assert_eq!(
            RelSet::of(Overlaps).compose(RelSet::of(Overlaps)),
            RelSet::from_rels(&[Before, Meets, Overlaps])
        );
        // starts ∘ during = {during}
        assert_eq!(
            RelSet::of(Starts).compose(RelSet::of(During)),
            RelSet::of(During)
        );
        // equal is the identity of composition
        for r in ALL_RELS {
            assert_eq!(RelSet::of(Equal).compose(RelSet::of(r)), RelSet::of(r));
            assert_eq!(RelSet::of(r).compose(RelSet::of(Equal)), RelSet::of(r));
        }
    }

    #[test]
    fn composition_respects_converse_symmetry() {
        // (r1 ∘ r2)ˇ == r2ˇ ∘ r1ˇ for all pairs.
        for r1 in ALL_RELS {
            for r2 in ALL_RELS {
                let lhs = RelSet::of(r1).compose(RelSet::of(r2)).converse();
                let rhs = RelSet::of(r2.converse()).compose(RelSet::of(r1.converse()));
                assert_eq!(lhs, rhs, "{r1:?} {r2:?}");
            }
        }
    }

    #[test]
    fn relset_basics() {
        use AllenRel::*;
        let s = RelSet::from_rels(&[Before, After]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(Before) && s.contains(After) && !s.contains(Equal));
        assert_eq!(s.converse(), s);
        assert_eq!(s.intersect(RelSet::of(Before)), RelSet::of(Before));
        assert!(RelSet::EMPTY.is_empty());
        assert_eq!(RelSet::FULL.len(), 13);
        assert_eq!(s.to_string(), "{b,a}");
    }

    #[test]
    fn abbrev_roundtrip() {
        for r in ALL_RELS {
            assert_eq!(AllenRel::from_abbrev(r.abbrev()), Some(r));
        }
        assert_eq!(AllenRel::from_abbrev("zz"), None);
    }

    #[test]
    fn network_propagation_infers_transitivity() {
        use AllenRel::*;
        // requirements-phase before design-phase before implementation.
        let mut net = AllenNetwork::new(3);
        assert!(net.assert_rel(0, 1, RelSet::of(Before)));
        assert!(net.assert_rel(1, 2, RelSet::of(Before)));
        assert!(net.propagate());
        assert_eq!(net.get(0, 2), RelSet::of(Before));
        assert_eq!(net.get(2, 0), RelSet::of(After));
    }

    #[test]
    fn network_detects_inconsistency() {
        use AllenRel::*;
        let mut net = AllenNetwork::new(3);
        net.assert_rel(0, 1, RelSet::of(Before));
        net.assert_rel(1, 2, RelSet::of(Before));
        net.assert_rel(2, 0, RelSet::of(Before)); // cycle of "before"
        assert!(!net.propagate());
    }

    #[test]
    fn network_narrows_but_keeps_ambiguity() {
        use AllenRel::*;
        let mut net = AllenNetwork::new(3);
        net.assert_rel(0, 1, RelSet::of(During));
        net.assert_rel(1, 2, RelSet::of(During));
        assert!(net.propagate());
        assert_eq!(net.get(0, 2), RelSet::of(During));
        // An unconstrained pair stays wide.
        let mut net2 = AllenNetwork::new(3);
        net2.assert_rel(0, 1, RelSet::of(Overlaps));
        assert!(net2.propagate());
        assert!(net2.get(0, 2).len() > 1);
    }

    #[test]
    fn diagonal_is_equal() {
        let net = AllenNetwork::new(2);
        assert_eq!(net.get(0, 0), RelSet::of(AllenRel::Equal));
        assert_eq!(net.get(1, 1), RelSet::of(AllenRel::Equal));
    }
}
