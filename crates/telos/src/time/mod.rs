//! The embedded time calculus of CML (paper §3.1).
//!
//! "Several time calculi may be supported by different inference
//! engines; currently, the models of \[ALLE83\] and \[KS86\] are
//! supported." Accordingly:
//!
//! * [`point`] / [`interval`] — the concrete timeline: half-open
//!   intervals over integer ticks with ±∞ endpoints, used for the two
//!   time dimensions of every proposition;
//! * [`allen`] — Allen's qualitative interval algebra \[ALLE83\]: the 13
//!   basic relations, converse and composition, and a path-consistency
//!   constraint network;
//! * [`events`] — a logic-based calculus of events \[KS86\]: events
//!   initiate and terminate fluents, and validity periods are derived.

pub mod allen;
pub mod events;
pub mod interval;
pub mod point;
