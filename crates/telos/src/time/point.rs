//! Time points: integer ticks extended with ±∞.

use std::fmt;

/// A point on the discrete timeline, extended with infinities so that
/// "Always" and open-ended belief intervals are representable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimePoint {
    /// Before all ticks.
    NegInf,
    /// A finite tick.
    At(i64),
    /// After all ticks.
    PosInf,
}

impl TimePoint {
    /// The finite tick, if any.
    pub fn tick(self) -> Option<i64> {
        match self {
            TimePoint::At(t) => Some(t),
            _ => None,
        }
    }

    /// True for either infinity.
    pub fn is_infinite(self) -> bool {
        !matches!(self, TimePoint::At(_))
    }
}

impl PartialOrd for TimePoint {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimePoint {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        use TimePoint::*;
        match (self, other) {
            (NegInf, NegInf) | (PosInf, PosInf) => Equal,
            (NegInf, _) | (_, PosInf) => Less,
            (PosInf, _) | (_, NegInf) => Greater,
            (At(a), At(b)) => a.cmp(b),
        }
    }
}

impl fmt::Display for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimePoint::NegInf => write!(f, "-inf"),
            TimePoint::At(t) => write!(f, "{t}"),
            TimePoint::PosInf => write!(f, "+inf"),
        }
    }
}

impl From<i64> for TimePoint {
    fn from(t: i64) -> Self {
        TimePoint::At(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order() {
        use TimePoint::*;
        assert!(NegInf < At(i64::MIN));
        assert!(At(i64::MAX) < PosInf);
        assert!(At(-3) < At(7));
        assert!(NegInf < PosInf);
        assert_eq!(At(5), At(5));
    }

    #[test]
    fn tick_extraction() {
        assert_eq!(TimePoint::At(9).tick(), Some(9));
        assert_eq!(TimePoint::PosInf.tick(), None);
        assert!(TimePoint::NegInf.is_infinite());
        assert!(!TimePoint::At(0).is_infinite());
    }

    #[test]
    fn display() {
        assert_eq!(TimePoint::NegInf.to_string(), "-inf");
        assert_eq!(TimePoint::At(42).to_string(), "42");
        assert_eq!(TimePoint::PosInf.to_string(), "+inf");
    }
}
