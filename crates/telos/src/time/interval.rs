//! Half-open time intervals `[start, end)` over [`TimePoint`]s.

use crate::error::{TelosError, TelosResult};
use crate::time::point::TimePoint;
use std::fmt;

/// A non-empty half-open interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    start: TimePoint,
    end: TimePoint,
}

impl Interval {
    /// Constructs `[start, end)`; errors unless `start < end`.
    pub fn new(start: TimePoint, end: TimePoint) -> TelosResult<Self> {
        if start < end {
            Ok(Interval { start, end })
        } else {
            Err(TelosError::BadInterval(format!("[{start}, {end})")))
        }
    }

    /// The whole timeline: the paper's `Always`.
    pub fn always() -> Self {
        Interval {
            start: TimePoint::NegInf,
            end: TimePoint::PosInf,
        }
    }

    /// `[t, +inf)` — e.g. a belief interval opened at tick `t`.
    pub fn from_tick(t: i64) -> Self {
        Interval {
            start: TimePoint::At(t),
            end: TimePoint::PosInf,
        }
    }

    /// `[a, b)`; errors unless `a < b`.
    pub fn between(a: i64, b: i64) -> TelosResult<Self> {
        Interval::new(TimePoint::At(a), TimePoint::At(b))
    }

    /// The single-tick interval `[t, t+1)`.
    pub fn at(t: i64) -> Self {
        Interval {
            start: TimePoint::At(t),
            end: TimePoint::At(t.saturating_add(1)),
        }
    }

    /// Returns a copy whose end is closed at tick `t` (UNTELL); errors
    /// if `t` is not strictly after the start.
    pub fn closed_at(self, t: i64) -> TelosResult<Self> {
        Interval::new(self.start, TimePoint::At(t))
    }

    /// Start point.
    pub fn start(&self) -> TimePoint {
        self.start
    }

    /// End point (exclusive).
    pub fn end(&self) -> TimePoint {
        self.end
    }

    /// True if the interval extends to `+inf`.
    pub fn is_open_ended(&self) -> bool {
        self.end == TimePoint::PosInf
    }

    /// True if tick `t` lies inside.
    pub fn contains_point(&self, t: i64) -> bool {
        self.start <= TimePoint::At(t) && TimePoint::At(t) < self.end
    }

    /// True if `other` lies entirely inside `self`.
    pub fn contains(&self, other: &Interval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// True if the two intervals share at least one point.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The common sub-interval, if the intervals overlap.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(Interval { start, end })
        } else {
            None
        }
    }

    /// The smallest interval covering both.
    pub fn span(&self, other: &Interval) -> Interval {
        Interval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Duration in ticks; `None` if either endpoint is infinite.
    pub fn duration(&self) -> Option<i64> {
        match (self.start, self.end) {
            (TimePoint::At(a), TimePoint::At(b)) => Some(b - a),
            _ => None,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Interval::always() {
            write!(f, "Always")
        } else {
            write!(f, "[{}, {})", self.start, self.end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_order() {
        assert!(Interval::between(3, 3).is_err());
        assert!(Interval::between(4, 3).is_err());
        assert!(Interval::between(3, 4).is_ok());
        assert!(Interval::new(TimePoint::PosInf, TimePoint::PosInf).is_err());
    }

    #[test]
    fn containment() {
        let i = Interval::between(10, 20).unwrap();
        assert!(i.contains_point(10));
        assert!(i.contains_point(19));
        assert!(!i.contains_point(20));
        assert!(!i.contains_point(9));
        assert!(Interval::always().contains(&i));
        assert!(!i.contains(&Interval::always()));
        assert!(i.contains(&Interval::at(15)));
    }

    #[test]
    fn overlap_and_intersection() {
        let a = Interval::between(0, 10).unwrap();
        let b = Interval::between(5, 15).unwrap();
        let c = Interval::between(10, 20).unwrap();
        assert!(a.overlaps(&b));
        assert!(
            !a.overlaps(&c),
            "half-open: [0,10) and [10,20) are disjoint"
        );
        assert_eq!(a.intersect(&b), Some(Interval::between(5, 10).unwrap()));
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn span_covers_both() {
        let a = Interval::between(0, 5).unwrap();
        let b = Interval::between(10, 12).unwrap();
        assert_eq!(a.span(&b), Interval::between(0, 12).unwrap());
        assert_eq!(a.span(&Interval::always()), Interval::always());
    }

    #[test]
    fn closing_an_interval() {
        let open = Interval::from_tick(5);
        assert!(open.is_open_ended());
        let closed = open.closed_at(9).unwrap();
        assert!(!closed.is_open_ended());
        assert!(closed.contains_point(8));
        assert!(!closed.contains_point(9));
        assert!(
            open.closed_at(5).is_err(),
            "cannot close at or before start"
        );
    }

    #[test]
    fn duration() {
        assert_eq!(Interval::between(3, 8).unwrap().duration(), Some(5));
        assert_eq!(Interval::always().duration(), None);
        assert_eq!(Interval::at(7).duration(), Some(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Interval::always().to_string(), "Always");
        assert_eq!(Interval::between(1, 2).unwrap().to_string(), "[1, 2)");
        assert_eq!(Interval::from_tick(3).to_string(), "[3, +inf)");
    }
}
