//! Physical representations of the proposition base.
//!
//! §3.1: the proposition base "exports operations for retrieving and
//! creating stored propositions" and may manage "several physical
//! representations". Two are provided:
//!
//! * [`KbBackend::Memory`] — nothing persisted; the KB lives and dies
//!   with the process (the benches' baseline);
//! * [`KbBackend::Log`] — every create / belief-close / tick is
//!   appended to a [`storage::AppendLog`]; reopening replays the log,
//!   reconstructing the exact KB state including closed belief
//!   intervals.

use crate::error::{TelosError, TelosResult};
use crate::prop::{PropId, Proposition};
use crate::time::interval::Interval;
use crate::time::point::TimePoint;
use std::path::Path;
use storage::record::codec::{self, Cursor};
use storage::AppendLog;

/// A replayable KB operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogOp {
    /// A proposition was created.
    Create {
        /// Its id (dense, in creation order).
        id: PropId,
        /// Source node.
        source: PropId,
        /// Label string (symbols are re-interned on replay).
        label: String,
        /// Destination node.
        dest: PropId,
        /// History (valid-time) interval.
        history: Interval,
        /// Tick at which belief began.
        belief_start: i64,
    },
    /// A proposition's belief interval was closed.
    Close {
        /// The proposition.
        id: PropId,
        /// Tick at which belief ended.
        at: i64,
    },
    /// The belief clock advanced.
    Tick {
        /// New clock value.
        to: i64,
    },
}

const OP_CREATE: u32 = 1;
const OP_CLOSE: u32 = 2;
const OP_TICK: u32 = 3;

const TP_NEG: u32 = 0;
const TP_AT: u32 = 1;
const TP_POS: u32 = 2;

fn put_point(out: &mut Vec<u8>, p: TimePoint) {
    match p {
        TimePoint::NegInf => codec::put_u32(out, TP_NEG),
        TimePoint::At(t) => {
            codec::put_u32(out, TP_AT);
            codec::put_i64(out, t);
        }
        TimePoint::PosInf => codec::put_u32(out, TP_POS),
    }
}

fn get_point(c: &mut Cursor<'_>) -> TelosResult<TimePoint> {
    Ok(match c.get_u32()? {
        TP_NEG => TimePoint::NegInf,
        TP_AT => TimePoint::At(c.get_i64()?),
        TP_POS => TimePoint::PosInf,
        other => {
            return Err(TelosError::Storage(storage::StorageError::Corrupt {
                offset: 0,
                detail: format!("bad time point tag {other}"),
            }))
        }
    })
}

fn encode_op(op: &LogOp) -> Vec<u8> {
    let mut out = Vec::new();
    match op {
        LogOp::Create {
            id,
            source,
            label,
            dest,
            history,
            belief_start,
        } => {
            codec::put_u32(&mut out, OP_CREATE);
            codec::put_u32(&mut out, id.0);
            codec::put_u32(&mut out, source.0);
            codec::put_str(&mut out, label);
            codec::put_u32(&mut out, dest.0);
            put_point(&mut out, history.start());
            put_point(&mut out, history.end());
            codec::put_i64(&mut out, *belief_start);
        }
        LogOp::Close { id, at } => {
            codec::put_u32(&mut out, OP_CLOSE);
            codec::put_u32(&mut out, id.0);
            codec::put_i64(&mut out, *at);
        }
        LogOp::Tick { to } => {
            codec::put_u32(&mut out, OP_TICK);
            codec::put_i64(&mut out, *to);
        }
    }
    out
}

fn decode_op(payload: &[u8]) -> TelosResult<LogOp> {
    let mut c = Cursor::new(payload);
    let tag = c.get_u32()?;
    let op = match tag {
        OP_CREATE => {
            let id = PropId(c.get_u32()?);
            let source = PropId(c.get_u32()?);
            let label = c.get_str()?.to_string();
            let dest = PropId(c.get_u32()?);
            let start = get_point(&mut c)?;
            let end = get_point(&mut c)?;
            let belief_start = c.get_i64()?;
            LogOp::Create {
                id,
                source,
                label,
                dest,
                history: Interval::new(start, end)?,
                belief_start,
            }
        }
        OP_CLOSE => LogOp::Close {
            id: PropId(c.get_u32()?),
            at: c.get_i64()?,
        },
        OP_TICK => LogOp::Tick { to: c.get_i64()? },
        other => {
            return Err(TelosError::Storage(storage::StorageError::Corrupt {
                offset: 0,
                detail: format!("bad op tag {other}"),
            }))
        }
    };
    Ok(op)
}

/// A physical representation of the proposition base.
pub enum KbBackend {
    /// No persistence.
    Memory,
    /// Append-only log persistence.
    Log(Box<AppendLog>),
}

impl KbBackend {
    /// Opens a log-backed representation at `path`.
    pub fn log(path: impl AsRef<Path>) -> TelosResult<Self> {
        Ok(KbBackend::Log(Box::new(AppendLog::open(path)?)))
    }

    /// Loads all replayable ops; `None` for backends with no history
    /// (fresh logs, or the memory backend).
    pub(crate) fn load(&mut self) -> TelosResult<Option<Vec<LogOp>>> {
        match self {
            KbBackend::Memory => Ok(None),
            KbBackend::Log(log) => {
                if log.is_empty() {
                    return Ok(None);
                }
                let mut ops = Vec::with_capacity(log.len() as usize);
                for item in log.iter()? {
                    let (_, payload) = item.map_err(TelosError::Storage)?;
                    ops.push(decode_op(&payload)?);
                }
                Ok(Some(ops))
            }
        }
    }

    pub(crate) fn record_create(&mut self, p: &Proposition, label: &str) -> TelosResult<()> {
        if let KbBackend::Log(log) = self {
            let op = LogOp::Create {
                id: p.id,
                source: p.source,
                label: label.to_string(),
                dest: p.dest,
                history: p.history,
                belief_start: p.belief.start().tick().unwrap_or(0),
            };
            log.append(&encode_op(&op))?;
        }
        Ok(())
    }

    pub(crate) fn record_close(&mut self, id: PropId, at: i64) -> TelosResult<()> {
        if let KbBackend::Log(log) = self {
            log.append(&encode_op(&LogOp::Close { id, at }))?;
        }
        Ok(())
    }

    pub(crate) fn record_tick(&mut self, to: i64) {
        if let KbBackend::Log(log) = self {
            // A failed tick record is recoverable: the next mutation
            // carries its own tick; still, surface it in debug builds.
            let r = log.append(&encode_op(&LogOp::Tick { to }));
            debug_assert!(r.is_ok(), "tick append failed: {r:?}");
        }
    }

    pub(crate) fn sync(&mut self) -> TelosResult<()> {
        if let KbBackend::Log(log) = self {
            log.sync()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::Kb;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cb-telos-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn op_codec_roundtrip() {
        let ops = vec![
            LogOp::Create {
                id: PropId(7),
                source: PropId(7),
                label: "Invitation".into(),
                dest: PropId(7),
                history: Interval::always(),
                belief_start: 3,
            },
            LogOp::Create {
                id: PropId(8),
                source: PropId(7),
                label: "sender".into(),
                dest: PropId(2),
                history: Interval::between(10, 20).unwrap(),
                belief_start: 4,
            },
            LogOp::Close {
                id: PropId(8),
                at: 9,
            },
            LogOp::Tick { to: 11 },
        ];
        for op in ops {
            assert_eq!(decode_op(&encode_op(&op)).unwrap(), op);
        }
    }

    #[test]
    fn garbage_op_rejected() {
        let mut bad = Vec::new();
        codec::put_u32(&mut bad, 99);
        assert!(decode_op(&bad).is_err());
    }

    #[test]
    fn persistent_kb_survives_reopen() {
        let path = tmp("persist");
        let (paper_id, inv_id);
        {
            let mut kb = Kb::with_backend(KbBackend::log(&path).unwrap()).unwrap();
            paper_id = kb.individual("Paper").unwrap();
            inv_id = kb.individual("Invitation").unwrap();
            kb.specialize(inv_id, paper_id).unwrap();
            let x = kb.individual("inv42").unwrap();
            kb.instantiate(x, inv_id).unwrap();
            kb.sync().unwrap();
        }
        let kb = Kb::with_backend(KbBackend::log(&path).unwrap()).unwrap();
        let paper = kb.expect("Paper").unwrap();
        let inv = kb.expect("Invitation").unwrap();
        assert_eq!((paper, inv), (paper_id, inv_id), "ids are stable");
        let x = kb.expect("inv42").unwrap();
        assert!(kb.is_instance_of(x, paper));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn untell_survives_reopen() {
        let path = tmp("untell");
        let t_before;
        {
            let mut kb = Kb::with_backend(KbBackend::log(&path).unwrap()).unwrap();
            let a = kb.individual("A").unwrap();
            let b = kb.individual("B").unwrap();
            let l = kb.put_attr(a, "r", b).unwrap();
            t_before = kb.now();
            kb.untell(l).unwrap();
            kb.sync().unwrap();
        }
        let kb = Kb::with_backend(KbBackend::log(&path).unwrap()).unwrap();
        let a = kb.expect("A").unwrap();
        assert!(kb.attr_values(a, "r").is_empty());
        assert_eq!(kb.attr_values_at(a, "r", t_before).len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn clock_survives_reopen() {
        let path = tmp("clock");
        let t;
        {
            let mut kb = Kb::with_backend(KbBackend::log(&path).unwrap()).unwrap();
            kb.tick();
            kb.tick();
            t = kb.now();
            kb.sync().unwrap();
        }
        let kb = Kb::with_backend(KbBackend::log(&path).unwrap()).unwrap();
        assert_eq!(kb.now(), t);
        std::fs::remove_file(&path).unwrap();
    }
}
