//! The ω-level bootstrap: CML's predefined objects.
//!
//! §3.1: "Axioms of CML … reflect the existence of propositions with
//! predefined interpretation" — classification (`instanceof`),
//! specialization (`isa`), aggregation (`attribute`), deduction
//! (`rule`), constraints (`constraint`) and behaviours (`behaviour`).
//! The predefined link classes (e.g. `InstanceOf_omega =
//! <PROPOSITION, instanceof, CLASS, Always>`) and the classification
//! levels (`Token`, `SimpleClass`, `MetaClass`, `MetametaClass`) are
//! themselves propositions, created here when a fresh KB is opened.
//!
//! Because everything is a proposition, the GKBMS metamodel of §3.2 is
//! built *on top of* this level with ordinary TELLs — no kernel change.

use crate::error::TelosResult;
use crate::kb::Kb;
use crate::prop::PropId;

/// Names of the ω-level individuals, stable across replay.
pub mod names {
    /// The class of all propositions.
    pub const PROPOSITION: &str = "Proposition";
    /// The class of all classes.
    pub const CLASS: &str = "Class";
    /// Instance level.
    pub const TOKEN: &str = "Token";
    /// First class level.
    pub const SIMPLE_CLASS: &str = "SimpleClass";
    /// Second class level (classes of classes).
    pub const META_CLASS: &str = "MetaClass";
    /// Third class level.
    pub const METAMETA_CLASS: &str = "MetametaClass";
    /// Destination class of rule / constraint links.
    pub const ASSERTION: &str = "Assertion";
    /// Destination class of behaviour links.
    pub const BEHAVIOUR: &str = "Behaviour";
    /// ω classification link class.
    pub const INSTANCE_OF_OMEGA: &str = "InstanceOf_omega";
    /// ω specialization link class.
    pub const ISA_OMEGA: &str = "IsA_omega";
    /// ω aggregation link class.
    pub const ATTRIBUTE_OMEGA: &str = "Attribute_omega";
    /// The predefined simple-class-level isa class of the paper's
    /// `IsA_1 = <SimpleClass, isa, SimpleClass, Always>` example.
    pub const ISA_1: &str = "IsA_1";
}

/// Proposition ids of the ω-level objects.
#[derive(Debug, Clone, Copy)]
pub struct Builtins {
    /// `Proposition`, the class of everything.
    pub proposition: PropId,
    /// `Class`, the class of all classes.
    pub class: PropId,
    /// `Token` level.
    pub token: PropId,
    /// `SimpleClass` level.
    pub simple_class: PropId,
    /// `MetaClass` level.
    pub meta_class: PropId,
    /// `MetametaClass` level.
    pub metameta_class: PropId,
    /// `Assertion` (destinations of rule/constraint links).
    pub assertion: PropId,
    /// `Behaviour` (destinations of behaviour links).
    pub behaviour: PropId,
    /// The ω instanceof link class.
    pub instance_of_omega: PropId,
    /// The ω isa link class.
    pub isa_omega: PropId,
    /// The ω attribute link class.
    pub attribute_omega: PropId,
    /// `IsA_1`, the isa class between simple classes.
    pub isa_1: PropId,
}

impl Builtins {
    /// A placeholder used only during backend replay, before
    /// [`Builtins::resolve`] runs.
    pub(crate) fn placeholder() -> Self {
        let z = PropId(0);
        Builtins {
            proposition: z,
            class: z,
            token: z,
            simple_class: z,
            meta_class: z,
            metameta_class: z,
            assertion: z,
            behaviour: z,
            instance_of_omega: z,
            isa_omega: z,
            attribute_omega: z,
            isa_1: z,
        }
    }

    /// Resolves the builtin ids by name after a replay.
    pub(crate) fn resolve(kb: &Kb) -> TelosResult<Self> {
        Ok(Builtins {
            proposition: kb.expect(names::PROPOSITION)?,
            class: kb.expect(names::CLASS)?,
            token: kb.expect(names::TOKEN)?,
            simple_class: kb.expect(names::SIMPLE_CLASS)?,
            meta_class: kb.expect(names::META_CLASS)?,
            metameta_class: kb.expect(names::METAMETA_CLASS)?,
            assertion: kb.expect(names::ASSERTION)?,
            behaviour: kb.expect(names::BEHAVIOUR)?,
            instance_of_omega: kb.expect(names::INSTANCE_OF_OMEGA)?,
            isa_omega: kb.expect(names::ISA_OMEGA)?,
            attribute_omega: kb.expect(names::ATTRIBUTE_OMEGA)?,
            isa_1: kb.expect(names::ISA_1)?,
        })
    }
}

/// Creates the ω-level in a fresh KB.
pub(crate) fn bootstrap(kb: &mut Kb) -> TelosResult<Builtins> {
    let proposition = kb.individual(names::PROPOSITION)?;
    let class = kb.individual(names::CLASS)?;
    let token = kb.individual(names::TOKEN)?;
    let simple_class = kb.individual(names::SIMPLE_CLASS)?;
    let meta_class = kb.individual(names::META_CLASS)?;
    let metameta_class = kb.individual(names::METAMETA_CLASS)?;
    let assertion = kb.individual(names::ASSERTION)?;
    let behaviour = kb.individual(names::BEHAVIOUR)?;

    // Every class is a proposition; every simple/meta/metameta class is
    // a class; tokens are plain propositions.
    kb.specialize(class, proposition)?;
    kb.specialize(token, proposition)?;
    for level in [simple_class, meta_class, metameta_class] {
        kb.specialize(level, class)?;
        kb.instantiate(level, class)?;
    }
    kb.instantiate(assertion, class)?;
    kb.instantiate(behaviour, class)?;

    // The predefined link classes, as the paper writes them:
    //   InstanceOf_omega = <PROPOSITION, instanceof, CLASS, Always>.
    // They are attribute-like propositions between builtin nodes, named
    // individually so they can be retrieved and extended.
    let instance_of_omega = kb.individual(names::INSTANCE_OF_OMEGA)?;
    kb.put_attr(instance_of_omega, "from", proposition)?;
    kb.put_attr(instance_of_omega, "to", class)?;
    let isa_omega = kb.individual(names::ISA_OMEGA)?;
    kb.put_attr(isa_omega, "from", class)?;
    kb.put_attr(isa_omega, "to", class)?;
    let attribute_omega = kb.individual(names::ATTRIBUTE_OMEGA)?;
    kb.put_attr(attribute_omega, "from", proposition)?;
    kb.put_attr(attribute_omega, "to", proposition)?;
    let isa_1 = kb.individual(names::ISA_1)?;
    kb.put_attr(isa_1, "from", simple_class)?;
    kb.put_attr(isa_1, "to", simple_class)?;
    kb.specialize(isa_1, isa_omega)?;

    kb.tick();
    Ok(Builtins {
        proposition,
        class,
        token,
        simple_class,
        meta_class,
        metameta_class,
        assertion,
        behaviour,
        instance_of_omega,
        isa_omega,
        attribute_omega,
        isa_1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_names_resolve() {
        let kb = Kb::new();
        let b = kb.builtins();
        assert_eq!(kb.display(b.proposition), names::PROPOSITION);
        assert_eq!(kb.display(b.class), names::CLASS);
        assert_eq!(kb.display(b.isa_1), names::ISA_1);
    }

    #[test]
    fn levels_are_classes_and_propositions() {
        let kb = Kb::new();
        let b = kb.builtins();
        assert!(kb.is_instance_of(b.simple_class, b.class));
        assert!(kb.isa_ancestors(b.simple_class).contains(&b.proposition));
        assert!(kb.isa_ancestors(b.class).contains(&b.proposition));
    }

    #[test]
    fn link_classes_have_from_to() {
        let kb = Kb::new();
        let b = kb.builtins();
        assert_eq!(
            kb.attr_values(b.instance_of_omega, "from"),
            vec![b.proposition]
        );
        assert_eq!(kb.attr_values(b.instance_of_omega, "to"), vec![b.class]);
        assert_eq!(kb.attr_values(b.isa_1, "from"), vec![b.simple_class]);
    }

    #[test]
    fn isa_1_specializes_isa_omega() {
        let kb = Kb::new();
        let b = kb.builtins();
        assert!(kb.isa_ancestors(b.isa_1).contains(&b.isa_omega));
    }

    #[test]
    fn user_metaclasses_buildable_on_top() {
        // Fig 2-5 / 3-3: the GKBMS metamodel is ordinary TELLs.
        let mut kb = Kb::new();
        let b = *kb.builtins();
        let design_object = kb.individual("DesignObject").unwrap();
        kb.instantiate(design_object, b.meta_class).unwrap();
        let dbpl_rel = kb.individual("DBPL_Rel").unwrap();
        kb.instantiate(dbpl_rel, design_object).unwrap();
        let inv_rel = kb.individual("InvitationRel").unwrap();
        kb.instantiate(inv_rel, dbpl_rel).unwrap();
        assert!(kb.is_instance_of(inv_rel, dbpl_rel));
        assert!(kb.is_instance_of(dbpl_rel, design_object));
        assert!(kb.is_instance_of(design_object, b.meta_class));
        // Three distinct levels, as fig 2-5 draws them.
        assert!(!kb.is_instance_of(inv_rel, design_object));
    }
}
