//! Interned strings for proposition labels and individual names.
//!
//! Propositions store a [`Symbol`] (a `u32`) instead of a `String`; the
//! [`SymbolTable`] owns the strings and guarantees one id per distinct
//! string. Indexing and comparison thus never touch string data.
//!
//! Strings are held as `Arc<str>` in a persistent chunked vector, so
//! cloning the table for an immutable [`crate::KbVersion`] copies only
//! the spine and the id map — every string is shared between the live
//! table and all captured versions.

use crate::pvec::PVec;
use std::collections::HashMap;
use std::sync::Arc;

/// An interned string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

/// The intern table mapping strings to [`Symbol`]s and back.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    strings: PVec<Arc<str>>,
    ids: HashMap<Arc<str>, Symbol>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Interns `s`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.ids.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        let owned: Arc<str> = Arc::from(s);
        self.strings.push(owned.clone());
        self.ids.insert(owned, sym);
        sym
    }

    /// Looks up an existing symbol without interning.
    pub fn lookup(&self, s: &str) -> Option<Symbol> {
        self.ids.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this table — that is a logic
    /// error, not a recoverable condition.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("Invitation");
        let b = t.intern("Invitation");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        let mut t = SymbolTable::new();
        let a = t.intern("Paper");
        let b = t.intern("Minutes");
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "Paper");
        assert_eq!(t.resolve(b), "Minutes");
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut t = SymbolTable::new();
        assert_eq!(t.lookup("sender"), None);
        let s = t.intern("sender");
        assert_eq!(t.lookup("sender"), Some(s));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_table() {
        let t = SymbolTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn clone_shares_strings_and_stays_isolated() {
        let mut t = SymbolTable::new();
        let a = t.intern("alpha");
        let snap = t.clone();
        let b = t.intern("beta");
        assert_eq!(snap.resolve(a), "alpha");
        assert_eq!(snap.lookup("beta"), None, "clone unaffected");
        assert_eq!(t.resolve(b), "beta");
        assert_eq!(snap.len() + 1, t.len());
    }
}
