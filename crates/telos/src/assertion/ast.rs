//! Abstract syntax of the assertion language.

use std::fmt;

/// A term: an identifier, resolved at evaluation time first against the
/// variable environment, then against the KB's individual names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Term(pub String);

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An atomic formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Atom {
    /// `x in C` — classification (with inheritance).
    In(Term, Term),
    /// `C isa D` — specialization (transitive, reflexive).
    Isa(Term, Term),
    /// `x = y` — identity of denoted propositions.
    Eq(Term, Term),
    /// `x <> y`.
    Ne(Term, Term),
    /// `x.label = y` — some believed attribute `label` of `x` has value `y`.
    HasAttr(Term, String, Term),
    /// `x.label defined` — `x` has at least one believed attribute `label`.
    AttrDefined(Term, String),
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::In(x, c) => write!(f, "{x} in {c}"),
            Atom::Isa(c, d) => write!(f, "{c} isa {d}"),
            Atom::Eq(x, y) => write!(f, "{x} = {y}"),
            Atom::Ne(x, y) => write!(f, "{x} <> {y}"),
            Atom::HasAttr(x, l, y) => write!(f, "{x}.{l} = {y}"),
            Atom::AttrDefined(x, l) => write!(f, "{x}.{l} defined"),
        }
    }
}

/// A first-order expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// `forall v/Class body` — v ranges over all instances of Class.
    Forall(String, String, Box<Expr>),
    /// `exists v/Class body`.
    Exists(String, String, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Implication.
    Implies(Box<Expr>, Box<Expr>),
    /// An atomic formula.
    Atom(Atom),
    /// The true constant.
    True,
}

impl Expr {
    /// Convenience constructor for conjunction chains.
    pub fn and_all(mut exprs: Vec<Expr>) -> Expr {
        match exprs.len() {
            0 => Expr::True,
            1 => exprs.remove(0),
            _ => {
                let first = exprs.remove(0);
                exprs
                    .into_iter()
                    .fold(first, |acc, e| Expr::And(Box::new(acc), Box::new(e)))
            }
        }
    }

    /// Free variables: identifiers used in atoms but never bound by a
    /// quantifier above them. (Resolution against KB names happens at
    /// evaluation time, so "free variable" here is syntactic.)
    pub fn free_idents(&self) -> Vec<String> {
        fn walk(e: &Expr, bound: &mut Vec<String>, out: &mut Vec<String>) {
            let push = |t: &Term, bound: &Vec<String>, out: &mut Vec<String>| {
                if !bound.contains(&t.0) && !out.contains(&t.0) {
                    out.push(t.0.clone());
                }
            };
            match e {
                Expr::Forall(v, _, b) | Expr::Exists(v, _, b) => {
                    bound.push(v.clone());
                    walk(b, bound, out);
                    bound.pop();
                }
                Expr::And(a, b) | Expr::Or(a, b) | Expr::Implies(a, b) => {
                    walk(a, bound, out);
                    walk(b, bound, out);
                }
                Expr::Not(a) => walk(a, bound, out),
                Expr::Atom(atom) => match atom {
                    Atom::In(x, y) | Atom::Isa(x, y) | Atom::Eq(x, y) | Atom::Ne(x, y) => {
                        push(x, bound, out);
                        push(y, bound, out);
                    }
                    Atom::HasAttr(x, _, y) => {
                        push(x, bound, out);
                        push(y, bound, out);
                    }
                    Atom::AttrDefined(x, _) => push(x, bound, out),
                },
                Expr::True => {}
            }
        }
        let mut out = Vec::new();
        walk(self, &mut Vec::new(), &mut out);
        out
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Forall(v, c, b) => write!(f, "forall {v}/{c} ({b})"),
            Expr::Exists(v, c, b) => write!(f, "exists {v}/{c} ({b})"),
            Expr::And(a, b) => write!(f, "({a} and {b})"),
            Expr::Or(a, b) => write!(f, "({a} or {b})"),
            Expr::Not(a) => write!(f, "not ({a})"),
            Expr::Implies(a, b) => write!(f, "({a} ==> {b})"),
            Expr::Atom(a) => write!(f, "{a}"),
            Expr::True => write!(f, "true"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_all_shapes() {
        assert_eq!(Expr::and_all(vec![]), Expr::True);
        let a = Expr::Atom(Atom::Eq(Term("x".into()), Term("y".into())));
        assert_eq!(Expr::and_all(vec![a.clone()]), a);
        let two = Expr::and_all(vec![a.clone(), Expr::True]);
        assert!(matches!(two, Expr::And(_, _)));
    }

    #[test]
    fn free_idents_respect_binding() {
        // forall i/Invitation (i.sender = boss)
        let e = Expr::Forall(
            "i".into(),
            "Invitation".into(),
            Box::new(Expr::Atom(Atom::HasAttr(
                Term("i".into()),
                "sender".into(),
                Term("boss".into()),
            ))),
        );
        assert_eq!(e.free_idents(), vec!["boss".to_string()]);
    }

    #[test]
    fn display_roundtrips_visually() {
        let e = Expr::Implies(
            Box::new(Expr::Atom(Atom::In(Term("x".into()), Term("C".into())))),
            Box::new(Expr::Atom(Atom::Isa(Term("C".into()), Term("D".into())))),
        );
        assert_eq!(e.to_string(), "(x in C ==> C isa D)");
    }
}
