//! Recursive-descent parser for the assertion language.
//!
//! Grammar (binding strength grows downwards; `==>` is right-
//! associative and binds weakest):
//!
//! ```text
//! expr    := 'forall' IDENT '/' IDENT expr
//!          | 'exists' IDENT '/' IDENT expr
//!          | implies
//! implies := disj ('==>' implies)?
//! disj    := conj ('or' conj)*
//! conj    := unary ('and' unary)*
//! unary   := 'not' unary | '(' expr ')' | atom
//! atom    := IDENT '.' IDENT ('=' IDENT | 'defined')
//!          | IDENT ('in' | 'isa' | '=' | '<>') IDENT
//!          | 'true'
//! ```
//!
//! Identifiers are `[A-Za-z_][A-Za-z0-9_]*`; names containing other
//! characters can be written in double quotes.

use super::ast::{Atom, Expr, Term};
use crate::error::{TelosError, TelosResult};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Dot,
    Slash,
    LParen,
    RParen,
    Eq,
    Ne,
    Implies,
}

fn lex(input: &str) -> TelosResult<Vec<Tok>> {
    let mut toks = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '.' => {
                toks.push(Tok::Dot);
                i += 1;
            }
            '/' => {
                toks.push(Tok::Slash);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '=' => {
                if chars.get(i + 1) == Some(&'=') && chars.get(i + 2) == Some(&'>') {
                    toks.push(Tok::Implies);
                    i += 3;
                } else {
                    toks.push(Tok::Eq);
                    i += 1;
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'>') {
                    toks.push(Tok::Ne);
                    i += 2;
                } else {
                    return Err(TelosError::Assertion(format!(
                        "unexpected `<` at position {i}"
                    )));
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != '"' {
                    j += 1;
                }
                if j == chars.len() {
                    return Err(TelosError::Assertion("unterminated string".into()));
                }
                toks.push(Tok::Ident(chars[start..j].iter().collect()));
                i = j + 1;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok::Ident(chars[start..i].iter().collect()));
            }
            other => {
                return Err(TelosError::Assertion(format!(
                    "unexpected character `{other}` at position {i}"
                )))
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek_ident(&self) -> Option<&str> {
        match self.peek() {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_ident(&mut self) -> TelosResult<String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(TelosError::Assertion(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn expect(&mut self, t: Tok) -> TelosResult<()> {
        match self.bump() {
            Some(found) if found == t => Ok(()),
            other => Err(TelosError::Assertion(format!(
                "expected {t:?}, found {other:?}"
            ))),
        }
    }

    fn expr(&mut self) -> TelosResult<Expr> {
        match self.peek_ident() {
            Some("forall") | Some("exists") => {
                let kw = self.expect_ident()?;
                let var = self.expect_ident()?;
                self.expect(Tok::Slash)?;
                let class = self.expect_ident()?;
                let body = Box::new(self.expr()?);
                Ok(if kw == "forall" {
                    Expr::Forall(var, class, body)
                } else {
                    Expr::Exists(var, class, body)
                })
            }
            _ => self.implies(),
        }
    }

    fn implies(&mut self) -> TelosResult<Expr> {
        let lhs = self.disj()?;
        if self.peek() == Some(&Tok::Implies) {
            self.bump();
            let rhs = self.implies()?; // right-assoc
            Ok(Expr::Implies(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn disj(&mut self) -> TelosResult<Expr> {
        let mut e = self.conj()?;
        while self.peek_ident() == Some("or") {
            self.bump();
            let rhs = self.conj()?;
            e = Expr::Or(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn conj(&mut self) -> TelosResult<Expr> {
        let mut e = self.unary()?;
        while self.peek_ident() == Some("and") {
            self.bump();
            let rhs = self.unary()?;
            e = Expr::And(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn unary(&mut self) -> TelosResult<Expr> {
        match self.peek() {
            Some(Tok::Ident(s)) if s == "not" => {
                self.bump();
                Ok(Expr::Not(Box::new(self.unary()?)))
            }
            Some(Tok::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> TelosResult<Expr> {
        if self.peek_ident() == Some("true") {
            self.bump();
            return Ok(Expr::True);
        }
        // Quantifier appearing mid-formula (e.g. rhs of `and`):
        if matches!(self.peek_ident(), Some("forall") | Some("exists")) {
            return self.expr();
        }
        let lhs = Term(self.expect_ident()?);
        match self.bump() {
            Some(Tok::Dot) => {
                let label = self.expect_ident()?;
                match self.peek() {
                    Some(Tok::Eq) => {
                        self.bump();
                        let rhs = Term(self.expect_ident()?);
                        Ok(Expr::Atom(Atom::HasAttr(lhs, label, rhs)))
                    }
                    Some(Tok::Ident(s)) if s == "defined" => {
                        self.bump();
                        Ok(Expr::Atom(Atom::AttrDefined(lhs, label)))
                    }
                    other => Err(TelosError::Assertion(format!(
                        "expected `=` or `defined` after attribute, found {other:?}"
                    ))),
                }
            }
            Some(Tok::Eq) => Ok(Expr::Atom(Atom::Eq(lhs, Term(self.expect_ident()?)))),
            Some(Tok::Ne) => Ok(Expr::Atom(Atom::Ne(lhs, Term(self.expect_ident()?)))),
            Some(Tok::Ident(s)) if s == "in" => {
                Ok(Expr::Atom(Atom::In(lhs, Term(self.expect_ident()?))))
            }
            Some(Tok::Ident(s)) if s == "isa" => {
                Ok(Expr::Atom(Atom::Isa(lhs, Term(self.expect_ident()?))))
            }
            other => Err(TelosError::Assertion(format!(
                "expected relation after `{lhs}`, found {other:?}"
            ))),
        }
    }
}

/// Parses an assertion-language expression.
pub fn parse(input: &str) -> TelosResult<Expr> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(TelosError::Assertion(format!(
            "trailing input after expression at token {}",
            p.pos
        )));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_quantified_constraint() {
        let e = parse("forall i/Invitation exists p/Person i.sender = p").unwrap();
        match e {
            Expr::Forall(v, c, body) => {
                assert_eq!((v.as_str(), c.as_str()), ("i", "Invitation"));
                assert!(matches!(*body, Expr::Exists(_, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let e = parse("a = b or c = d and e = f").unwrap();
        // or(a=b, and(c=d, e=f))
        match e {
            Expr::Or(lhs, rhs) => {
                assert!(matches!(*lhs, Expr::Atom(_)));
                assert!(matches!(*rhs, Expr::And(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn implies_is_weakest_and_right_assoc() {
        let e = parse("a = b ==> c = d ==> e = f").unwrap();
        match e {
            Expr::Implies(_, rhs) => assert!(matches!(*rhs, Expr::Implies(_, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_all_atom_forms() {
        assert!(parse("x in Invitation").is_ok());
        assert!(parse("Invitation isa Paper").is_ok());
        assert!(parse("x = y").is_ok());
        assert!(parse("x <> y").is_ok());
        assert!(parse("x.sender = maria").is_ok());
        assert!(parse("x.sender defined").is_ok());
        assert!(parse("true").is_ok());
        assert!(parse("not x in C").is_ok());
        assert!(parse("(x in C)").is_ok());
    }

    #[test]
    fn quoted_identifiers() {
        let e = parse("\"Invitation Rel 2\" in DBPL_Rel").unwrap();
        assert_eq!(
            e,
            Expr::Atom(Atom::In(
                Term("Invitation Rel 2".into()),
                Term("DBPL_Rel".into())
            ))
        );
    }

    #[test]
    fn quantifier_on_rhs_of_connective() {
        let e = parse("x in C and forall y/D y = x").unwrap();
        assert!(matches!(e, Expr::And(_, _)));
    }

    #[test]
    fn error_cases() {
        assert!(parse("").is_err());
        assert!(parse("x in").is_err());
        assert!(parse("x ! y").is_err());
        assert!(parse("x = y z = w").is_err(), "trailing input");
        assert!(parse("\"unterminated").is_err());
        assert!(parse("forall x C x = x").is_err(), "missing slash");
        assert!(parse("x.label").is_err(), "attribute needs = or defined");
        assert!(parse("x < y").is_err());
        assert!(parse("(x = y").is_err());
    }

    #[test]
    fn display_reparses() {
        let inputs = [
            "forall i/Invitation exists p/Person i.sender = p",
            "x in C and (y isa D or not z = w)",
            "a = b ==> c <> d",
        ];
        for input in inputs {
            let e1 = parse(input).unwrap();
            let e2 = parse(&e1.to_string()).unwrap();
            assert_eq!(e1, e2, "{input}");
        }
    }
}
