//! Evaluation of assertion-language expressions against a KB.
//!
//! Closed expressions evaluate to a boolean; open queries are answered
//! by [`find`], which enumerates the instances of a class satisfying a
//! body — the "open first-order logic expressions over CML objects" of
//! §3.1. Quantifiers range over *believed* instances, closed under
//! specialization.
//!
//! Both entry points are generic over [`KbRead`], so the same
//! evaluator answers against the live KB (current belief) or against a
//! belief-time-pinned [`crate::kb::Snapshot`] — the server's
//! snapshot-isolated ASK path.

use super::ast::{Atom, Expr, Term};
use crate::error::{TelosError, TelosResult};
use crate::kb::KbRead;
use crate::prop::PropId;
use std::collections::HashMap;

/// A variable environment: bindings introduced by quantifiers (or by
/// the caller, for parameterized constraints).
pub type Env = HashMap<String, PropId>;

fn resolve<V: KbRead>(kb: &V, env: &Env, t: &Term) -> TelosResult<PropId> {
    if let Some(&id) = env.get(&t.0) {
        return Ok(id);
    }
    kb.lookup(&t.0)
        .ok_or_else(|| TelosError::Assertion(format!("unbound identifier `{}`", t.0)))
}

fn eval_atom<V: KbRead>(kb: &V, env: &Env, atom: &Atom) -> TelosResult<bool> {
    Ok(match atom {
        Atom::In(x, c) => {
            let x = resolve(kb, env, x)?;
            let c = resolve(kb, env, c)?;
            kb.is_instance_of(x, c)
        }
        Atom::Isa(c, d) => {
            let c = resolve(kb, env, c)?;
            let d = resolve(kb, env, d)?;
            c == d || kb.isa_ancestors(c).contains(&d)
        }
        Atom::Eq(x, y) => resolve(kb, env, x)? == resolve(kb, env, y)?,
        Atom::Ne(x, y) => resolve(kb, env, x)? != resolve(kb, env, y)?,
        Atom::HasAttr(x, label, y) => {
            let x = resolve(kb, env, x)?;
            let y = resolve(kb, env, y)?;
            kb.attr_values(x, label).contains(&y)
        }
        Atom::AttrDefined(x, label) => {
            let x = resolve(kb, env, x)?;
            !kb.attr_values(x, label).is_empty()
        }
    })
}

/// Evaluates a closed expression (given `env` for any caller-supplied
/// bindings).
pub fn eval<V: KbRead>(kb: &V, expr: &Expr, env: &mut Env) -> TelosResult<bool> {
    match expr {
        Expr::True => Ok(true),
        Expr::Atom(a) => eval_atom(kb, env, a),
        Expr::Not(e) => Ok(!eval(kb, e, env)?),
        Expr::And(a, b) => Ok(eval(kb, a, env)? && eval(kb, b, env)?),
        Expr::Or(a, b) => Ok(eval(kb, a, env)? || eval(kb, b, env)?),
        Expr::Implies(a, b) => Ok(!eval(kb, a, env)? || eval(kb, b, env)?),
        Expr::Forall(v, class, body) => {
            let class_id = kb
                .lookup(class)
                .ok_or_else(|| TelosError::Assertion(format!("unknown class `{class}`")))?;
            let shadowed = env.get(v).copied();
            for inst in kb.all_instances_of(class_id) {
                env.insert(v.clone(), inst);
                let ok = eval(kb, body, env)?;
                if !ok {
                    restore(env, v, shadowed);
                    return Ok(false);
                }
            }
            restore(env, v, shadowed);
            Ok(true)
        }
        Expr::Exists(v, class, body) => {
            let class_id = kb
                .lookup(class)
                .ok_or_else(|| TelosError::Assertion(format!("unknown class `{class}`")))?;
            let shadowed = env.get(v).copied();
            for inst in kb.all_instances_of(class_id) {
                env.insert(v.clone(), inst);
                let ok = eval(kb, body, env)?;
                if ok {
                    restore(env, v, shadowed);
                    return Ok(true);
                }
            }
            restore(env, v, shadowed);
            Ok(false)
        }
    }
}

fn restore(env: &mut Env, v: &str, shadowed: Option<PropId>) {
    match shadowed {
        Some(old) => {
            env.insert(v.to_string(), old);
        }
        None => {
            env.remove(v);
        }
    }
}

/// Open query: the believed instances `x` of `class` for which `body`
/// holds with `var ↦ x`.
pub fn find<V: KbRead>(kb: &V, var: &str, class: &str, body: &Expr) -> TelosResult<Vec<PropId>> {
    let class_id = kb
        .lookup(class)
        .ok_or_else(|| TelosError::Assertion(format!("unknown class `{class}`")))?;
    let mut out = Vec::new();
    let mut env = Env::new();
    for inst in kb.all_instances_of(class_id) {
        env.insert(var.to_string(), inst);
        if eval(kb, body, &mut env)? {
            out.push(inst);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::parser::parse;
    use crate::kb::Kb;

    /// The §2.1 document world: Papers with Invitation and Minutes
    /// subclasses, senders and receivers.
    fn scenario_kb() -> Kb {
        let mut kb = Kb::new();
        let paper = kb.individual("Paper").unwrap();
        let invitation = kb.individual("Invitation").unwrap();
        let minutes = kb.individual("Minutes").unwrap();
        let person = kb.individual("Person").unwrap();
        kb.specialize(invitation, paper).unwrap();
        kb.specialize(minutes, paper).unwrap();
        kb.put_attr(invitation, "sender", person).unwrap();
        let maria = kb.individual("maria").unwrap();
        let joe = kb.individual("joe").unwrap();
        kb.instantiate(maria, person).unwrap();
        kb.instantiate(joe, person).unwrap();
        let inv1 = kb.individual("inv1").unwrap();
        let inv2 = kb.individual("inv2").unwrap();
        kb.instantiate(inv1, invitation).unwrap();
        kb.instantiate(inv2, invitation).unwrap();
        let sender_class = kb.find_attr_class(inv1, "sender").unwrap();
        kb.put_attr_typed(inv1, "sender", maria, sender_class)
            .unwrap();
        kb.put_attr_typed(inv2, "sender", joe, sender_class)
            .unwrap();
        kb
    }

    fn holds(kb: &Kb, src: &str) -> bool {
        eval(kb, &parse(src).unwrap(), &mut Env::new()).unwrap()
    }

    #[test]
    fn atoms_evaluate() {
        let kb = scenario_kb();
        assert!(holds(&kb, "inv1 in Invitation"));
        assert!(holds(&kb, "inv1 in Paper"), "inheritance");
        assert!(!holds(&kb, "maria in Paper"));
        assert!(holds(&kb, "Invitation isa Paper"));
        assert!(holds(&kb, "Invitation isa Invitation"), "reflexive");
        assert!(!holds(&kb, "Paper isa Invitation"));
        assert!(holds(&kb, "inv1.sender = maria"));
        assert!(!holds(&kb, "inv1.sender = joe"));
        assert!(holds(&kb, "inv1.sender defined"));
        assert!(holds(&kb, "maria <> joe"));
        assert!(holds(&kb, "maria = maria"));
    }

    #[test]
    fn quantifiers_evaluate() {
        let kb = scenario_kb();
        assert!(holds(&kb, "forall i/Invitation i.sender defined"));
        assert!(holds(
            &kb,
            "forall i/Invitation exists p/Person i.sender = p"
        ));
        assert!(holds(&kb, "exists i/Invitation i.sender = maria"));
        assert!(!holds(&kb, "forall i/Invitation i.sender = maria"));
        assert!(
            !holds(&kb, "exists m/Minutes m in Paper"),
            "no Minutes instances"
        );
    }

    #[test]
    fn forall_over_superclass_sees_subclass_instances() {
        let kb = scenario_kb();
        // All Papers are Invitations right now — the assumption whose
        // failure drives fig 2-4.
        assert!(holds(&kb, "forall p/Paper p in Invitation"));
    }

    #[test]
    fn connectives() {
        let kb = scenario_kb();
        assert!(holds(&kb, "inv1 in Invitation and inv2 in Invitation"));
        assert!(holds(&kb, "inv1 in Minutes or inv1 in Invitation"));
        assert!(holds(&kb, "not inv1 in Minutes"));
        assert!(holds(&kb, "inv1 in Minutes ==> maria = joe"), "vacuous");
        assert!(holds(&kb, "true"));
    }

    #[test]
    fn variable_shadowing_restores() {
        let kb = scenario_kb();
        let mut env = Env::new();
        let maria = kb.lookup("maria").unwrap();
        env.insert("p".into(), maria);
        // The quantifier shadows p, then the binding is restored.
        let e = parse("exists p/Invitation p.sender defined").unwrap();
        assert!(eval(&kb, &e, &mut env).unwrap());
        assert_eq!(env.get("p"), Some(&maria));
    }

    #[test]
    fn find_answers_open_queries() {
        let kb = scenario_kb();
        let body = parse("i.sender = maria").unwrap();
        let hits = find(&kb, "i", "Invitation", &body).unwrap();
        assert_eq!(hits, vec![kb.lookup("inv1").unwrap()]);
        let all = find(&kb, "i", "Paper", &parse("true").unwrap()).unwrap();
        assert_eq!(all.len(), 2, "both invitations are papers");
    }

    #[test]
    fn unbound_identifier_is_error() {
        let kb = scenario_kb();
        let e = parse("ghost in Paper").unwrap();
        assert!(matches!(
            eval(&kb, &e, &mut Env::new()),
            Err(TelosError::Assertion(_))
        ));
        let e = parse("forall x/NoSuchClass x = x").unwrap();
        assert!(eval(&kb, &e, &mut Env::new()).is_err());
    }
}
