//! Sort checking of assertion expressions.
//!
//! An assertion is *sort-correct* when every quantifier ranges over a
//! known class and every attribute access uses a declared label. The
//! vocabulary is supplied by the caller as predicates, so the check
//! works against a live KB, a snapshot, or a script being linted
//! before anything exists.

use super::ast::{Atom, Expr};

/// One sort problem found in an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SortIssue {
    /// A quantifier ranges over a class the vocabulary does not know.
    UnknownClass {
        /// The quantified variable.
        var: String,
        /// The unknown range class.
        class: String,
    },
    /// An attribute access (`x.label = y` or `x.label defined`) uses a
    /// label no class declares.
    UnknownLabel {
        /// The term whose attribute is accessed.
        on: String,
        /// The undeclared label.
        label: String,
    },
}

impl std::fmt::Display for SortIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SortIssue::UnknownClass { var, class } => {
                write!(
                    f,
                    "quantifier `{var}/{class}` ranges over unknown class `{class}`"
                )
            }
            SortIssue::UnknownLabel { on, label } => {
                write!(
                    f,
                    "`{on}.{label}` uses undeclared attribute label `{label}`"
                )
            }
        }
    }
}

/// Checks `expr` against a vocabulary: `known_class` answers whether a
/// class name is declared, `known_label` whether an attribute label is
/// declared anywhere. Returns every issue, in syntax order.
pub fn sort_check(
    expr: &Expr,
    known_class: &dyn Fn(&str) -> bool,
    known_label: &dyn Fn(&str) -> bool,
) -> Vec<SortIssue> {
    let mut out = Vec::new();
    walk(expr, known_class, known_label, &mut out);
    out
}

fn walk(
    expr: &Expr,
    known_class: &dyn Fn(&str) -> bool,
    known_label: &dyn Fn(&str) -> bool,
    out: &mut Vec<SortIssue>,
) {
    match expr {
        Expr::Forall(v, c, b) | Expr::Exists(v, c, b) => {
            if !known_class(c) {
                out.push(SortIssue::UnknownClass {
                    var: v.clone(),
                    class: c.clone(),
                });
            }
            walk(b, known_class, known_label, out);
        }
        Expr::And(a, b) | Expr::Or(a, b) | Expr::Implies(a, b) => {
            walk(a, known_class, known_label, out);
            walk(b, known_class, known_label, out);
        }
        Expr::Not(a) => walk(a, known_class, known_label, out),
        Expr::Atom(Atom::HasAttr(x, l, _)) | Expr::Atom(Atom::AttrDefined(x, l)) => {
            if !known_label(l) {
                out.push(SortIssue::UnknownLabel {
                    on: x.0.clone(),
                    label: l.clone(),
                });
            }
        }
        Expr::Atom(_) | Expr::True => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::parse;

    #[test]
    fn clean_expression_has_no_issues() {
        let e = parse("forall p/Paper p.author defined").unwrap();
        let issues = sort_check(&e, &|c| c == "Paper", &|l| l == "author");
        assert!(issues.is_empty());
    }

    #[test]
    fn unknown_class_and_label_reported() {
        let e = parse("forall p/Ghost p.phantom defined").unwrap();
        let issues = sort_check(&e, &|_| false, &|_| false);
        assert_eq!(issues.len(), 2);
        assert!(matches!(&issues[0], SortIssue::UnknownClass { class, .. } if class == "Ghost"));
        assert!(matches!(&issues[1], SortIssue::UnknownLabel { label, .. } if label == "phantom"));
        assert!(issues[0].to_string().contains("Ghost"));
    }

    #[test]
    fn issues_found_under_every_connective() {
        let e = parse("not (exists x/Ghost (x.a defined and x.b = y))").unwrap();
        let issues = sort_check(&e, &|_| false, &|l| l == "a");
        assert_eq!(issues.len(), 2, "{issues:?}");
    }
}
