//! The logic-based assertion language of CML (§3.1).
//!
//! "Queries are built using (open or closed) first-order logic
//! expressions over CML objects. Since the same assertion language is
//! used in rules …, the inference engines are also capable of
//! evaluating rules." Constraint propositions point to objects
//! representing such expressions; here they are parsed ([`parser`]),
//! represented ([`ast`]) and evaluated ([`mod@eval`]) against a [`crate::Kb`].

pub mod ast;
pub mod eval;
pub mod parser;
pub mod sortck;

pub use ast::{Atom, Expr, Term};
pub use eval::{eval, find, Env};
pub use parser::parse;
pub use sortck::{sort_check, SortIssue};
