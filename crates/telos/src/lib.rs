#![warn(missing_docs)]

//! The CML/Telos **proposition processor** (paper §3.1).
//!
//! The knowledge base is a semantic network of quadruple propositions
//! `p = <x, l, y, t>`: node `x` has a link labelled `l` to node `y` at
//! time `t`, and the link itself is the object named `p`. Nodes are also
//! propositions (self-referential ones), classes are propositions, and
//! the CML axioms are attached to propositions — "enabling very flexible
//! modification and extension of the language".
//!
//! Modules:
//!
//! * [`symbols`] — interned labels and names;
//! * [`time`] — two-dimensional time (history/valid + belief/transaction),
//!   the Allen interval algebra \[ALLE83\] and an event calculus \[KS86\];
//! * [`prop`] — the proposition quadruple itself;
//! * [`kb`] — the proposition base with its four access paths, TELL /
//!   UNTELL, and typed retrieval;
//! * [`omega`] — the ω-level bootstrap (PROPOSITION, CLASS, the six
//!   predefined link classes, classification levels);
//! * [`axioms`] — the CML axioms (classification, specialization,
//!   aggregation/typing) as checkable judgements;
//! * [`assertion`] — the logic-based assertion language used by rule and
//!   constraint propositions;
//! * [`backend`] — physical representations of the proposition base
//!   (in-memory, and persistent on the `storage` crate);
//! * [`pvec`] / [`version`] — persistent chunked storage and immutable
//!   [`version::KbVersion`] captures, the basis of the server's MVCC
//!   read path (readers pin a version; the writer publishes new ones).

pub mod assertion;
pub mod axioms;
pub mod backend;
pub mod error;
pub mod kb;
pub mod omega;
pub mod prop;
pub mod pvec;
pub mod symbols;
pub mod time;
pub mod version;

pub use error::{TelosError, TelosResult};
pub use kb::{Kb, KbRead, Snapshot};
pub use prop::{PropId, Proposition};
pub use symbols::{Symbol, SymbolTable};
pub use time::interval::Interval;
pub use time::point::TimePoint;
pub use version::{KbVersion, PropStore};
