//! The proposition quadruple.

use crate::symbols::Symbol;
use crate::time::interval::Interval;

/// Identifier of a proposition — the `p` in `p = <x, l, y, t>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PropId(pub u32);

impl PropId {
    /// Index into dense per-proposition arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A CML proposition `p = <x, l, y, t>` plus its belief time.
///
/// * `source` (`x`) and `dest` (`y`) are other propositions — nodes are
///   self-referential propositions, so the network is closed;
/// * `label` (`l`) is an interned string;
/// * `history` (`t`) is the *history time*: the interval during which
///   the asserted relationship holds in the modelled world (the paper's
///   `version17`);
/// * `belief` is the *belief time*: the interval during which the KB
///   believes the proposition (the paper's `21-Sep-1987+`). UNTELL
///   closes this interval; propositions are never destroyed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proposition {
    /// The proposition's own identifier (it is itself an object).
    pub id: PropId,
    /// Source node `x`.
    pub source: PropId,
    /// Link label `l`.
    pub label: Symbol,
    /// Destination node `y`.
    pub dest: PropId,
    /// History (valid) time `t`.
    pub history: Interval,
    /// Belief (transaction) time.
    pub belief: Interval,
}

impl Proposition {
    /// True if the proposition is a node: it denotes an individual
    /// rather than a link (source and destination are itself).
    pub fn is_individual(&self) -> bool {
        self.source == self.id && self.dest == self.id
    }

    /// True if the KB still believes the proposition (belief interval
    /// open towards the future).
    pub fn is_believed(&self) -> bool {
        self.belief.is_open_ended()
    }

    /// True if the proposition was believed at belief tick `t`.
    pub fn believed_at(&self, t: i64) -> bool {
        self.belief.contains_point(t)
    }

    /// True if the proposition's history time covers tick `t`.
    pub fn valid_at(&self, t: i64) -> bool {
        self.history.contains_point(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::interval::Interval;

    fn prop(id: u32, src: u32, dst: u32) -> Proposition {
        Proposition {
            id: PropId(id),
            source: PropId(src),
            label: Symbol(0),
            dest: PropId(dst),
            history: Interval::always(),
            belief: Interval::from_tick(5),
        }
    }

    #[test]
    fn individual_detection() {
        assert!(prop(3, 3, 3).is_individual());
        assert!(!prop(3, 3, 4).is_individual());
        assert!(!prop(3, 2, 3).is_individual());
    }

    #[test]
    fn belief_lifecycle() {
        let mut p = prop(1, 1, 1);
        assert!(p.is_believed());
        assert!(p.believed_at(5));
        assert!(p.believed_at(100));
        assert!(!p.believed_at(4));
        p.belief = p.belief.closed_at(9).unwrap();
        assert!(!p.is_believed());
        assert!(p.believed_at(8));
        assert!(!p.believed_at(9));
    }

    #[test]
    fn validity_uses_history_time() {
        let mut p = prop(1, 1, 1);
        p.history = Interval::between(10, 20).unwrap();
        assert!(p.valid_at(10));
        assert!(p.valid_at(19));
        assert!(!p.valid_at(20));
        assert!(!p.valid_at(9));
    }
}
