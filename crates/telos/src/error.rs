//! Error type of the proposition processor.

use crate::prop::PropId;
use std::fmt;

/// Errors raised by the Telos kernel.
#[derive(Debug)]
pub enum TelosError {
    /// A proposition id does not denote a live proposition.
    UnknownProposition(PropId),
    /// A name does not denote any individual.
    UnknownName(String),
    /// Attempted to create something that already exists.
    AlreadyExists(String),
    /// A CML axiom was violated; the string names the axiom.
    AxiomViolation(String),
    /// An attribute was told for which no attribute class exists on any
    /// class of the owner (strict aggregation).
    NoAttributeClass {
        /// Display name of the owning object.
        owner: String,
        /// The attribute label.
        label: String,
    },
    /// The assertion language rejected an expression.
    Assertion(String),
    /// An interval was constructed with end before start.
    BadInterval(String),
    /// The persistent backend failed.
    Storage(storage::StorageError),
    /// An operation requires a proposition that is no longer believed.
    NotBelieved(PropId),
}

/// Convenient alias used throughout the crate.
pub type TelosResult<T> = Result<T, TelosError>;

impl fmt::Display for TelosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelosError::UnknownProposition(id) => write!(f, "unknown proposition {id:?}"),
            TelosError::UnknownName(n) => write!(f, "unknown name `{n}`"),
            TelosError::AlreadyExists(n) => write!(f, "`{n}` already exists"),
            TelosError::AxiomViolation(a) => write!(f, "CML axiom violated: {a}"),
            TelosError::NoAttributeClass { owner, label } => {
                write!(f, "no attribute class `{label}` on any class of `{owner}`")
            }
            TelosError::Assertion(m) => write!(f, "assertion error: {m}"),
            TelosError::BadInterval(m) => write!(f, "bad interval: {m}"),
            TelosError::Storage(e) => write!(f, "storage error: {e}"),
            TelosError::NotBelieved(id) => write!(f, "proposition {id:?} is no longer believed"),
        }
    }
}

impl std::error::Error for TelosError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TelosError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<storage::StorageError> for TelosError {
    fn from(e: storage::StorageError) -> Self {
        TelosError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(TelosError::UnknownName("Paper".into())
            .to_string()
            .contains("Paper"));
        assert!(TelosError::NoAttributeClass {
            owner: "inv1".into(),
            label: "sender".into()
        }
        .to_string()
        .contains("sender"));
        assert!(TelosError::AxiomViolation("isa-cycle".into())
            .to_string()
            .contains("isa-cycle"));
    }
}
