//! An assumption-based truth maintenance system \[DEKL86\].
//!
//! Where the JTMS maintains a *single* current context, the ATMS labels
//! every node with the set of minimal, consistent assumption
//! environments under which it holds — so alternative design versions
//! (fig 3-4's two coexisting implementations) are all available at
//! once, and switching contexts is free.
//!
//! Environments are bit sets over assumption ids. A node's label is
//! kept minimal (no environment subsumes another) and consistent (no
//! environment is a superset of a nogood).

use std::collections::VecDeque;
use std::fmt;

/// Identifier of an ATMS node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtmsNodeId(pub u32);

/// An environment: a set of assumptions, as a dynamic bit set.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Env {
    words: Vec<u64>,
}

impl Env {
    /// The empty environment.
    pub fn empty() -> Env {
        Env::default()
    }

    /// The singleton environment `{a}`.
    pub fn of(a: usize) -> Env {
        let mut e = Env::empty();
        e.insert(a);
        e
    }

    /// Adds assumption index `a`.
    pub fn insert(&mut self, a: usize) {
        let w = a / 64;
        if self.words.len() <= w {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << (a % 64);
    }

    /// Membership test.
    pub fn contains(&self, a: usize) -> bool {
        self.words
            .get(a / 64)
            .is_some_and(|w| w & (1 << (a % 64)) != 0)
    }

    /// Union of two environments.
    pub fn union(&self, other: &Env) -> Env {
        let mut words = vec![0u64; self.words.len().max(other.words.len())];
        for (i, w) in words.iter_mut().enumerate() {
            *w = self.words.get(i).copied().unwrap_or(0) | other.words.get(i).copied().unwrap_or(0);
        }
        // Normalize: trim trailing zero words so Eq/Hash are canonical.
        while words.last() == Some(&0) {
            words.pop();
        }
        Env { words }
    }

    /// True if `self ⊆ other`.
    pub fn subset_of(&self, other: &Env) -> bool {
        self.words.iter().enumerate().all(|(i, w)| {
            let o = other.words.get(i).copied().unwrap_or(0);
            w & !o == 0
        })
    }

    /// Number of assumptions in the environment.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True for the empty environment.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The assumption indices, ascending.
    pub fn members(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (i, &w) in self.words.iter().enumerate() {
            for b in 0..64 {
                if w & (1 << b) != 0 {
                    out.push(i * 64 + b);
                }
            }
        }
        out
    }
}

impl fmt::Display for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.members().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "A{a}")?;
        }
        write!(f, "}}")
    }
}

#[derive(Debug, Clone)]
struct AtmsJust {
    antecedents: Vec<AtmsNodeId>,
    consequent: AtmsNodeId,
}

#[derive(Debug, Clone)]
struct AtmsNode {
    datum: String,
    /// Minimal consistent environments in which the node holds.
    label: Vec<Env>,
    /// Index into the assumption table if this node is an assumption.
    assumption: Option<usize>,
    is_contradiction: bool,
}

/// The assumption-based TMS.
#[derive(Debug, Default)]
pub struct Atms {
    nodes: Vec<AtmsNode>,
    justs: Vec<AtmsJust>,
    /// For each node, the justifications it feeds as an antecedent —
    /// the worklist fan-out for incremental label propagation.
    antecedent_index: Vec<Vec<usize>>,
    assumptions: Vec<AtmsNodeId>,
    nogoods: Vec<Env>,
    /// Statistics: label update operations (for the E-3 bench).
    pub label_updates: u64,
}

impl Atms {
    /// An empty ATMS.
    pub fn new() -> Self {
        Atms::default()
    }

    /// Creates an ordinary node (empty label).
    pub fn node(&mut self, datum: impl Into<String>) -> AtmsNodeId {
        let id = AtmsNodeId(self.nodes.len() as u32);
        self.nodes.push(AtmsNode {
            datum: datum.into(),
            label: Vec::new(),
            assumption: None,
            is_contradiction: false,
        });
        self.antecedent_index.push(Vec::new());
        id
    }

    /// Creates an assumption node: label `{{A}}`.
    pub fn assumption(&mut self, datum: impl Into<String>) -> AtmsNodeId {
        let id = self.node(datum);
        let a = self.assumptions.len();
        self.assumptions.push(id);
        let node = &mut self.nodes[id.0 as usize];
        node.assumption = Some(a);
        node.label = vec![Env::of(a)];
        id
    }

    /// Creates a contradiction node: every environment reaching it
    /// becomes a nogood.
    pub fn contradiction(&mut self, datum: impl Into<String>) -> AtmsNodeId {
        let id = self.node(datum);
        self.nodes[id.0 as usize].is_contradiction = true;
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node's datum.
    pub fn datum(&self, id: AtmsNodeId) -> &str {
        &self.nodes[id.0 as usize].datum
    }

    /// The node's label (minimal consistent environments).
    pub fn label(&self, id: AtmsNodeId) -> &[Env] {
        &self.nodes[id.0 as usize].label
    }

    /// True if the node holds in *some* consistent environment.
    pub fn believed_somewhere(&self, id: AtmsNodeId) -> bool {
        !self.nodes[id.0 as usize].label.is_empty()
    }

    /// True if the node holds under environment `env` (some label
    /// environment is a subset of `env`) and `env` is consistent.
    pub fn holds_in(&self, id: AtmsNodeId, env: &Env) -> bool {
        self.consistent(env)
            && self.nodes[id.0 as usize]
                .label
                .iter()
                .any(|l| l.subset_of(env))
    }

    /// True if `env` contains no nogood.
    pub fn consistent(&self, env: &Env) -> bool {
        !self.nogoods.iter().any(|ng| ng.subset_of(env))
    }

    /// The recorded nogoods.
    pub fn nogoods(&self) -> &[Env] {
        &self.nogoods
    }

    /// Adds a justification `antecedents ⊢ consequent` and propagates
    /// labels. An empty antecedent list makes the consequent a premise
    /// (label `{{}}`).
    pub fn justify(&mut self, consequent: AtmsNodeId, antecedents: &[AtmsNodeId]) {
        let ji = self.justs.len();
        self.justs.push(AtmsJust {
            antecedents: antecedents.to_vec(),
            consequent,
        });
        for a in antecedents {
            self.antecedent_index[a.0 as usize].push(ji);
        }
        self.propagate_from(ji);
    }

    /// Incremental label propagation: reprocess the given justification
    /// and, whenever a consequent's label grows, the justifications it
    /// feeds — a worklist walk over `antecedent_index` instead of a
    /// fixpoint relaxation over every justification. Nogood pruning
    /// needs no re-derivation pass: any environment derivable from a
    /// pruned one is a superset of the nogood and thus inconsistent.
    fn propagate_from(&mut self, start: usize) {
        let mut work = VecDeque::from([start]);
        while let Some(j) = work.pop_front() {
            let just = self.justs[j].clone();
            // Combine antecedent labels: cross-product unions.
            let mut combined = vec![Env::empty()];
            for &a in &just.antecedents {
                let alabel = self.nodes[a.0 as usize].label.clone();
                let mut next = Vec::new();
                for c in &combined {
                    for l in &alabel {
                        next.push(c.union(l));
                    }
                }
                combined = next;
                if combined.is_empty() {
                    break;
                }
            }
            let mut grew = false;
            for env in combined {
                if !self.consistent(&env) {
                    continue;
                }
                if self.nodes[just.consequent.0 as usize].is_contradiction {
                    self.add_nogood(env);
                } else if self.add_to_label(just.consequent, env) {
                    grew = true;
                }
            }
            if grew {
                work.extend(
                    self.antecedent_index[just.consequent.0 as usize]
                        .iter()
                        .copied(),
                );
            }
        }
    }

    /// Inserts `env` into the node's label if no existing environment
    /// subsumes it; removes environments it subsumes. Returns whether
    /// the label changed.
    fn add_to_label(&mut self, id: AtmsNodeId, env: Env) -> bool {
        self.label_updates += 1;
        let label = &mut self.nodes[id.0 as usize].label;
        if label.iter().any(|l| l.subset_of(&env)) {
            return false;
        }
        label.retain(|l| !env.subset_of(l));
        label.push(env);
        true
    }

    /// Records a nogood; prunes all labels of environments containing
    /// it. Returns whether it was new.
    fn add_nogood(&mut self, env: Env) -> bool {
        self.label_updates += 1;
        if self.nogoods.iter().any(|ng| ng.subset_of(&env)) {
            return false;
        }
        self.nogoods.retain(|ng| !env.subset_of(ng));
        for node in &mut self.nodes {
            node.label.retain(|l| !env.subset_of(l));
        }
        self.nogoods.push(env);
        true
    }

    /// Builds an environment from assumption node ids.
    pub fn env_of(&self, assumptions: &[AtmsNodeId]) -> Env {
        let mut env = Env::empty();
        for &a in assumptions {
            if let Some(idx) = self.nodes[a.0 as usize].assumption {
                env.insert(idx);
            }
        }
        env
    }

    /// All nodes holding under `env`, for context inspection.
    pub fn context(&self, env: &Env) -> Vec<AtmsNodeId> {
        (0..self.nodes.len() as u32)
            .map(AtmsNodeId)
            .filter(|&n| self.holds_in(n, env))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_basics() {
        let mut e = Env::empty();
        assert!(e.is_empty());
        e.insert(3);
        e.insert(70);
        assert!(e.contains(3) && e.contains(70) && !e.contains(4));
        assert_eq!(e.len(), 2);
        assert_eq!(e.members(), vec![3, 70]);
        assert_eq!(e.to_string(), "{A3,A70}");
        let f = Env::of(3);
        assert!(f.subset_of(&e));
        assert!(!e.subset_of(&f));
        assert_eq!(f.union(&Env::of(70)), e);
    }

    #[test]
    fn env_union_is_canonical() {
        // Union with a high-index env then subsetting back must not
        // leave trailing words that break equality.
        let hi = Env::of(100);
        let lo = Env::of(1);
        let u = hi.union(&lo);
        let same = lo.union(&hi);
        assert_eq!(u, same);
    }

    #[test]
    fn assumptions_have_singleton_labels() {
        let mut atms = Atms::new();
        let a = atms.assumption("a");
        assert_eq!(atms.label(a).len(), 1);
        assert_eq!(atms.label(a)[0].len(), 1);
    }

    #[test]
    fn premise_holds_everywhere() {
        let mut atms = Atms::new();
        let p = atms.node("premise");
        atms.justify(p, &[]);
        assert_eq!(atms.label(p), &[Env::empty()]);
        assert!(atms.holds_in(p, &Env::empty()));
        assert!(atms.holds_in(p, &Env::of(5)));
    }

    #[test]
    fn labels_propagate_through_justifications() {
        let mut atms = Atms::new();
        let a = atms.assumption("a");
        let b = atms.assumption("b");
        let c = atms.node("c");
        atms.justify(c, &[a, b]);
        assert_eq!(atms.label(c).len(), 1);
        assert_eq!(atms.label(c)[0], atms.env_of(&[a, b]));
        assert!(atms.holds_in(c, &atms.env_of(&[a, b])));
        assert!(!atms.holds_in(c, &atms.env_of(&[a])));
    }

    #[test]
    fn labels_stay_minimal() {
        let mut atms = Atms::new();
        let a = atms.assumption("a");
        let b = atms.assumption("b");
        let c = atms.node("c");
        atms.justify(c, &[a, b]); // {a,b}
        atms.justify(c, &[a]); // {a} subsumes {a,b}
        assert_eq!(atms.label(c).len(), 1);
        assert_eq!(atms.label(c)[0], atms.env_of(&[a]));
    }

    #[test]
    fn alternative_versions_coexist() {
        // Fig 3-4: two alternative implementations under different
        // choice assumptions, both labeled simultaneously.
        let mut atms = Atms::new();
        let surrogate = atms.assumption("choice: surrogate keys");
        let associative = atms.assumption("choice: associative keys");
        let impl1 = atms.node("InvitationRel v1");
        let impl2 = atms.node("InvitationRel v2");
        atms.justify(impl1, &[surrogate]);
        atms.justify(impl2, &[associative]);
        assert!(atms.believed_somewhere(impl1));
        assert!(atms.believed_somewhere(impl2));
        let ctx1 = atms.env_of(&[surrogate]);
        assert!(atms.holds_in(impl1, &ctx1));
        assert!(!atms.holds_in(impl2, &ctx1));
    }

    #[test]
    fn nogood_prunes_labels_and_contexts() {
        let mut atms = Atms::new();
        let assoc = atms.assumption("associative-keys");
        let minutes = atms.assumption("map-minutes");
        let bad = atms.contradiction("key-clash");
        let derived = atms.node("normalized-rel");
        atms.justify(derived, &[assoc, minutes]);
        assert!(atms.believed_somewhere(derived));
        atms.justify(bad, &[assoc, minutes]);
        // {assoc, minutes} is now a nogood: derived loses its label.
        assert!(!atms.believed_somewhere(derived));
        assert!(!atms.consistent(&atms.env_of(&[assoc, minutes])));
        assert!(atms.consistent(&atms.env_of(&[assoc])));
        assert_eq!(atms.nogoods().len(), 1);
    }

    #[test]
    fn nogood_blocks_future_labels() {
        let mut atms = Atms::new();
        let a = atms.assumption("a");
        let b = atms.assumption("b");
        let bad = atms.contradiction("bad");
        atms.justify(bad, &[a, b]);
        let c = atms.node("c");
        atms.justify(c, &[a, b]);
        assert!(!atms.believed_somewhere(c), "label born dead");
        // But a weaker justification works.
        atms.justify(c, &[a]);
        assert!(atms.holds_in(c, &atms.env_of(&[a])));
    }

    #[test]
    fn chained_derivation_unions_environments() {
        let mut atms = Atms::new();
        let a = atms.assumption("a");
        let b = atms.assumption("b");
        let mid = atms.node("mid");
        let top = atms.node("top");
        atms.justify(mid, &[a]);
        atms.justify(top, &[mid, b]);
        assert_eq!(atms.label(top), &[atms.env_of(&[a, b])]);
    }

    #[test]
    fn context_lists_holding_nodes() {
        let mut atms = Atms::new();
        let a = atms.assumption("a");
        let b = atms.assumption("b");
        let c = atms.node("c");
        atms.justify(c, &[a]);
        let ctx = atms.context(&atms.env_of(&[a]));
        assert!(ctx.contains(&a));
        assert!(ctx.contains(&c));
        assert!(!ctx.contains(&b));
    }

    #[test]
    fn disjunctive_labels() {
        let mut atms = Atms::new();
        let a = atms.assumption("a");
        let b = atms.assumption("b");
        let c = atms.node("c");
        atms.justify(c, &[a]);
        atms.justify(c, &[b]);
        assert_eq!(atms.label(c).len(), 2);
        assert!(atms.holds_in(c, &atms.env_of(&[a])));
        assert!(atms.holds_in(c, &atms.env_of(&[b])));
    }
}
