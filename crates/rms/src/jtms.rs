//! A justification-based truth maintenance system \[DOYL79\].
//!
//! Nodes carry IN/OUT labels. A justification `(in-list, out-list) ⊢
//! consequent` supports its consequent when every in-list node is IN
//! and every out-list node is OUT. Assumptions are nodes believed when
//! *enabled*. Labels are computed by grounded fixpoint from enabled
//! assumptions and premise justifications; retracting an assumption
//! (selective backtracking, fig 2-4) relabels the network, taking all
//! its consequences OUT in one propagation.
//!
//! Contradiction handling: when a contradiction node comes IN,
//! [`Jtms::backtrack`] performs dependency-directed backtracking —
//! finds the assumptions underlying the contradiction's support, picks
//! the most recent as culprit, retracts it and records the set as a
//! nogood so the same combination is not re-enabled blindly.

use std::collections::{HashSet, VecDeque};
use std::fmt;

/// Identifier of a TMS node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JtmsNodeId(pub u32);

/// Belief status of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Label {
    /// Believed: has well-founded support.
    In,
    /// Not believed.
    Out,
}

#[derive(Debug, Clone)]
struct Justification {
    in_list: Vec<JtmsNodeId>,
    out_list: Vec<JtmsNodeId>,
    consequent: JtmsNodeId,
}

#[derive(Debug, Clone)]
struct Node {
    datum: String,
    label: Label,
    is_assumption: bool,
    enabled: bool,
    is_contradiction: bool,
}

/// The justification-based TMS.
#[derive(Debug, Default)]
pub struct Jtms {
    nodes: Vec<Node>,
    justs: Vec<Justification>,
    /// For each node, the justifications it appears in as an in-list
    /// antecedent (one entry per occurrence) — the worklist fan-out.
    in_index: Vec<Vec<usize>>,
    /// Whether any justification carries a non-empty out-list. While
    /// false the network is monotone and labeling is incremental; the
    /// first non-monotonic justification switches every later change
    /// to the full grounded fixpoint.
    has_out_lists: bool,
    /// Recorded nogoods: assumption sets that led to contradictions.
    nogoods: Vec<Vec<JtmsNodeId>>,
    /// Statistics: label propagation rounds (for the E-3 bench).
    pub propagations: u64,
}

impl Jtms {
    /// An empty network.
    pub fn new() -> Self {
        Jtms::default()
    }

    /// Creates an ordinary node (OUT until justified).
    pub fn node(&mut self, datum: impl Into<String>) -> JtmsNodeId {
        let id = JtmsNodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            datum: datum.into(),
            label: Label::Out,
            is_assumption: false,
            enabled: false,
            is_contradiction: false,
        });
        self.in_index.push(Vec::new());
        id
    }

    /// Creates an assumption node, initially enabled. A fresh node is
    /// not yet referenced by any justification, so enabling it cannot
    /// affect other labels: IN directly, no propagation.
    pub fn assumption(&mut self, datum: impl Into<String>) -> JtmsNodeId {
        let id = self.node(datum);
        self.nodes[id.0 as usize].is_assumption = true;
        self.nodes[id.0 as usize].enabled = true;
        self.nodes[id.0 as usize].label = Label::In;
        id
    }

    /// Creates a contradiction node: when IN, the state is inconsistent.
    pub fn contradiction(&mut self, datum: impl Into<String>) -> JtmsNodeId {
        let id = self.node(datum);
        self.nodes[id.0 as usize].is_contradiction = true;
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node's datum.
    pub fn datum(&self, id: JtmsNodeId) -> &str {
        &self.nodes[id.0 as usize].datum
    }

    /// Current label.
    pub fn label(&self, id: JtmsNodeId) -> Label {
        self.nodes[id.0 as usize].label
    }

    /// True if the node is currently IN.
    pub fn is_in(&self, id: JtmsNodeId) -> bool {
        self.label(id) == Label::In
    }

    /// Adds a justification: `consequent` holds if all of `in_list` are
    /// IN and all of `out_list` are OUT. An empty justification makes
    /// the consequent a premise.
    pub fn justify(
        &mut self,
        consequent: JtmsNodeId,
        in_list: &[JtmsNodeId],
        out_list: &[JtmsNodeId],
    ) {
        let ji = self.justs.len();
        self.justs.push(Justification {
            in_list: in_list.to_vec(),
            out_list: out_list.to_vec(),
            consequent,
        });
        for n in in_list {
            self.in_index[n.0 as usize].push(ji);
        }
        if !out_list.is_empty() {
            self.has_out_lists = true;
        }
        if self.has_out_lists {
            self.relabel();
        } else {
            // Monotone network: adding a justification can only turn
            // labels IN, starting from the one just added.
            self.propagations += 1;
            if self.justs[ji]
                .in_list
                .iter()
                .all(|n| self.nodes[n.0 as usize].label == Label::In)
            {
                self.set_in_and_cascade(consequent);
            }
        }
    }

    /// Enables a (previously retracted) assumption.
    pub fn enable(&mut self, id: JtmsNodeId) {
        let n = &mut self.nodes[id.0 as usize];
        debug_assert!(n.is_assumption, "enable on non-assumption");
        n.enabled = true;
        if self.has_out_lists {
            self.relabel();
        } else {
            self.propagations += 1;
            self.set_in_and_cascade(id);
        }
    }

    /// Retracts an assumption: the selective-backtracking primitive.
    pub fn retract(&mut self, id: JtmsNodeId) {
        let n = &mut self.nodes[id.0 as usize];
        debug_assert!(n.is_assumption, "retract on non-assumption");
        n.enabled = false;
        if self.has_out_lists {
            self.relabel();
        } else {
            // Labels only shrink; one grounded closure from scratch is
            // O(V + E) with the antecedent counters.
            self.relabel_monotone();
        }
    }

    /// Sets `id` IN and closes monotonically over the justifications it
    /// feeds (worklist over `in_index`). Only sound while the network
    /// has no out-lists.
    fn set_in_and_cascade(&mut self, id: JtmsNodeId) {
        if self.nodes[id.0 as usize].label == Label::In {
            return;
        }
        self.nodes[id.0 as usize].label = Label::In;
        let mut queue = VecDeque::from([id]);
        while let Some(n) = queue.pop_front() {
            for i in 0..self.in_index[n.0 as usize].len() {
                let ji = self.in_index[n.0 as usize][i];
                let c = self.justs[ji].consequent;
                if self.nodes[c.0 as usize].label == Label::In {
                    continue;
                }
                if self.justs[ji]
                    .in_list
                    .iter()
                    .all(|m| self.nodes[m.0 as usize].label == Label::In)
                {
                    self.nodes[c.0 as usize].label = Label::In;
                    queue.push_back(c);
                }
            }
        }
    }

    /// Single-pass grounded closure for monotone (no out-list)
    /// networks: seed from enabled assumptions and zero-antecedent
    /// justifications, then drain a worklist with per-justification
    /// unsatisfied-antecedent counters. O(V + E).
    fn relabel_monotone(&mut self) {
        self.propagations += 1;
        let mut counts: Vec<usize> = self.justs.iter().map(|j| j.in_list.len()).collect();
        let mut label = vec![Label::Out; self.nodes.len()];
        let mut queue: VecDeque<JtmsNodeId> = VecDeque::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if n.is_assumption && n.enabled {
                label[i] = Label::In;
                queue.push_back(JtmsNodeId(i as u32));
            }
        }
        for (ji, j) in self.justs.iter().enumerate() {
            if counts[ji] == 0 && label[j.consequent.0 as usize] == Label::Out {
                label[j.consequent.0 as usize] = Label::In;
                queue.push_back(j.consequent);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &ji in &self.in_index[n.0 as usize] {
                counts[ji] -= 1;
                if counts[ji] == 0 {
                    let c = self.justs[ji].consequent;
                    if label[c.0 as usize] == Label::Out {
                        label[c.0 as usize] = Label::In;
                        queue.push_back(c);
                    }
                }
            }
        }
        for (n, l) in self.nodes.iter_mut().zip(&label) {
            n.label = *l;
        }
    }

    /// Grounded relabeling: start from enabled assumptions, then close
    /// monotonically under justifications, re-checking out-lists until
    /// a fixpoint of the whole two-phase step is reached. Networks with
    /// odd non-monotonic loops are resolved towards OUT (skeptically).
    fn relabel(&mut self) {
        // Iterate outer phase because out-list conditions depend on the
        // final labels: each outer round recomputes the grounded closure
        // assuming the previous round's labels for out-list tests.
        let mut prev: Vec<Label> = self.nodes.iter().map(|n| n.label).collect();
        for _round in 0..self.nodes.len().max(2) {
            self.propagations += 1;
            let mut label: Vec<Label> = self
                .nodes
                .iter()
                .map(|n| {
                    if n.is_assumption && n.enabled {
                        Label::In
                    } else {
                        Label::Out
                    }
                })
                .collect();
            // Monotone closure under justifications, with out-list
            // checked against the *previous* stable labels.
            let mut changed = true;
            while changed {
                changed = false;
                for j in &self.justs {
                    if label[j.consequent.0 as usize] == Label::In {
                        continue;
                    }
                    let ins_ok = j.in_list.iter().all(|n| label[n.0 as usize] == Label::In);
                    let outs_ok = j.out_list.iter().all(|n| prev[n.0 as usize] == Label::Out);
                    if ins_ok && outs_ok {
                        label[j.consequent.0 as usize] = Label::In;
                        changed = true;
                    }
                }
            }
            if label == prev {
                break;
            }
            prev = label;
        }
        for (n, l) in self.nodes.iter_mut().zip(&prev) {
            n.label = *l;
        }
    }

    /// The enabled assumptions underlying `id`'s current support
    /// (transitively, through IN justifications).
    pub fn supporting_assumptions(&self, id: JtmsNodeId) -> Vec<JtmsNodeId> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            if !seen.insert(cur) {
                continue;
            }
            let n = &self.nodes[cur.0 as usize];
            if n.is_assumption && n.enabled {
                out.push(cur);
                continue;
            }
            // Any satisfied justification contributes its in-list.
            for j in self.justs.iter().filter(|j| j.consequent == cur) {
                let ins_ok = j.in_list.iter().all(|&m| self.is_in(m));
                let outs_ok = j.out_list.iter().all(|&m| !self.is_in(m));
                if ins_ok && outs_ok {
                    stack.extend(j.in_list.iter().copied());
                }
            }
        }
        out.sort();
        out
    }

    /// All IN contradiction nodes.
    pub fn active_contradictions(&self) -> Vec<JtmsNodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_contradiction && n.label == Label::In)
            .map(|(i, _)| JtmsNodeId(i as u32))
            .collect()
    }

    /// Dependency-directed backtracking: while a contradiction is IN,
    /// find its supporting assumptions, record them as a nogood, and
    /// retract the most recently created one. Returns the retracted
    /// culprits in order. Gives up (returning what it did) if a
    /// contradiction has no assumption support — then it is premise-
    /// level and not resolvable by retraction.
    pub fn backtrack(&mut self) -> Vec<JtmsNodeId> {
        let mut culprits = Vec::new();
        while let Some(&contra) = self.active_contradictions().first() {
            let support = self.supporting_assumptions(contra);
            let Some(&culprit) = support.last() else {
                break; // premise contradiction: cannot retract anything
            };
            self.nogoods.push(support.clone());
            self.retract(culprit);
            culprits.push(culprit);
        }
        culprits
    }

    /// The recorded nogoods.
    pub fn nogoods(&self) -> &[Vec<JtmsNodeId>] {
        &self.nogoods
    }

    /// True if enabling exactly `assumptions` would repeat a recorded
    /// nogood (i.e. some nogood is a subset of it).
    pub fn violates_nogood(&self, assumptions: &[JtmsNodeId]) -> bool {
        let set: HashSet<_> = assumptions.iter().collect();
        self.nogoods
            .iter()
            .any(|ng| ng.iter().all(|a| set.contains(a)))
    }

    /// All IN nodes, for inspection.
    pub fn in_nodes(&self) -> Vec<JtmsNodeId> {
        (0..self.nodes.len() as u32)
            .map(JtmsNodeId)
            .filter(|&n| self.is_in(n))
            .collect()
    }
}

impl fmt::Display for Jtms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, n) in self.nodes.iter().enumerate() {
            writeln!(
                f,
                "{i:4} [{}] {}{}",
                if n.label == Label::In { "IN " } else { "OUT" },
                n.datum,
                if n.is_assumption {
                    if n.enabled {
                        " (assumption)"
                    } else {
                        " (retracted)"
                    }
                } else if n.is_contradiction {
                    " (contradiction)"
                } else {
                    ""
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn premise_justification_makes_node_in() {
        let mut tms = Jtms::new();
        let n = tms.node("fact");
        assert!(!tms.is_in(n));
        tms.justify(n, &[], &[]);
        assert!(tms.is_in(n));
    }

    #[test]
    fn chain_propagation() {
        let mut tms = Jtms::new();
        let a = tms.assumption("a");
        let b = tms.node("b");
        let c = tms.node("c");
        tms.justify(b, &[a], &[]);
        tms.justify(c, &[b], &[]);
        assert!(tms.is_in(c));
        tms.retract(a);
        assert!(!tms.is_in(b));
        assert!(!tms.is_in(c));
        tms.enable(a);
        assert!(tms.is_in(c));
    }

    #[test]
    fn conjunction_needs_all_antecedents() {
        let mut tms = Jtms::new();
        let a = tms.assumption("a");
        let b = tms.assumption("b");
        let c = tms.node("c");
        tms.justify(c, &[a, b], &[]);
        assert!(tms.is_in(c));
        tms.retract(b);
        assert!(!tms.is_in(c));
    }

    #[test]
    fn disjunction_multiple_justifications() {
        let mut tms = Jtms::new();
        let a = tms.assumption("a");
        let b = tms.assumption("b");
        let c = tms.node("c");
        tms.justify(c, &[a], &[]);
        tms.justify(c, &[b], &[]);
        tms.retract(a);
        assert!(tms.is_in(c), "second justification still supports c");
        tms.retract(b);
        assert!(!tms.is_in(c));
    }

    #[test]
    fn no_circular_self_support() {
        // b ⊢ c and c ⊢ b must not levitate without ground support.
        let mut tms = Jtms::new();
        let b = tms.node("b");
        let c = tms.node("c");
        tms.justify(b, &[c], &[]);
        tms.justify(c, &[b], &[]);
        assert!(!tms.is_in(b));
        assert!(!tms.is_in(c));
        // Grounding via an assumption brings both in.
        let a = tms.assumption("a");
        tms.justify(b, &[a], &[]);
        assert!(tms.is_in(b) && tms.is_in(c));
    }

    #[test]
    fn nonmonotonic_justification() {
        // default: "use surrogate keys unless associative keys chosen".
        let mut tms = Jtms::new();
        let assoc = tms.assumption("associative-keys");
        tms.retract(assoc);
        let surrogate = tms.node("surrogate-keys");
        tms.justify(surrogate, &[], &[assoc]);
        assert!(tms.is_in(surrogate), "default holds while assoc is OUT");
        tms.enable(assoc);
        assert!(!tms.is_in(surrogate), "default defeated");
        tms.retract(assoc);
        assert!(tms.is_in(surrogate), "default reinstated");
    }

    #[test]
    fn backtracking_retracts_latest_culprit() {
        // The fig 2-4 situation: the key decision (later assumption)
        // conflicts with the Minutes mapping.
        let mut tms = Jtms::new();
        let move_down = tms.assumption("move-down-mapping");
        let assoc_keys = tms.assumption("associative-keys");
        let minutes = tms.assumption("map-minutes");
        let contra = tms.contradiction("key-not-unique");
        tms.justify(contra, &[assoc_keys, minutes], &[]);
        assert_eq!(tms.active_contradictions().len(), 1);
        let culprits = tms.backtrack();
        assert_eq!(culprits, vec![minutes], "latest assumption retracted");
        assert!(tms.active_contradictions().is_empty());
        assert!(tms.is_in(move_down), "unrelated decision survives");
        assert!(tms.is_in(assoc_keys));
        // The nogood is recorded.
        assert_eq!(tms.nogoods().len(), 1);
        assert!(tms.violates_nogood(&[assoc_keys, minutes]));
        assert!(!tms.violates_nogood(&[assoc_keys]));
    }

    #[test]
    fn backtracking_cascades_until_consistent() {
        let mut tms = Jtms::new();
        let a = tms.assumption("a");
        let b = tms.assumption("b");
        let c1 = tms.contradiction("c1");
        let c2 = tms.contradiction("c2");
        tms.justify(c1, &[b], &[]);
        tms.justify(c2, &[a], &[]);
        let culprits = tms.backtrack();
        assert_eq!(culprits.len(), 2);
        assert!(tms.active_contradictions().is_empty());
    }

    #[test]
    fn premise_contradiction_unresolvable() {
        let mut tms = Jtms::new();
        let contra = tms.contradiction("hard");
        tms.justify(contra, &[], &[]);
        let culprits = tms.backtrack();
        assert!(culprits.is_empty());
        assert_eq!(tms.active_contradictions().len(), 1);
    }

    #[test]
    fn supporting_assumptions_are_transitive() {
        let mut tms = Jtms::new();
        let a1 = tms.assumption("a1");
        let a2 = tms.assumption("a2");
        let mid = tms.node("mid");
        let top = tms.node("top");
        tms.justify(mid, &[a1], &[]);
        tms.justify(top, &[mid, a2], &[]);
        assert_eq!(tms.supporting_assumptions(top), vec![a1, a2]);
    }

    #[test]
    fn display_renders_every_node() {
        let mut tms = Jtms::new();
        tms.assumption("a");
        let n = tms.node("b");
        tms.contradiction("c");
        tms.justify(n, &[], &[]);
        let s = tms.to_string();
        assert!(s.contains("(assumption)"));
        assert!(s.contains("(contradiction)"));
        assert!(s.contains("[IN ] b"));
    }
}
