#![warn(missing_docs)]

//! Reason maintenance for the GKBMS (paper §3.3.3).
//!
//! "The representation of decision structures supports the storage of
//! redundant dependency information as the basis of a reason
//! maintenance system \[DOYL79, DJ88\] which can contribute to the
//! automatic propagation of the consequences of high-level changes."
//!
//! * [`jtms`] — a justification-based TMS in the style of Doyle
//!   \[DOYL79\]: IN/OUT labels, non-monotonic justifications,
//!   dependency-directed backtracking with nogood recording;
//! * [`atms`] — an assumption-based TMS after de Kleer \[DEKL86\]:
//!   nodes carry labels of minimal consistent environments, so
//!   alternative design versions stay simultaneously available
//!   (fig 3-4's coexisting implementations);
//! * [`group`] — the \[HJ88\] extensions: argumentation structures
//!   (issues / positions / arguments), multicriteria choice support,
//!   and conflict detection among multiple developers.

pub mod atms;
pub mod group;
pub mod jtms;

pub use atms::{Atms, AtmsNodeId, Env};
pub use jtms::{Jtms, JtmsNodeId, Label};
