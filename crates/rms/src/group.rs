//! Group decision support \[HJ88\] (paper §3.3.3).
//!
//! "In \[HJ88\], we develop a proposal for enhancing the above
//! mentioned RMS with mechanisms for multicriteria choice support,
//! argumentation on derivation decisions, and explicit group work
//! organization." This module provides:
//!
//! * IBIS-style **argumentation**: issues raise positions, arguments
//!   support or object to positions, each attributed to a stakeholder;
//! * **multicriteria choice**: positions scored against weighted
//!   criteria, producing a ranking (the decision aid);
//! * **conflict detection**: stakeholders endorsing mutually exclusive
//!   positions are surfaced for explicit negotiation.

use std::collections::{HashMap, HashSet};
use std::fmt;

/// Identifier of an issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IssueId(pub u32);
/// Identifier of a position on an issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PositionId(pub u32);
/// Identifier of a stakeholder (developer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StakeholderId(pub u32);

/// Direction of an argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stance {
    /// Supports the position.
    Pro,
    /// Objects to the position.
    Con,
}

#[derive(Debug, Clone)]
struct Argument {
    position: PositionId,
    stance: Stance,
    by: StakeholderId,
    text: String,
    weight: f64,
}

#[derive(Debug, Clone)]
struct Position {
    issue: IssueId,
    text: String,
    /// Criterion name -> score in [0, 1].
    scores: HashMap<String, f64>,
    endorsed_by: HashSet<StakeholderId>,
}

#[derive(Debug, Clone)]
struct Issue {
    text: String,
    positions: Vec<PositionId>,
    resolved: Option<PositionId>,
    /// Pairs of positions declared mutually exclusive.
    exclusions: Vec<(PositionId, PositionId)>,
}

/// A detected conflict: two stakeholders endorsing mutually exclusive
/// positions on the same issue.
#[derive(Debug, Clone, PartialEq)]
pub struct Conflict {
    /// The issue in dispute.
    pub issue: IssueId,
    /// First endorsed position and one endorser.
    pub left: (PositionId, StakeholderId),
    /// Second endorsed position and one endorser.
    pub right: (PositionId, StakeholderId),
}

/// The argumentation and choice-support board.
#[derive(Debug, Default)]
pub struct GroupBoard {
    issues: Vec<Issue>,
    positions: Vec<Position>,
    arguments: Vec<Argument>,
    stakeholders: Vec<String>,
    /// Criterion name -> weight (normalized at ranking time).
    criteria: HashMap<String, f64>,
}

impl GroupBoard {
    /// An empty board.
    pub fn new() -> Self {
        GroupBoard::default()
    }

    /// Registers a stakeholder.
    pub fn stakeholder(&mut self, name: impl Into<String>) -> StakeholderId {
        let id = StakeholderId(self.stakeholders.len() as u32);
        self.stakeholders.push(name.into());
        id
    }

    /// Stakeholder name.
    pub fn stakeholder_name(&self, id: StakeholderId) -> &str {
        &self.stakeholders[id.0 as usize]
    }

    /// Declares a decision criterion with a weight.
    pub fn criterion(&mut self, name: impl Into<String>, weight: f64) {
        self.criteria.insert(name.into(), weight.max(0.0));
    }

    /// Raises an issue.
    pub fn issue(&mut self, text: impl Into<String>) -> IssueId {
        let id = IssueId(self.issues.len() as u32);
        self.issues.push(Issue {
            text: text.into(),
            positions: Vec::new(),
            resolved: None,
            exclusions: Vec::new(),
        });
        id
    }

    /// Proposes a position on an issue.
    pub fn position(&mut self, issue: IssueId, text: impl Into<String>) -> PositionId {
        let id = PositionId(self.positions.len() as u32);
        self.positions.push(Position {
            issue,
            text: text.into(),
            scores: HashMap::new(),
            endorsed_by: HashSet::new(),
        });
        self.issues[issue.0 as usize].positions.push(id);
        id
    }

    /// Declares two positions mutually exclusive.
    pub fn exclusive(&mut self, a: PositionId, b: PositionId) {
        let issue = self.positions[a.0 as usize].issue;
        debug_assert_eq!(issue, self.positions[b.0 as usize].issue);
        self.issues[issue.0 as usize].exclusions.push((a, b));
    }

    /// Records an argument for/against a position.
    pub fn argue(
        &mut self,
        position: PositionId,
        stance: Stance,
        by: StakeholderId,
        text: impl Into<String>,
        weight: f64,
    ) {
        self.arguments.push(Argument {
            position,
            stance,
            by,
            text: text.into(),
            weight: weight.max(0.0),
        });
    }

    /// Scores a position against a criterion (clamped to [0, 1]).
    pub fn score(&mut self, position: PositionId, criterion: &str, value: f64) {
        self.positions[position.0 as usize]
            .scores
            .insert(criterion.to_string(), value.clamp(0.0, 1.0));
    }

    /// A stakeholder endorses a position.
    pub fn endorse(&mut self, position: PositionId, by: StakeholderId) {
        self.positions[position.0 as usize].endorsed_by.insert(by);
    }

    /// Net argument weight (pro − con) of a position.
    pub fn argument_balance(&self, position: PositionId) -> f64 {
        self.arguments
            .iter()
            .filter(|a| a.position == position)
            .map(|a| match a.stance {
                Stance::Pro => a.weight,
                Stance::Con => -a.weight,
            })
            .sum()
    }

    /// Multicriteria score: weighted sum of criterion scores
    /// (missing scores count 0), normalized by total criterion weight.
    pub fn multicriteria_score(&self, position: PositionId) -> f64 {
        let total: f64 = self.criteria.values().sum();
        if total == 0.0 {
            return 0.0;
        }
        let p = &self.positions[position.0 as usize];
        self.criteria
            .iter()
            .map(|(name, w)| w * p.scores.get(name).copied().unwrap_or(0.0))
            .sum::<f64>()
            / total
    }

    /// Ranks an issue's positions by combined score: multicriteria
    /// score plus a tanh-squashed argument balance (so an avalanche of
    /// weak arguments cannot drown out the criteria).
    pub fn rank(&self, issue: IssueId) -> Vec<(PositionId, f64)> {
        let mut out: Vec<(PositionId, f64)> = self.issues[issue.0 as usize]
            .positions
            .iter()
            .map(|&p| {
                let score = self.multicriteria_score(p) + self.argument_balance(p).tanh();
                (p, score)
            })
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }

    /// Detects conflicts: stakeholders endorsing mutually exclusive
    /// positions of one issue.
    pub fn conflicts(&self) -> Vec<Conflict> {
        let mut out = Vec::new();
        for (i, issue) in self.issues.iter().enumerate() {
            for &(a, b) in &issue.exclusions {
                let ea = &self.positions[a.0 as usize].endorsed_by;
                let eb = &self.positions[b.0 as usize].endorsed_by;
                if let (Some(&sa), Some(&sb)) = (ea.iter().min(), eb.iter().min()) {
                    out.push(Conflict {
                        issue: IssueId(i as u32),
                        left: (a, sa),
                        right: (b, sb),
                    });
                }
            }
        }
        out
    }

    /// Resolves an issue by choosing a position; endorsements of
    /// excluded positions are recorded history, not erased.
    pub fn resolve(&mut self, issue: IssueId, position: PositionId) {
        self.issues[issue.0 as usize].resolved = Some(position);
    }

    /// The chosen position, if resolved.
    pub fn resolution(&self, issue: IssueId) -> Option<PositionId> {
        self.issues[issue.0 as usize].resolved
    }

    /// Open (unresolved) issues.
    pub fn open_issues(&self) -> Vec<IssueId> {
        (0..self.issues.len() as u32)
            .map(IssueId)
            .filter(|&i| self.issues[i.0 as usize].resolved.is_none())
            .collect()
    }

    /// Position text.
    pub fn position_text(&self, id: PositionId) -> &str {
        &self.positions[id.0 as usize].text
    }

    /// Issue text.
    pub fn issue_text(&self, id: IssueId) -> &str {
        &self.issues[id.0 as usize].text
    }
}

impl fmt::Display for GroupBoard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, issue) in self.issues.iter().enumerate() {
            writeln!(f, "Issue I{i}: {}", issue.text)?;
            for &p in &issue.positions {
                let pos = &self.positions[p.0 as usize];
                let marker = if issue.resolved == Some(p) { "*" } else { " " };
                writeln!(
                    f,
                    " {marker} P{}: {} (balance {:+.2}, mc {:.2})",
                    p.0,
                    pos.text,
                    self.argument_balance(p),
                    self.multicriteria_score(p)
                )?;
                for a in self.arguments.iter().filter(|a| a.position == p) {
                    writeln!(
                        f,
                        "     {} [{}] {}",
                        match a.stance {
                            Stance::Pro => "+",
                            Stance::Con => "-",
                        },
                        self.stakeholder_name(a.by),
                        a.text
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §2.1 key-choice debate as an argumentation structure.
    fn key_debate() -> (GroupBoard, IssueId, PositionId, PositionId) {
        let mut board = GroupBoard::new();
        let dev = board.stakeholder("developer");
        let maintainer = board.stakeholder("maintainer");
        board.criterion("user-friendliness", 2.0);
        board.criterion("robustness", 3.0);
        let issue = board.issue("How to key the Invitation relation?");
        let surrogate = board.position(issue, "keep surrogate paperkey");
        let associative = board.position(issue, "use (date, author) associative key");
        board.exclusive(surrogate, associative);
        board.argue(
            associative,
            Stance::Pro,
            dev,
            "makes the system more user-friendly",
            1.0,
        );
        board.argue(
            associative,
            Stance::Con,
            maintainer,
            "breaks when Minutes are mapped",
            2.0,
        );
        board.score(surrogate, "robustness", 0.9);
        board.score(surrogate, "user-friendliness", 0.3);
        board.score(associative, "robustness", 0.2);
        board.score(associative, "user-friendliness", 0.9);
        (board, issue, surrogate, associative)
    }

    #[test]
    fn argument_balance() {
        let (board, _, surrogate, associative) = key_debate();
        assert_eq!(board.argument_balance(surrogate), 0.0);
        assert!((board.argument_balance(associative) - (-1.0)).abs() < 1e-9);
    }

    #[test]
    fn multicriteria_scores_weighted() {
        let (board, _, surrogate, associative) = key_debate();
        // surrogate: (2*0.3 + 3*0.9)/5 = 0.66; associative: (2*0.9+3*0.2)/5 = 0.48
        assert!((board.multicriteria_score(surrogate) - 0.66).abs() < 1e-9);
        assert!((board.multicriteria_score(associative) - 0.48).abs() < 1e-9);
    }

    #[test]
    fn ranking_combines_criteria_and_arguments() {
        let (board, issue, surrogate, _) = key_debate();
        let ranking = board.rank(issue);
        assert_eq!(ranking[0].0, surrogate, "robust option wins the debate");
        assert!(ranking[0].1 > ranking[1].1);
    }

    #[test]
    fn conflict_detected_between_endorsers() {
        let (mut board, issue, surrogate, associative) = key_debate();
        assert!(board.conflicts().is_empty(), "no endorsements yet");
        let dev = StakeholderId(0);
        let maintainer = StakeholderId(1);
        board.endorse(associative, dev);
        board.endorse(surrogate, maintainer);
        let conflicts = board.conflicts();
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].issue, issue);
    }

    #[test]
    fn no_conflict_when_one_side_unendorsed() {
        let (mut board, _, _, associative) = key_debate();
        board.endorse(associative, StakeholderId(0));
        assert!(board.conflicts().is_empty());
    }

    #[test]
    fn resolution_lifecycle() {
        let (mut board, issue, surrogate, _) = key_debate();
        assert_eq!(board.open_issues(), vec![issue]);
        assert_eq!(board.resolution(issue), None);
        board.resolve(issue, surrogate);
        assert_eq!(board.resolution(issue), Some(surrogate));
        assert!(board.open_issues().is_empty());
    }

    #[test]
    fn missing_scores_count_zero() {
        let mut board = GroupBoard::new();
        board.criterion("c", 1.0);
        let i = board.issue("i");
        let p = board.position(i, "unscored");
        assert_eq!(board.multicriteria_score(p), 0.0);
    }

    #[test]
    fn no_criteria_means_zero_score() {
        let mut board = GroupBoard::new();
        let i = board.issue("i");
        let p = board.position(i, "p");
        assert_eq!(board.multicriteria_score(p), 0.0);
    }

    #[test]
    fn scores_clamped() {
        let mut board = GroupBoard::new();
        board.criterion("c", 1.0);
        let i = board.issue("i");
        let p = board.position(i, "p");
        board.score(p, "c", 7.0);
        assert_eq!(board.multicriteria_score(p), 1.0);
    }

    #[test]
    fn display_shows_structure() {
        let (mut board, issue, surrogate, _) = key_debate();
        board.resolve(issue, surrogate);
        let s = board.to_string();
        assert!(s.contains("Issue I0"));
        assert!(s.contains("* P0"));
        assert!(s.contains("user-friendly"));
    }
}
