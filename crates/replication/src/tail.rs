//! Read-only tailing of a live WAL file.
//!
//! The leader's ship loop never touches the `Journal` itself — it
//! follows the WAL *file* with an independent read-only cursor, so
//! shipping takes no locks against the write path. The cursor only
//! advances over records at or below the durable watermark handed to
//! each poll, and it detects a checkpoint truncating the file under it
//! (the signal to restart from offset 0 or fall back to a snapshot).

use crate::error::ReplResult;
use crate::msg::ShippedRecord;
use gkbms::journal::decode_framed;
use std::fs::File;
use std::io::{BufReader, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use storage::record::{self, ReadOutcome};

/// What one poll of the tail produced.
#[derive(Debug)]
pub enum TailStep {
    /// Consecutive committed records ready to ship.
    Records(Vec<ShippedRecord>),
    /// Nothing new below the durable watermark.
    Idle,
    /// The WAL was truncated (or rewritten) under the cursor — a
    /// checkpoint compacted records this tail had not shipped yet.
    /// Restart from offset 0 if the needed sequence is still in the
    /// log, otherwise fall back to snapshot transfer.
    Truncated,
}

/// A read-only cursor over a WAL file, positioned by op sequence.
pub struct WalTail {
    path: PathBuf,
    /// Byte offset of the next unread record.
    offset: u64,
    /// Next op sequence to deliver; records below it (a resumed
    /// subscription mid-WAL) are skipped, a record above it means the
    /// file no longer holds the needed range.
    next_seq: u64,
}

impl WalTail {
    /// A tail over `path` that will deliver records starting at
    /// `start_seq`, scanning from the beginning of the file.
    pub fn new(path: impl AsRef<Path>, start_seq: u64) -> Self {
        WalTail {
            path: path.as_ref().to_path_buf(),
            offset: 0,
            next_seq: start_seq,
        }
    }

    /// The next op sequence this tail will deliver.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Reads committed records up to `up_to_seq` (the durable
    /// watermark), capping the batch at roughly `max_bytes` of
    /// payload. A torn record at the file's tail is the writer
    /// mid-append and simply ends the batch.
    pub fn poll(&mut self, up_to_seq: u64, max_bytes: usize) -> ReplResult<TailStep> {
        let file = File::open(&self.path)?;
        let len = file.metadata()?.len();
        if len < self.offset {
            return Ok(TailStep::Truncated);
        }
        if len == self.offset || self.next_seq > up_to_seq {
            return Ok(TailStep::Idle);
        }
        let mut reader = BufReader::new(file);
        reader.seek(SeekFrom::Start(self.offset))?;
        let mut out = Vec::new();
        let mut bytes = 0usize;
        loop {
            if bytes >= max_bytes {
                break;
            }
            let framed = match record::read_record(&mut reader, self.offset) {
                Ok(ReadOutcome::Record(framed)) => framed,
                Ok(ReadOutcome::Eof) | Ok(ReadOutcome::Torn { .. }) => break,
                // Misaligned read after a truncate-and-refill, or
                // genuine corruption: either way this cursor's view of
                // the file is gone, resynchronize.
                Ok(ReadOutcome::BadCrc { .. }) | Err(_) => return Ok(TailStep::Truncated),
            };
            let advance = (record::HEADER_LEN + framed.len()) as u64;
            let (seq, epoch, payload) = match decode_framed(&framed) {
                Ok(t) => t,
                Err(_) => return Ok(TailStep::Truncated),
            };
            if seq < self.next_seq {
                // Prefix the subscriber already holds.
                self.offset += advance;
                continue;
            }
            if seq > self.next_seq {
                // A hole: the file was truncated and refilled past the
                // range this tail still needs.
                return Ok(TailStep::Truncated);
            }
            if seq > up_to_seq {
                // Appended but not yet durable — never ship it.
                break;
            }
            self.offset += advance;
            self.next_seq = seq + 1;
            bytes += payload.len();
            out.push(ShippedRecord {
                seq,
                epoch,
                payload: payload.to_vec(),
            });
        }
        if out.is_empty() {
            Ok(TailStep::Idle)
        } else {
            Ok(TailStep::Records(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gkbms::journal::encode_framed;
    use storage::AppendLog;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cb-tail-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn append(log: &mut AppendLog, seq: u64, epoch: u64, payload: &[u8]) {
        log.append(&encode_framed(seq, epoch, payload)).unwrap();
        log.flush().unwrap();
    }

    fn seqs(step: TailStep) -> Vec<u64> {
        match step {
            TailStep::Records(rs) => rs.iter().map(|r| r.seq).collect(),
            other => panic!("expected records, got {other:?}"),
        }
    }

    #[test]
    fn delivers_only_durable_records_in_order() {
        let path = tmp("durable");
        let mut log = AppendLog::open(&path).unwrap();
        for s in 1..=5 {
            append(&mut log, s, 1, format!("op{s}").as_bytes());
        }
        let mut tail = WalTail::new(&path, 1);
        // Watermark at 3: records 4 and 5 exist but must not ship.
        assert_eq!(seqs(tail.poll(3, usize::MAX).unwrap()), vec![1, 2, 3]);
        assert!(matches!(tail.poll(3, usize::MAX).unwrap(), TailStep::Idle));
        // Watermark advances: the rest ships, payloads intact.
        match tail.poll(5, usize::MAX).unwrap() {
            TailStep::Records(rs) => {
                assert_eq!(rs.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![4, 5]);
                assert_eq!(rs[0].payload, b"op4");
                assert_eq!(rs[1].epoch, 1);
            }
            other => panic!("{other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resumed_subscription_skips_the_applied_prefix() {
        let path = tmp("resume");
        let mut log = AppendLog::open(&path).unwrap();
        for s in 1..=4 {
            append(&mut log, s, 1, b"x");
        }
        let mut tail = WalTail::new(&path, 3);
        assert_eq!(seqs(tail.poll(4, usize::MAX).unwrap()), vec![3, 4]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn byte_cap_bounds_each_batch() {
        let path = tmp("cap");
        let mut log = AppendLog::open(&path).unwrap();
        for s in 1..=6 {
            append(&mut log, s, 1, &[0u8; 64]);
        }
        let mut tail = WalTail::new(&path, 1);
        // 64-byte payloads with a 100-byte cap: two per batch.
        assert_eq!(seqs(tail.poll(6, 100).unwrap()), vec![1, 2]);
        assert_eq!(seqs(tail.poll(6, 100).unwrap()), vec![3, 4]);
        assert_eq!(seqs(tail.poll(6, 100).unwrap()), vec![5, 6]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_under_the_cursor_is_detected() {
        let path = tmp("truncated");
        let mut log = AppendLog::open(&path).unwrap();
        for s in 1..=3 {
            append(&mut log, s, 1, b"payload");
        }
        let mut tail = WalTail::new(&path, 1);
        assert_eq!(seqs(tail.poll(3, usize::MAX).unwrap()), vec![1, 2, 3]);
        // A checkpoint truncates the WAL; the next record starts a new
        // (shorter) file.
        log.truncate_all().unwrap();
        assert!(matches!(
            tail.poll(4, usize::MAX).unwrap(),
            TailStep::Truncated
        ));
        // After the file regrows, a fresh tail at the needed sequence
        // recovers by rescanning from offset 0.
        append(&mut log, 4, 1, b"after");
        let mut fresh = WalTail::new(&path, 4);
        assert_eq!(seqs(fresh.poll(4, usize::MAX).unwrap()), vec![4]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn refilled_file_past_needed_range_is_a_truncation() {
        let path = tmp("refilled");
        let mut log = AppendLog::open(&path).unwrap();
        append(&mut log, 1, 1, b"a");
        let mut tail = WalTail::new(&path, 1);
        assert_eq!(seqs(tail.poll(1, usize::MAX).unwrap()), vec![1]);
        // Checkpoint at 5, then new records from 6: sequence 2..=5 are
        // gone from the file.
        log.truncate_all().unwrap();
        append(&mut log, 6, 1, b"f");
        let mut stale = WalTail::new(&path, 2);
        assert!(matches!(
            stale.poll(6, usize::MAX).unwrap(),
            TailStep::Truncated
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_ends_the_batch_without_error() {
        let path = tmp("torn");
        let mut log = AppendLog::open(&path).unwrap();
        append(&mut log, 1, 1, b"whole");
        append(&mut log, 2, 1, b"torn-record");
        drop(log);
        let full = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);
        let mut tail = WalTail::new(&path, 1);
        assert_eq!(seqs(tail.poll(2, usize::MAX).unwrap()), vec![1]);
        assert!(matches!(tail.poll(2, usize::MAX).unwrap(), TailStep::Idle));
        std::fs::remove_file(&path).unwrap();
    }
}
