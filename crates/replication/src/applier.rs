//! Follower-side stream admission: in-order, exactly-once, fenced.
//!
//! Every shipped record passes through [`StreamApplier::admit`] before
//! it touches the knowledge base. A record that would skip ahead,
//! move backwards, or resurrect a deposed leader's epoch is refused
//! with a typed error — the follower disconnects and resubscribes (or
//! surfaces the fence) instead of silently corrupting its replica.

use crate::error::{ReplError, ReplResult};

/// Admission gate for a replication stream.
///
/// Tracks the applied position and epoch; `admit` advances them only
/// for the exact next record of an equal-or-newer epoch.
#[derive(Debug, Clone)]
pub struct StreamApplier {
    /// Next sequence number the stream must deliver.
    next: u64,
    /// Current sequence epoch; records below it are fenced.
    epoch: u64,
}

impl StreamApplier {
    /// An applier positioned after `applied_seq`, fencing records from
    /// epochs older than `epoch`.
    pub fn new(applied_seq: u64, epoch: u64) -> Self {
        StreamApplier {
            next: applied_seq + 1,
            epoch,
        }
    }

    /// Admits one record by its frame fields, advancing the applied
    /// position. Errors leave the applier unchanged, so a refused
    /// stream can be reported and resumed from the same position.
    pub fn admit(&mut self, seq: u64, epoch: u64) -> ReplResult<()> {
        if epoch < self.epoch {
            return Err(ReplError::EpochFenced {
                local: self.epoch,
                got: epoch,
            });
        }
        if seq > self.next {
            return Err(ReplError::SequenceGap {
                expected: self.next,
                got: seq,
            });
        }
        if seq < self.next {
            return Err(ReplError::SequenceRegression {
                expected: self.next,
                got: seq,
            });
        }
        self.next += 1;
        self.epoch = epoch;
        Ok(())
    }

    /// Last admitted sequence number.
    pub fn applied_seq(&self) -> u64 {
        self.next - 1
    }

    /// Current epoch (raised by admitted records from newer epochs).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seqs: &[u64]) -> Vec<(u64, u64)> {
        seqs.iter().map(|&s| (s, 1)).collect()
    }

    fn drive(applier: &mut StreamApplier, records: &[(u64, u64)]) -> ReplResult<()> {
        for &(seq, epoch) in records {
            applier.admit(seq, epoch)?;
        }
        Ok(())
    }

    #[test]
    fn in_order_stream_is_admitted() {
        let mut a = StreamApplier::new(0, 1);
        drive(&mut a, &stream(&[1, 2, 3, 4])).unwrap();
        assert_eq!(a.applied_seq(), 4);
    }

    #[test]
    fn spliced_stream_with_a_hole_is_a_typed_gap() {
        // Ops 1,2,4,5: record 3 was spliced out in flight. The old
        // behaviour applied 4 and 5 anyway, silently losing op 3.
        let mut a = StreamApplier::new(0, 1);
        let err = drive(&mut a, &stream(&[1, 2, 4, 5])).unwrap_err();
        match err {
            ReplError::SequenceGap { expected, got } => {
                assert_eq!((expected, got), (3, 4));
            }
            other => panic!("expected gap, got {other}"),
        }
        // Nothing past the hole was admitted.
        assert_eq!(a.applied_seq(), 2);
    }

    #[test]
    fn replayed_prefix_is_a_typed_regression() {
        // Ops 1,2,3,2: a duplicated (re-spliced) record must not
        // double-apply.
        let mut a = StreamApplier::new(0, 1);
        let err = drive(&mut a, &stream(&[1, 2, 3, 2])).unwrap_err();
        match err {
            ReplError::SequenceRegression { expected, got } => {
                assert_eq!((expected, got), (4, 2));
            }
            other => panic!("expected regression, got {other}"),
        }
        assert_eq!(a.applied_seq(), 3);
    }

    #[test]
    fn resume_position_survives_refusal() {
        let mut a = StreamApplier::new(0, 1);
        drive(&mut a, &stream(&[1, 2])).unwrap();
        assert!(a.admit(9, 1).is_err());
        // The correct next record is still admissible.
        a.admit(3, 1).unwrap();
        assert_eq!(a.applied_seq(), 3);
    }

    #[test]
    fn old_epoch_records_are_fenced() {
        let mut a = StreamApplier::new(10, 2);
        let err = a.admit(11, 1).unwrap_err();
        match err {
            ReplError::EpochFenced { local, got } => assert_eq!((local, got), (2, 1)),
            other => panic!("expected fence, got {other}"),
        }
        assert_eq!(a.applied_seq(), 10, "fenced record must not advance");
    }

    #[test]
    fn newer_epoch_is_adopted_mid_stream() {
        // A promotion observed through the stream: the seal record
        // arrives framed with the new epoch and raises the fence.
        let mut a = StreamApplier::new(0, 1);
        a.admit(1, 1).unwrap();
        a.admit(2, 2).unwrap();
        assert_eq!(a.epoch(), 2);
        // Epoch-1 records are refused from here on.
        assert!(matches!(
            a.admit(3, 1),
            Err(ReplError::EpochFenced { local: 2, got: 1 })
        ));
    }

    #[test]
    fn resubscription_resumes_from_applied_seq() {
        let mut a = StreamApplier::new(0, 1);
        drive(&mut a, &stream(&[1, 2, 3])).unwrap();
        // Simulate disconnect: a new applier built from the follower's
        // durable position admits exactly the tail.
        let mut b = StreamApplier::new(a.applied_seq(), a.epoch());
        assert!(b.admit(3, 1).is_err(), "already applied");
        b.admit(4, 1).unwrap();
    }
}
