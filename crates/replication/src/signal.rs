//! The durability watermark ship loops wait on.
//!
//! Followers must only ever receive records the leader has *committed*
//! under its fsync policy — otherwise a leader crash could leave a
//! replica ahead of the recovered leader, and the diverged suffix
//! could never be reconciled. The group-commit path advances a
//! [`CommitSignal`] as ops become durable; every ship loop blocks on
//! it instead of polling the WAL file for bytes that may still be
//! rolled back by a crash.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A monotonic `(durable_seq, epoch)` pair with condvar wakeups.
pub struct CommitSignal {
    state: Mutex<(u64, u64)>,
    cv: Condvar,
}

impl CommitSignal {
    /// A signal starting at the given committed position.
    pub fn new(durable_seq: u64, epoch: u64) -> Self {
        CommitSignal {
            state: Mutex::new((durable_seq, epoch)),
            cv: Condvar::new(),
        }
    }

    /// Advances the committed position (monotonically — stale calls
    /// are no-ops) and wakes every waiting ship loop.
    pub fn advance(&self, durable_seq: u64, epoch: u64) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if durable_seq > s.0 || epoch > s.1 {
            s.0 = s.0.max(durable_seq);
            s.1 = s.1.max(epoch);
            self.cv.notify_all();
        }
    }

    /// The current committed `(seq, epoch)`.
    pub fn current(&self) -> (u64, u64) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until the committed sequence exceeds `seq` or `timeout`
    /// elapses; returns the committed pair either way. The timeout is
    /// what lets ship loops interleave heartbeats and shutdown checks.
    pub fn wait_beyond(&self, seq: u64, timeout: Duration) -> (u64, u64) {
        let guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let (s, _) = self
            .cv
            .wait_timeout_while(guard, timeout, |s| s.0 <= seq)
            .unwrap_or_else(|e| e.into_inner());
        *s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn advance_is_monotonic() {
        let s = CommitSignal::new(5, 1);
        s.advance(3, 1); // stale
        assert_eq!(s.current(), (5, 1));
        s.advance(9, 2);
        assert_eq!(s.current(), (9, 2));
    }

    #[test]
    fn waiters_wake_on_advance() {
        let s = Arc::new(CommitSignal::new(0, 1));
        let waiter = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || s.wait_beyond(0, Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(20));
        s.advance(1, 1);
        assert_eq!(waiter.join().unwrap(), (1, 1));
    }

    #[test]
    fn wait_times_out_at_current_position() {
        let s = CommitSignal::new(4, 1);
        // Already beyond: returns immediately.
        assert_eq!(s.wait_beyond(3, Duration::from_secs(5)), (4, 1));
        // Not beyond: times out and reports the unchanged position.
        assert_eq!(s.wait_beyond(4, Duration::from_millis(10)), (4, 1));
    }
}
