//! Replication stream messages.
//!
//! After a follower's `Replicate` request, the connection switches
//! from request/response to one-way push: the leader writes a stream
//! of `ReplMsg` frames (the same CRC-checked length-prefixed records
//! as every other protocol frame). Opcodes start at 100 so a follower
//! can tell a stream message from an ordinary `Response` (opcodes
//! below 100) — the leader answers a rejected subscription with a
//! plain error response on the same socket.

use crate::error::{ReplError, ReplResult};
use storage::record::codec::{self, Cursor};

/// First stream-message opcode; anything below is a `Response`.
pub const MSG_BASE: u32 = 100;
const MSG_HELLO: u32 = 100;
const MSG_SNAPSHOT_START: u32 = 101;
const MSG_SNAPSHOT_CHUNK: u32 = 102;
const MSG_SNAPSHOT_END: u32 = 103;
const MSG_OPS: u32 = 104;
const MSG_HEARTBEAT: u32 = 105;

/// One WAL record in flight: the exact frame fields the leader's
/// journal holds, so the follower can apply the payload and append an
/// identical frame to its own WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShippedRecord {
    /// Journal op sequence number.
    pub seq: u64,
    /// Sequence epoch the record was written under.
    pub epoch: u64,
    /// The op payload (what `apply_record` replays).
    pub payload: Vec<u8>,
}

/// A message on the replication stream, leader → follower.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplMsg {
    /// First message after an accepted subscription.
    Hello {
        /// The leader's last committed op sequence.
        leader_seq: u64,
        /// The leader's sequence epoch.
        epoch: u64,
    },
    /// The follower is behind the leader's checkpoint truncation
    /// horizon: a full snapshot follows, then the WAL tail.
    SnapshotStart {
        /// Op sequence the snapshot covers; tail shipping resumes at
        /// the next sequence.
        covered_seq: u64,
        /// Epoch recorded in the snapshot's coverage record.
        epoch: u64,
    },
    /// A batch of snapshot history records (the same payloads a
    /// checkpoint snapshot file holds, coverage record included).
    SnapshotChunk {
        /// History op payloads, in replay order.
        payloads: Vec<Vec<u8>>,
    },
    /// The snapshot stream is complete; WAL records follow.
    SnapshotEnd,
    /// A batch of committed WAL records in sequence order.
    Ops {
        /// The leader's last committed op sequence at send time (lets
        /// the follower measure its lag without a round trip).
        leader_seq: u64,
        /// The records, consecutive by sequence.
        records: Vec<ShippedRecord>,
    },
    /// Keep-alive when no commits arrive; also refreshes the
    /// follower's view of the leader position.
    Heartbeat {
        /// The leader's last committed op sequence.
        leader_seq: u64,
        /// The leader's sequence epoch.
        epoch: u64,
    },
}

impl ReplMsg {
    /// Encodes the message as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            ReplMsg::Hello { leader_seq, epoch } => {
                codec::put_u32(&mut p, MSG_HELLO);
                codec::put_u64(&mut p, *leader_seq);
                codec::put_u64(&mut p, *epoch);
            }
            ReplMsg::SnapshotStart { covered_seq, epoch } => {
                codec::put_u32(&mut p, MSG_SNAPSHOT_START);
                codec::put_u64(&mut p, *covered_seq);
                codec::put_u64(&mut p, *epoch);
            }
            ReplMsg::SnapshotChunk { payloads } => {
                codec::put_u32(&mut p, MSG_SNAPSHOT_CHUNK);
                codec::put_u32(&mut p, payloads.len() as u32);
                for pay in payloads {
                    codec::put_bytes(&mut p, pay);
                }
            }
            ReplMsg::SnapshotEnd => codec::put_u32(&mut p, MSG_SNAPSHOT_END),
            ReplMsg::Ops {
                leader_seq,
                records,
            } => {
                codec::put_u32(&mut p, MSG_OPS);
                codec::put_u64(&mut p, *leader_seq);
                codec::put_u32(&mut p, records.len() as u32);
                for r in records {
                    codec::put_u64(&mut p, r.seq);
                    codec::put_u64(&mut p, r.epoch);
                    codec::put_bytes(&mut p, &r.payload);
                }
            }
            ReplMsg::Heartbeat { leader_seq, epoch } => {
                codec::put_u32(&mut p, MSG_HEARTBEAT);
                codec::put_u64(&mut p, *leader_seq);
                codec::put_u64(&mut p, *epoch);
            }
        }
        p
    }

    /// Peeks the opcode of a frame payload without decoding it — used
    /// to distinguish stream messages (≥ [`MSG_BASE`]) from ordinary
    /// responses sharing the socket.
    pub fn peek_opcode(payload: &[u8]) -> Option<u32> {
        Cursor::new(payload).get_u32().ok()
    }

    /// Decodes a frame payload, rejecting trailing bytes.
    pub fn decode(payload: &[u8]) -> ReplResult<ReplMsg> {
        let mut c = Cursor::new(payload);
        let op = c.get_u32()?;
        let msg = match op {
            MSG_HELLO => ReplMsg::Hello {
                leader_seq: c.get_u64()?,
                epoch: c.get_u64()?,
            },
            MSG_SNAPSHOT_START => ReplMsg::SnapshotStart {
                covered_seq: c.get_u64()?,
                epoch: c.get_u64()?,
            },
            MSG_SNAPSHOT_CHUNK => {
                let n = c.get_u32()? as usize;
                let mut payloads = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    payloads.push(c.get_bytes()?.to_vec());
                }
                ReplMsg::SnapshotChunk { payloads }
            }
            MSG_SNAPSHOT_END => ReplMsg::SnapshotEnd,
            MSG_OPS => {
                let leader_seq = c.get_u64()?;
                let n = c.get_u32()? as usize;
                let mut records = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    records.push(ShippedRecord {
                        seq: c.get_u64()?,
                        epoch: c.get_u64()?,
                        payload: c.get_bytes()?.to_vec(),
                    });
                }
                ReplMsg::Ops {
                    leader_seq,
                    records,
                }
            }
            MSG_HEARTBEAT => ReplMsg::Heartbeat {
                leader_seq: c.get_u64()?,
                epoch: c.get_u64()?,
            },
            other => {
                return Err(ReplError::Protocol(format!(
                    "unknown replication opcode {other}"
                )))
            }
        };
        if !c.is_exhausted() {
            return Err(ReplError::Protocol(
                "trailing bytes after replication message".into(),
            ));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_variant() {
        let msgs = vec![
            ReplMsg::Hello {
                leader_seq: 42,
                epoch: 3,
            },
            ReplMsg::SnapshotStart {
                covered_seq: 17,
                epoch: 2,
            },
            ReplMsg::SnapshotChunk {
                payloads: vec![b"one".to_vec(), Vec::new(), b"\x00\xffbin".to_vec()],
            },
            ReplMsg::SnapshotEnd,
            ReplMsg::Ops {
                leader_seq: 99,
                records: vec![
                    ShippedRecord {
                        seq: 98,
                        epoch: 1,
                        payload: b"alpha".to_vec(),
                    },
                    ShippedRecord {
                        seq: 99,
                        epoch: 2,
                        payload: Vec::new(),
                    },
                ],
            },
            ReplMsg::Heartbeat {
                leader_seq: 7,
                epoch: 1,
            },
        ];
        for m in msgs {
            let bytes = m.encode();
            assert!(ReplMsg::peek_opcode(&bytes).unwrap() >= MSG_BASE);
            assert_eq!(ReplMsg::decode(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn unknown_opcode_and_trailing_bytes_are_rejected() {
        let mut p = Vec::new();
        codec::put_u32(&mut p, 250);
        assert!(matches!(
            ReplMsg::decode(&p),
            Err(ReplError::Protocol(m)) if m.contains("250")
        ));
        let mut ok = ReplMsg::SnapshotEnd.encode();
        ok.push(0);
        assert!(matches!(
            ReplMsg::decode(&ok),
            Err(ReplError::Protocol(m)) if m.contains("trailing")
        ));
    }

    #[test]
    fn response_opcodes_are_distinguishable() {
        // A proto Response frame starts with its opcode (< 100); the
        // follower uses the peek to route between the two decoders.
        let mut resp = Vec::new();
        codec::put_u32(&mut resp, 7); // RESP_ERROR
        assert!(ReplMsg::peek_opcode(&resp).unwrap() < MSG_BASE);
    }
}
