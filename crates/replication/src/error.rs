//! Typed replication errors.

use std::fmt;

/// Everything that can go wrong between a leader and a follower.
#[derive(Debug)]
pub enum ReplError {
    /// The shipped stream skipped ahead: a record arrived with a
    /// sequence number above the next expected one. Applying it would
    /// silently lose the missing ops, so the follower disconnects and
    /// resubscribes from its applied sequence instead.
    SequenceGap {
        /// The sequence number the applier expected next.
        expected: u64,
        /// The sequence number that actually arrived.
        got: u64,
    },
    /// The shipped stream moved backwards: a record arrived at or
    /// below the applied watermark. Re-applying would double-apply
    /// history.
    SequenceRegression {
        /// The sequence number the applier expected next.
        expected: u64,
        /// The sequence number that actually arrived.
        got: u64,
    },
    /// A record was written under an older sequence epoch than the
    /// local one — it comes from a leader deposed by a promotion and
    /// must never be applied.
    EpochFenced {
        /// The local (current) epoch.
        local: u64,
        /// The stale epoch the record carries.
        got: u64,
    },
    /// A malformed or out-of-protocol message.
    Protocol(String),
    /// Transport failure.
    Io(std::io::Error),
    /// Log/record-level failure while reading or framing records.
    Storage(storage::StorageError),
}

/// Convenience alias.
pub type ReplResult<T> = Result<T, ReplError>;

impl fmt::Display for ReplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplError::SequenceGap { expected, got } => {
                write!(
                    f,
                    "sequence gap in shipped stream: expected op {expected}, got {got}"
                )
            }
            ReplError::SequenceRegression { expected, got } => write!(
                f,
                "sequence regression in shipped stream: expected op {expected}, got {got}"
            ),
            ReplError::EpochFenced { local, got } => write!(
                f,
                "fenced: record from epoch {got} refused at local epoch {local}"
            ),
            ReplError::Protocol(m) => write!(f, "replication protocol error: {m}"),
            ReplError::Io(e) => write!(f, "replication transport error: {e}"),
            ReplError::Storage(e) => write!(f, "replication storage error: {e}"),
        }
    }
}

impl std::error::Error for ReplError {}

impl From<std::io::Error> for ReplError {
    fn from(e: std::io::Error) -> Self {
        ReplError::Io(e)
    }
}

impl From<storage::StorageError> for ReplError {
    fn from(e: storage::StorageError) -> Self {
        ReplError::Storage(e)
    }
}
