#![warn(missing_docs)]

//! Replication by prefix shipping.
//!
//! The journal already *is* a replication log: every WAL record is
//! framed with its monotonic op sequence number and sequence epoch,
//! and checkpoint snapshots name the sequence they cover. This crate
//! provides the transport-agnostic machinery that turns that log into
//! a leader/follower fleet:
//!
//! * [`msg`] — the `ReplMsg` wire messages a leader pushes after a
//!   `Replicate` subscription (snapshot stream, op batches,
//!   heartbeats), framed exactly like every other protocol frame;
//! * [`tail`] — [`WalTail`], a read-only cursor over the leader's live
//!   WAL file that converts durable records into shippable batches and
//!   detects checkpoint truncation under its feet;
//! * [`applier`] — [`StreamApplier`], the follower-side admission
//!   gate: exactly-once, in-order sequence checking plus epoch fencing
//!   so a spliced stream or a deposed leader's records are refused
//!   with a typed error instead of silently applied;
//! * [`signal`] — [`CommitSignal`], the durability watermark the
//!   group-commit path advances and ship loops wait on, so followers
//!   only ever receive records the leader has committed (a crashed
//!   leader can never recover to a state *behind* its replicas);
//! * [`error`] — typed [`ReplError`]s shared by both sides.
//!
//! The TCP endpoints themselves (the leader's ship loop serving a
//! `Replicate` request, the follower runtime applying into a live
//! server) live in the `server` crate, which composes these pieces
//! with its existing connection handling and MVCC publication.

pub mod applier;
pub mod error;
pub mod msg;
pub mod signal;
pub mod tail;

pub use applier::StreamApplier;
pub use error::{ReplError, ReplResult};
pub use msg::{ReplMsg, ShippedRecord};
pub use signal::CommitSignal;
pub use tail::{TailStep, WalTail};
