//! `cblint` — offline static analyzer for the rule/constraint base.
//!
//! ```text
//! cblint [--deny-warnings] [--quiet] <file>...
//! ```
//!
//! Lints datalog programs (`.dl`) and CML scripts (`TELL … end`),
//! rendering rustc-style diagnostics. Exits non-zero when any file has
//! errors — or warnings, under `--deny-warnings`.

use analysis::{lint_source, render, LintContext, Severity};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny_warnings = false;
    let mut quiet = false;
    let mut files = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("usage: cblint [--deny-warnings] [--quiet] <file>...");
                println!();
                println!("Statically checks datalog programs (.dl) and CML scripts");
                println!("(TELL ... end) for unsafe rules, recursion through negation,");
                println!("undeclared or arity-mismatched predicates, dead rules,");
                println!("duplicate/subsumed rules and contradicting constraints.");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("cblint: unknown flag `{flag}` (try --help)");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("cblint: no input files (try --help)");
        return ExitCode::from(2);
    }

    let ctx = LintContext::offline();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cblint: cannot read {file}: {e}");
                errors += 1;
                continue;
            }
        };
        let diags = lint_source(&src, &ctx);
        errors += diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        warnings += diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        if !quiet || !diags.is_empty() {
            print!("{}", render(file, &src, &diags));
        }
    }
    if errors > 0 || (deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
