//! `cblint` — offline static analyzer for the rule/constraint base.
//!
//! ```text
//! cblint [--deny-warnings] [--quiet] [--format=json] <file>...
//! ```
//!
//! Lints datalog programs (`.dl`) and CML scripts (`TELL … end`),
//! rendering rustc-style diagnostics — or, under `--format=json`, one
//! JSON object per diagnostic per line with a stable field order
//! (`file`, `line`, `severity`, `code`, `subject`, `message`,
//! `witness`) for CI and editor consumption. Exits non-zero when any
//! file has errors — or warnings, under `--deny-warnings`.

use analysis::{lint_source, render, Diagnostic, LintContext, Severity};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny_warnings = false;
    let mut quiet = false;
    let mut json = false;
    let mut files = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--quiet" | "-q" => quiet = true,
            "--format=json" => json = true,
            "--format=text" => json = false,
            "--help" | "-h" => {
                println!("usage: cblint [--deny-warnings] [--quiet] [--format=json] <file>...");
                println!();
                println!("Statically checks datalog programs (.dl) and CML scripts");
                println!("(TELL ... end) for unsafe rules, recursion through negation,");
                println!("undeclared or arity-mismatched predicates, dead rules,");
                println!("duplicate/subsumed rules, contradicting constraints, sort");
                println!("conflicts, divergence risks and costly joins (CB000-CB013).");
                println!();
                println!("--format=json emits one diagnostic per line as a JSON object");
                println!("with fields file, line, severity, code, subject, message,");
                println!("witness, in that order.");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("cblint: unknown flag `{flag}` (try --help)");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("cblint: no input files (try --help)");
        return ExitCode::from(2);
    }

    let ctx = LintContext::offline();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cblint: cannot read {file}: {e}");
                errors += 1;
                continue;
            }
        };
        let diags = lint_source(&src, &ctx);
        errors += diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        warnings += diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        if json {
            for d in &diags {
                println!("{}", json_line(file, d));
            }
        } else if !quiet || !diags.is_empty() {
            print!("{}", render(file, &src, &diags));
        }
    }
    if errors > 0 || (deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// One diagnostic as a single-line JSON object, fields in a stable
/// order so CI greps and golden files stay byte-identical.
fn json_line(file: &str, d: &Diagnostic) -> String {
    let mut s = String::from("{");
    s.push_str(&format!("\"file\":{}", json_str(file)));
    match d.line {
        Some(n) => s.push_str(&format!(",\"line\":{n}")),
        None => s.push_str(",\"line\":null"),
    }
    s.push_str(&format!(
        ",\"severity\":{}",
        json_str(&d.severity.to_string())
    ));
    s.push_str(&format!(",\"code\":{}", json_str(d.code)));
    s.push_str(&format!(",\"subject\":{}", json_str(&d.subject)));
    s.push_str(&format!(",\"message\":{}", json_str(&d.message)));
    s.push_str(&format!(",\"witness\":{}", json_str(&d.witness)));
    s.push('}');
    s
}

fn json_str(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
