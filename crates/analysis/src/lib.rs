#![warn(missing_docs)]

//! Static analysis of the rule/constraint base (`cblint`).
//!
//! The paper's Consistency Checker (§3.1) validates integrity
//! *set-oriented and ahead of use*; this crate is the corresponding
//! correctness tooling for the reproduction. It turns problems that
//! would otherwise surface at the first ASK — or never — into
//! [`Diagnostic`]s at admission time:
//!
//! * **CB001** unsafe rule (range restriction violated),
//! * **CB002** recursion through negation, with the negative cycle as
//!   witness,
//! * **CB003** reference to a predicate nothing defines,
//! * **CB004** predicate used with mismatching arities,
//! * **CB005** dead rule: its head predicate is unreachable from every
//!   query root,
//! * **CB006** duplicate or subsumed rule,
//! * **CB007** two constraints contradict on ground atoms,
//! * **CB008** malformed assertion text,
//! * **CB009** sort error in an assertion (unknown class or attribute
//!   label),
//! * **CB000** the source does not parse at all,
//!
//! and the dataflow tier ([`dataflow`], [`cost`]):
//!
//! * **CB010** sort/type inference: declared Telos sorts propagate
//!   through rule bodies; unification conflicts are reported with the
//!   two witness literals,
//! * **CB011** termination: recursive cycles with no size-decreasing
//!   argument position are divergence risks,
//! * **CB012** cardinality/join-cost estimation over the evaluator's
//!   own plan; cross joins and budget-busting strata are flagged,
//! * **CB013** IVM maintainability: a registered view forcing DRed
//!   over a large recursive stratum, or churning under the observed
//!   TELL/UNTELL mix.
//!
//! The engine is **incremental**: per-SCC results are fingerprinted
//! ([`AnalysisCache`]) so admission-time linting re-analyzes only
//! dirty components — O(delta), not O(rule base).
//!
//! The same engine backs three surfaces: the offline `cblint` binary,
//! the GKBMS admission path (`Gkbms::tell_src`), and the server's
//! `Lint` wire op (`\lint` in cbshell).

pub mod checks;
pub mod cost;
pub mod dataflow;
pub mod frames;
pub mod source;

pub use checks::AnalysisCache;

use std::collections::{HashMap, HashSet};
use std::fmt;

/// How bad a finding is. Errors reject the batch at admission time;
/// warnings are reported but admitted (unless the server runs with
/// `strict_lint`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but admissible.
    Warning,
    /// Definitely wrong; the batch is rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Stable check code (`CB001` …).
    pub code: &'static str,
    /// What the finding is about: a rule or constraint reference such
    /// as ``rule `Minutes!closed` `` or the offending rule text.
    pub subject: String,
    /// One-line statement of the problem.
    pub message: String,
    /// Human-readable witness: the offending variable, the negative
    /// cycle path, the contradicting pair, …
    pub witness: String,
    /// 1-based line in the linted source, when known.
    pub line: Option<usize>,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(
        code: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            subject: subject.into(),
            message: message.into(),
            witness: String::new(),
            line: None,
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(
        code: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code,
            ..Diagnostic::error(code, subject, message)
        }
    }

    /// Attaches a witness.
    pub fn with_witness(mut self, witness: impl Into<String>) -> Self {
        self.witness = witness.into();
        self
    }

    /// Attaches a source line.
    pub fn at_line(mut self, line: Option<usize>) -> Self {
        self.line = line;
        self
    }

    /// The compact one-line form used on the wire and in logs:
    /// `error[CB001] rule `r`: message (witness)`.
    pub fn one_line(&self) -> String {
        let mut s = format!(
            "{}[{}] {}: {}",
            self.severity, self.code, self.subject, self.message
        );
        if !self.witness.is_empty() {
            s.push_str(&format!(" (witness: {})", self.witness));
        }
        s
    }
}

/// Whether any diagnostic is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// The vocabulary the analyzer checks references against: the EDB
/// schema, the query roots, the known object names and attribute
/// labels, and the rules/constraints already stored (a new rule can
/// close a negative cycle over an old one).
#[derive(Debug, Clone, Default)]
pub struct LintContext {
    /// Declared predicates with arities (EDB schema plus base IDB).
    pub schema: HashMap<String, usize>,
    /// Predicates queries probe; reachability roots of the dead-rule
    /// check.
    pub roots: Vec<String>,
    /// Known object/class names, for assertion sort checking.
    pub known_names: HashSet<String>,
    /// Declared attribute labels, for assertion sort checking.
    pub attr_labels: HashSet<String>,
    /// Datalog rules already stored in the KB (textual).
    pub stored_rules: Vec<String>,
    /// Constraints already stored in the KB: (reference, text).
    pub stored_constraints: Vec<(String, String)>,
    /// Treat heads of newly admitted rules as queryable roots (the
    /// admission path does; offline lint relies on `% query:`
    /// directives instead).
    pub assume_new_heads_queryable: bool,
    /// Measured EDB cardinalities (predicate → rows) for the cost
    /// estimator; empty offline, where [`cost::DEFAULT_EDB_ROWS`]
    /// applies.
    pub edb_cards: HashMap<String, f64>,
}

impl LintContext {
    /// The context for offline linting: the deductive-relational
    /// bridge's EDB schema and base IDB, the ω builtin class names,
    /// and nothing stored.
    pub fn offline() -> Self {
        let mut ctx = LintContext {
            assume_new_heads_queryable: false,
            ..Default::default()
        };
        for (pred, arity) in [
            (objectbase::query::preds::IN, 2),
            (objectbase::query::preds::ISA, 2),
            (objectbase::query::preds::ATTR, 3),
            ("inT", 2),
            ("isaT", 2),
        ] {
            ctx.schema.insert(pred.to_string(), arity);
        }
        ctx.roots = vec!["inT".to_string(), "isaT".to_string()];
        for name in [
            "Proposition",
            "Class",
            "Token",
            "SimpleClass",
            "MetaClass",
            "Individual",
            "Assertion",
        ] {
            ctx.known_names.insert(name.to_string());
        }
        ctx
    }

    /// The admission context: [`LintContext::offline`] plus everything
    /// the KB already knows — object names, attribute labels, stored
    /// datalog rules and stored constraints.
    pub fn from_kb(kb: &telos::Kb) -> Self {
        let mut ctx = Self::offline();
        ctx.assume_new_heads_queryable = true;
        for i in 0..kb.len() {
            let id = telos::PropId(i as u32);
            let Ok(p) = kb.get(id) else { continue };
            if !p.is_believed() {
                continue;
            }
            if p.is_individual() {
                let name = kb.display(id);
                ctx.known_names.insert(name.clone());
                for attr in kb.attrs_of(id) {
                    if let Ok(a) = kb.get(attr) {
                        ctx.attr_labels.insert(kb.resolve(a.label).to_string());
                    }
                }
            }
        }
        ctx.stored_rules = objectbase::transform::stored_datalog_rules(kb);
        ctx.stored_constraints = stored_constraints(kb);
        if let Ok(edb) = objectbase::query::to_edb(kb) {
            for pred in edb.preds() {
                ctx.edb_cards
                    .insert(pred.to_string(), edb.count(pred) as f64);
            }
        }
        ctx
    }
}

/// Every stored constraint assertion: (reference, text).
fn stored_constraints(kb: &telos::Kb) -> Vec<(String, String)> {
    use objectbase::transform::markers;
    let Some(class) = kb.lookup(markers::CONSTRAINT) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for obj in kb.all_instances_of(class) {
        let name = kb.display(obj);
        for &t in &kb.attr_values(obj, markers::TEXT) {
            out.push((name.clone(), kb.display(t)));
        }
    }
    out
}

/// Lints `src`, which is either a CML script (`TELL … end` frames) or
/// a datalog program — detected by whether any line opens a frame.
pub fn lint_source(src: &str, ctx: &LintContext) -> Vec<Diagnostic> {
    lint_source_cached(src, ctx, &mut AnalysisCache::new())
}

/// [`lint_source`] through a long-lived [`AnalysisCache`], so repeat
/// admissions re-analyze only dirty SCCs.
pub fn lint_source_cached(
    src: &str,
    ctx: &LintContext,
    cache: &mut AnalysisCache,
) -> Vec<Diagnostic> {
    if source::looks_like_frames(src) {
        frames::lint_frames_src_cached(src, ctx, cache)
    } else {
        checks::lint_datalog_src_cached(src, ctx, cache)
    }
}

/// Renders the deductive evaluator's join plan and cost estimate for
/// the base closure program, the context's stored rules, and any extra
/// rules in `src` (may be empty), against the context's measured EDB
/// cardinalities — the engine behind the `Explain` wire op and
/// `\explain` in cbshell. Errors are the parse failure of `src`.
pub fn explain_source(src: &str, ctx: &LintContext) -> Result<String, String> {
    let mut program = objectbase::query::base_program();
    for text in &ctx.stored_rules {
        if let Ok(p) = datalog::ast::Program::parse_unchecked(&checks::dotted(text)) {
            program.rules.extend(p.rules);
        }
    }
    if !src.trim().is_empty() {
        let extra = datalog::ast::Program::parse_unchecked(src).map_err(|e| e.to_string())?;
        program.rules.extend(extra.rules);
    }
    Ok(cost::explain(&program, &ctx.edb_cards))
}

/// Sorts diagnostics into the stable reporting order: (line, code,
/// subject, message). Ties keep insertion order (stable sort), so
/// output no longer depends on hash-map iteration.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        a.line
            .unwrap_or(0)
            .cmp(&b.line.unwrap_or(0))
            .then_with(|| a.code.cmp(b.code))
            .then_with(|| a.subject.cmp(&b.subject))
            .then_with(|| a.message.cmp(&b.message))
    });
}

/// Renders diagnostics rustc-style against the source they were found
/// in. `origin` names the file (or stream) in the `-->` lines.
pub fn render(origin: &str, src: &str, diags: &[Diagnostic]) -> String {
    let lines: Vec<&str> = src.lines().collect();
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
        out.push_str(&format!("  subject: {}\n", d.subject));
        if let Some(n) = d.line {
            out.push_str(&format!("  --> {origin}:{n}\n"));
            if let Some(text) = lines.get(n - 1) {
                let gutter = n.to_string().len();
                out.push_str(&format!("  {:gutter$} |\n", ""));
                out.push_str(&format!("  {n} | {}\n", text.trim_end()));
                out.push_str(&format!("  {:gutter$} |\n", ""));
            }
        }
        if !d.witness.is_empty() {
            out.push_str(&format!("  = witness: {}\n", d.witness));
        }
        out.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    out.push_str(&format!(
        "{origin}: {errors} error(s), {warnings} warning(s)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_line_form() {
        let d = Diagnostic::error("CB001", "rule `r`", "bad").with_witness("variable `X`");
        assert_eq!(
            d.one_line(),
            "error[CB001] rule `r`: bad (witness: variable `X`)"
        );
        assert!(has_errors(&[d]));
        assert!(!has_errors(&[]));
    }

    #[test]
    fn offline_context_declares_edb_schema() {
        let ctx = LintContext::offline();
        assert_eq!(ctx.schema["attr"], 3);
        assert_eq!(ctx.schema["inT"], 2);
        assert!(ctx.known_names.contains("Proposition"));
    }

    #[test]
    fn render_includes_snippet_and_summary() {
        let src = "p(a).\nq(X) :- r(X).";
        let d = Diagnostic::warning("CB003", "rule `q(X) :- r(X).`", "nothing defines `r`")
            .at_line(Some(2));
        let s = render("test.dl", src, &[d]);
        assert!(s.contains("--> test.dl:2"));
        assert!(s.contains("2 | q(X) :- r(X)."));
        assert!(s.contains("0 error(s), 1 warning(s)"));
    }
}
