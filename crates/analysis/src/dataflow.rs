//! The dataflow tier of the analyzer: predicate **sort inference**
//! (CB010) and **termination/boundedness** analysis (CB011).
//!
//! Both analyses are per-SCC so the incremental engine
//! ([`crate::checks::AnalysisCache`]) can fingerprint and reuse their
//! results component by component.
//!
//! # CB010 — sort inference
//!
//! The deductive-relational bridge declares Telos sorts for the EDB
//! schema (`in_(any, class)`, `isa(class, class)`,
//! `attr(any, label, any)`, …). Sorts propagate through rule bodies:
//! within a rule a variable's sort is the *meet* of every position it
//! occurs at (the constraints intersect), and a predicate's inferred
//! signature position is the *join* over its rules of what flows into
//! the head. A meet of two incomparable concrete sorts — a variable
//! used both as a `class` and as a `label`, an `int` constant at a
//! `class` position — is a unification conflict, reported with the two
//! witness literals.
//!
//! # CB011 — termination / boundedness
//!
//! Over the argument-size dependency graph: a recursive rule is
//! *bounded* when some argument position of each recursive call is
//! size-decreasing — a constant, or a variable also constrained by a
//! positive literal outside the recursive component (the recursion
//! then descends along a finite extensional relation, like `path`
//! descending `edge`). A recursive rule none of whose recursive calls
//! has such a position (`p(X) :- p(X).`, `q(X, Y) :- q(Y, X).`) can
//! spin without deriving anything new — a divergence risk under
//! goal-directed evaluation and an unbounded cost under bottom-up —
//! and is flagged.

use crate::checks::SccRule;
use crate::Diagnostic;
use datalog::ast::{Term, Value};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// An inferred Telos sort for one predicate argument position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sort {
    /// Any object (the top of the lattice).
    Any,
    /// A class name (something instances can be `in`).
    Class,
    /// An attribute label.
    Label,
    /// An integer.
    Int,
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Any => write!(f, "any"),
            Sort::Class => write!(f, "class"),
            Sort::Label => write!(f, "label"),
            Sort::Int => write!(f, "int"),
        }
    }
}

impl Sort {
    /// The meet (greatest lower bound) of two constraints; `None` when
    /// they are incomparable concrete sorts — a unification conflict.
    pub fn meet(self, other: Sort) -> Option<Sort> {
        match (self, other) {
            (Sort::Any, s) | (s, Sort::Any) => Some(s),
            (a, b) if a == b => Some(a),
            _ => None,
        }
    }

    /// The join (least upper bound): what a predicate position holds
    /// when different rules contribute different sorts.
    pub fn join(self, other: Sort) -> Sort {
        if self == other {
            self
        } else {
            Sort::Any
        }
    }
}

/// The declared sorts of the deductive-relational bridge's EDB schema
/// and base IDB — the seeds sort inference propagates from.
pub fn declared_sorts(pred: &str) -> Option<Vec<Sort>> {
    match pred {
        "in_" | "inT" => Some(vec![Sort::Any, Sort::Class]),
        "isa" | "isaT" => Some(vec![Sort::Class, Sort::Class]),
        "attr" => Some(vec![Sort::Any, Sort::Label, Sort::Any]),
        _ => None,
    }
}

fn const_sort(v: &Value) -> Sort {
    match v {
        Value::Int(_) => Sort::Int,
        _ => Sort::Any,
    }
}

/// Infers signatures for the predicates of one SCC from `rules` (every
/// rule whose head is in the component), reading dependency signatures
/// from `sigs` and writing the component's own into it. Unification
/// conflicts inside *unit* rules are reported as CB010.
///
/// Runs the propagation to a fixpoint first (sorts only climb the join
/// lattice, so it converges in a handful of rounds), then one reporting
/// pass so a conflict is diagnosed exactly once.
pub(crate) fn infer_scc_sorts(
    scc_preds: &[&str],
    rules: &[SccRule<'_>],
    sigs: &mut HashMap<String, Vec<Sort>>,
    diags: &mut Vec<Diagnostic>,
) {
    // Working signatures for the component's own predicates, with a
    // real bottom (`None` = nothing contributed yet) so the first rule
    // seeds a position instead of being absorbed by a placeholder.
    let mut work: HashMap<String, Vec<Option<Sort>>> = HashMap::new();
    for p in scc_preds {
        if let Some(declared) = sigs.get(*p).cloned().or_else(|| declared_sorts(p)) {
            work.insert((*p).to_string(), declared.into_iter().map(Some).collect());
        }
    }
    // Fixpoint: propagate without reporting (sorts only climb the join
    // lattice, so this converges in a handful of rounds).
    let cap = 2 * rules.len() + 2;
    for _ in 0..cap {
        let mut changed = false;
        for r in rules {
            propagate_rule(r, sigs, &mut work, &mut changed, None);
        }
        if !changed {
            break;
        }
    }
    // Reporting pass, so a conflict is diagnosed exactly once.
    let mut changed = false;
    for r in rules {
        propagate_rule(r, sigs, &mut work, &mut changed, Some(diags));
    }
    // Export: unknown positions widen to Any; predicates nothing
    // constrained export all-Any of their head arity.
    for r in rules {
        let pred = r.rule.head.pred.as_str();
        if !sigs.contains_key(pred) || work.contains_key(pred) {
            let sig = match work.get(pred) {
                Some(w) => w.iter().map(|s| s.unwrap_or(Sort::Any)).collect(),
                None => vec![Sort::Any; r.rule.head.args.len()],
            };
            sigs.insert(pred.to_string(), sig);
        }
    }
}

/// One propagation step for one rule: meet body constraints into the
/// variable environment, then join the head row into the predicate's
/// working signature. When `diags` is given, conflicts are reported
/// (only for unit rules — base rules were vetted at their own
/// admission).
fn propagate_rule(
    r: &SccRule<'_>,
    sigs: &HashMap<String, Vec<Sort>>,
    work: &mut HashMap<String, Vec<Option<Sort>>>,
    changed: &mut bool,
    mut diags: Option<&mut Vec<Diagnostic>>,
) {
    // var -> (sort, literal text that established it)
    let mut env: HashMap<&str, (Sort, String)> = HashMap::new();
    for lit in &r.rule.body {
        let sig: Vec<Sort> = match work.get(lit.atom.pred.as_str()) {
            Some(w) => w.iter().map(|s| s.unwrap_or(Sort::Any)).collect(),
            None => match sigs.get(&lit.atom.pred) {
                Some(s) => s.clone(),
                None => match declared_sorts(&lit.atom.pred) {
                    Some(s) => s,
                    None => continue,
                },
            },
        };
        for (j, t) in lit.atom.args.iter().enumerate() {
            let Some(&pos_sort) = sig.get(j) else { break };
            if pos_sort == Sort::Any {
                continue;
            }
            match t {
                Term::Const(v) => {
                    if const_sort(v).meet(pos_sort).is_none() {
                        if let Some(d) = diags.as_deref_mut() {
                            report_conflict(
                                r,
                                d,
                                format!(
                                    "sort conflict: constant `{v}` at the {pos_sort} \
                                     position of `{}`",
                                    lit.atom.pred
                                ),
                                format!("`{}`", lit.atom),
                            );
                        }
                    }
                }
                Term::Var(name) => match env.get(name.as_str()) {
                    None => {
                        env.insert(name.as_str(), (pos_sort, format!("`{}`", lit.atom)));
                    }
                    Some((prev, prev_witness)) => match prev.meet(pos_sort) {
                        Some(met) => {
                            if met != *prev {
                                let w = format!("`{}`", lit.atom);
                                env.insert(name.as_str(), (met, w));
                            }
                        }
                        None => {
                            if let Some(d) = diags.as_deref_mut() {
                                report_conflict(
                                    r,
                                    d,
                                    format!(
                                        "sort conflict: variable `{name}` is used as \
                                         `{prev}` and as `{pos_sort}`"
                                    ),
                                    format!("{prev_witness} vs `{}`", lit.atom),
                                );
                            }
                        }
                    },
                },
            }
        }
    }
    // Join the head row into the working signature. `None` is a real
    // bottom, so the first rule to reach a position seeds it and later
    // rules join in.
    let head = &r.rule.head;
    let incoming: Vec<Sort> = head
        .args
        .iter()
        .map(|t| match t {
            Term::Const(v) => const_sort(v),
            Term::Var(name) => env.get(name.as_str()).map_or(Sort::Any, |(s, _)| *s),
        })
        .collect();
    let sig = work
        .entry(head.pred.clone())
        .or_insert_with(|| vec![None; head.args.len()]);
    if sig.len() == head.args.len() {
        for (j, s) in incoming.iter().enumerate() {
            let joined = match sig[j] {
                None => Some(*s),
                Some(prev) => Some(prev.join(*s)),
            };
            if joined != sig[j] {
                sig[j] = joined;
                *changed = true;
            }
        }
    }
}

fn report_conflict(r: &SccRule<'_>, diags: &mut Vec<Diagnostic>, message: String, witness: String) {
    let Some(subject) = r.subject else {
        return;
    };
    let d = Diagnostic::warning("CB010", subject, message)
        .with_witness(format!("{witness} in `{}`", r.rule))
        .at_line(r.line);
    if !diags.contains(&d) {
        diags.push(d);
    }
}

/// CB011 over one recursive SCC: flags every *unit* rule whose
/// recursive calls all lack a size-decreasing argument position.
pub(crate) fn check_termination(
    scc_preds: &HashSet<&str>,
    rules: &[SccRule<'_>],
    diags: &mut Vec<Diagnostic>,
) {
    for r in rules {
        let Some(subject) = r.subject else {
            continue;
        };
        let recursive: Vec<_> = r
            .rule
            .body
            .iter()
            .filter(|l| !l.negated && scc_preds.contains(l.atom.pred.as_str()))
            .collect();
        if recursive.is_empty() {
            continue;
        }
        // Variables constrained by a positive literal outside the
        // component — the finite relations recursion can descend.
        let external: HashSet<&str> = r
            .rule
            .body
            .iter()
            .filter(|l| !l.negated && !scc_preds.contains(l.atom.pred.as_str()))
            .flat_map(|l| l.atom.vars())
            .collect();
        for call in &recursive {
            let bounded = call.atom.args.iter().any(|t| match t {
                Term::Const(_) => true,
                Term::Var(v) => external.contains(v.as_str()),
            });
            if !bounded {
                let mut cycle: Vec<&str> = scc_preds.iter().copied().collect();
                cycle.sort_unstable();
                diags.push(
                    Diagnostic::warning(
                        "CB011",
                        subject,
                        format!(
                            "recursion may diverge: no argument of recursive call \
                             `{}` is size-decreasing (bounded by an extensional or \
                             lower-stratum literal)",
                            call.atom
                        ),
                    )
                    .with_witness(format!(
                        "cycle through {{{}}} in `{}`",
                        cycle.join(", "),
                        r.rule
                    ))
                    .at_line(r.line),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::ast::Program;

    fn scc_rules(p: &Program) -> Vec<SccRule<'_>> {
        p.rules
            .iter()
            .map(|rule| SccRule {
                rule,
                subject: Some("rule"),
                line: None,
                text_hash: 0,
            })
            .collect()
    }

    #[test]
    fn meet_and_join_laws() {
        assert_eq!(Sort::Any.meet(Sort::Class), Some(Sort::Class));
        assert_eq!(Sort::Class.meet(Sort::Class), Some(Sort::Class));
        assert_eq!(Sort::Class.meet(Sort::Label), None);
        assert_eq!(Sort::Class.join(Sort::Label), Sort::Any);
        assert_eq!(Sort::Int.join(Sort::Int), Sort::Int);
    }

    #[test]
    fn signatures_propagate_through_bodies() {
        let p = Program::parse("classy(C) :- isaT(C, _D).").unwrap();
        let rules = scc_rules(&p);
        let mut sigs = HashMap::new();
        let mut diags = Vec::new();
        infer_scc_sorts(&["classy"], &rules, &mut sigs, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(sigs["classy"], vec![Sort::Class]);
    }

    #[test]
    fn class_label_clash_is_a_conflict() {
        let p = Program::parse("p(X) :- isaT(X, _D), attr(_O, X, _V).").unwrap();
        let rules = scc_rules(&p);
        let mut sigs = HashMap::new();
        let mut diags = Vec::new();
        infer_scc_sorts(&["p"], &rules, &mut sigs, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "CB010");
        assert!(diags[0].message.contains("`class`"));
        assert!(diags[0].message.contains("`label`"));
        assert!(diags[0].witness.contains("vs"));
    }

    #[test]
    fn int_constant_at_class_position_is_a_conflict() {
        let p = Program::parse("q(X) :- inT(X, 5).").unwrap();
        let rules = scc_rules(&p);
        let mut sigs = HashMap::new();
        let mut diags = Vec::new();
        infer_scc_sorts(&["q"], &rules, &mut sigs, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("constant `5`"));
    }

    #[test]
    fn unbounded_self_recursion_flagged() {
        let p = Program::parse("p(X) :- p(X).").unwrap();
        let rules = scc_rules(&p);
        let mut diags = Vec::new();
        check_termination(&HashSet::from(["p"]), &rules, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "CB011");
    }

    #[test]
    fn descending_recursion_is_bounded() {
        let p = Program::parse("path(X, Z) :- edge(X, Y), path(Y, Z).").unwrap();
        let rules = scc_rules(&p);
        let mut diags = Vec::new();
        check_termination(&HashSet::from(["path"]), &rules, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn argument_permutation_flagged() {
        let p = Program::parse("spin(X, Y) :- spin(Y, X).").unwrap();
        let rules = scc_rules(&p);
        let mut diags = Vec::new();
        check_termination(&HashSet::from(["spin"]), &rules, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].witness.contains("spin"));
    }
}
