//! The CML-side checks: assertion texts of constraints and rules in
//! `TELL … end` frames — well-formedness, sort correctness, datalog
//! rule admission, and ground constraint contradiction.

use crate::checks::{self, AnalysisCache, RuleUnit};
use crate::{source, Diagnostic, LintContext};
use datalog::ast::Program;
use objectbase::transform::is_datalog_text;
use objectbase::ObjectFrame;
use std::collections::{HashMap, HashSet};
use telos::assertion::{self, Atom, Expr};

/// One constraint's contribution to the contradiction check:
/// (owner reference, implied ground literals, source line).
type Implication = (String, Vec<(String, bool)>, Option<usize>);

/// Lints a CML script: parses the frames, then runs
/// [`lint_frames`] with frame start lines attached.
pub fn lint_frames_src(src: &str, ctx: &LintContext) -> Vec<Diagnostic> {
    lint_frames_src_cached(src, ctx, &mut AnalysisCache::new())
}

/// [`lint_frames_src`] through a long-lived [`AnalysisCache`].
pub fn lint_frames_src_cached(
    src: &str,
    ctx: &LintContext,
    cache: &mut AnalysisCache,
) -> Vec<Diagnostic> {
    let frames = match ObjectFrame::parse_all(src) {
        Ok(f) => f,
        Err(e) => {
            return vec![Diagnostic::error("CB000", "script", e.to_string())];
        }
    };
    let lines = source::frame_lines(src);
    let with_lines: Vec<(ObjectFrame, Option<usize>)> = frames
        .into_iter()
        .enumerate()
        .map(|(i, f)| (f, lines.get(i).copied()))
        .collect();
    lint_frames_spanned(&with_lines, Some(src), ctx, cache)
}

/// Lints frames without source text (the admission path: the frames
/// are already parsed and spans are unknown).
pub fn lint_frames(frames: &[ObjectFrame], ctx: &LintContext) -> Vec<Diagnostic> {
    lint_frames_cached(frames, ctx, &mut AnalysisCache::new())
}

/// [`lint_frames`] through a long-lived [`AnalysisCache`] — the GKBMS
/// admission path, where O(delta) matters.
pub fn lint_frames_cached(
    frames: &[ObjectFrame],
    ctx: &LintContext,
    cache: &mut AnalysisCache,
) -> Vec<Diagnostic> {
    let with_lines: Vec<(ObjectFrame, Option<usize>)> =
        frames.iter().map(|f| (f.clone(), None)).collect();
    lint_frames_spanned(&with_lines, None, ctx, cache)
}

fn lint_frames_spanned(
    frames: &[(ObjectFrame, Option<usize>)],
    src: Option<&str>,
    ctx: &LintContext,
    cache: &mut AnalysisCache,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // The script's own vocabulary joins the context's.
    let mut classes: HashSet<String> = ctx.known_names.clone();
    let mut labels: HashSet<String> = ctx.attr_labels.clone();
    for (f, _) in frames {
        classes.insert(f.name.clone());
        for a in &f.attrs {
            labels.insert(a.label.clone());
        }
        for (name, _) in f.constraints.iter().chain(&f.rules) {
            labels.insert(name.clone());
        }
    }

    let mut rule_units: Vec<RuleUnit> = Vec::new();
    // (owner reference, implied ground literals) per constraint.
    let mut implications: Vec<Implication> = Vec::new();

    for (f, frame_line) in frames {
        for (kind, name, text) in f
            .constraints
            .iter()
            .map(|(n, t)| ("constraint", n, t))
            .chain(f.rules.iter().map(|(n, t)| ("rule", n, t)))
        {
            let subject = format!("{kind} `{}!{name}`", f.name);
            let line = src
                .and_then(|s| source::find_from(s, frame_line.unwrap_or(1), name))
                .or(*frame_line);
            if kind == "rule" && is_datalog_text(text) {
                match Program::parse_unchecked(&checks::dotted(text)) {
                    Ok(p) => rule_units.extend(p.rules.into_iter().map(|rule| RuleUnit {
                        subject: subject.clone(),
                        line,
                        rule,
                    })),
                    Err(e) => diags.push(
                        Diagnostic::error("CB008", &subject, e.to_string())
                            .with_witness(text.clone())
                            .at_line(line),
                    ),
                }
                continue;
            }
            let expr = match assertion::parse(text) {
                Ok(e) => e,
                Err(e) => {
                    diags.push(
                        Diagnostic::error("CB008", &subject, format!("malformed assertion: {e}"))
                            .with_witness(text.clone())
                            .at_line(line),
                    );
                    continue;
                }
            };
            for issue in
                assertion::sort_check(&expr, &|c| classes.contains(c), &|l| labels.contains(l))
            {
                diags.push(
                    Diagnostic::warning("CB009", &subject, issue.to_string())
                        .with_witness(text.clone())
                        .at_line(line),
                );
            }
            if kind == "constraint" {
                implications.push((subject.clone(), implied_literals(&expr), line));
            }
        }
    }

    check_contradictions(&implications, ctx, &mut diags);

    if !rule_units.is_empty() {
        // A frame-attached rule is queryable by name, so its head is a
        // reachability root: the dead-rule check bites on datalog
        // programs with `% query:` directives, not here.
        let mut roots = ctx.roots.clone();
        roots.extend(rule_units.iter().map(|u| u.rule.head.pred.clone()));
        diags.extend(checks::lint_rules_cached(
            &rule_units,
            ctx,
            &roots,
            true,
            cache,
        ));
    }
    crate::sort_diagnostics(&mut diags);
    diags
}

/// CB007 — two constraints that can never hold together: one implies a
/// ground atom the other implies the negation of.
fn check_contradictions(
    implications: &[Implication],
    ctx: &LintContext,
    diags: &mut Vec<Diagnostic>,
) {
    // polarity per ground-atom key, with the first constraint that
    // asserted it.
    let mut asserted: HashMap<(String, bool), String> = HashMap::new();
    for (owner, text) in &ctx.stored_constraints {
        if let Ok(expr) = assertion::parse(text) {
            for (key, pol) in implied_literals(&expr) {
                asserted
                    .entry((key, pol))
                    .or_insert_with(|| format!("stored constraint `{owner}`"));
            }
        }
    }
    for (subject, literals, line) in implications {
        for (key, pol) in literals {
            if let Some(other) = asserted.get(&(key.clone(), !pol)) {
                let (pos, neg) = if *pol {
                    (subject.as_str(), other.as_str())
                } else {
                    (other.as_str(), subject.as_str())
                };
                diags.push(
                    Diagnostic::error(
                        "CB007",
                        subject,
                        format!("can never hold together with {other}"),
                    )
                    .with_witness(format!("{pos} asserts `{key}`; {neg} asserts its negation"))
                    .at_line(*line),
                );
            }
            asserted
                .entry((key.clone(), *pol))
                .or_insert_with(|| subject.clone());
        }
    }
}

/// The ground literals a constraint certainly implies: the polarity-
/// aware walk stops at quantifiers, so every term it sees denotes a
/// specific object. `Ne` normalizes to negated `Eq` (with sorted
/// operands) and a positive `x.l = y` also implies `x.l defined`.
fn implied_literals(expr: &Expr) -> Vec<(String, bool)> {
    fn walk(e: &Expr, positive: bool, out: &mut Vec<(String, bool)>) {
        match e {
            Expr::And(a, b) if positive => {
                walk(a, true, out);
                walk(b, true, out);
            }
            Expr::Or(a, b) if !positive => {
                walk(a, false, out);
                walk(b, false, out);
            }
            Expr::Implies(a, b) if !positive => {
                // ¬(a ⟹ b) ⟺ a ∧ ¬b
                walk(a, true, out);
                walk(b, false, out);
            }
            Expr::Not(a) => walk(a, !positive, out),
            Expr::Atom(atom) => out.extend(atom_key(atom, positive)),
            _ => {}
        }
    }
    let mut out = Vec::new();
    walk(expr, true, &mut out);
    out
}

fn atom_key(atom: &Atom, positive: bool) -> Vec<(String, bool)> {
    match atom {
        Atom::In(x, c) => vec![(format!("{x} in {c}"), positive)],
        Atom::Isa(c, d) => vec![(format!("{c} isa {d}"), positive)],
        Atom::Eq(x, y) => vec![(eq_key(&x.0, &y.0), positive)],
        Atom::Ne(x, y) => vec![(eq_key(&x.0, &y.0), !positive)],
        Atom::HasAttr(x, l, y) => {
            let mut keys = vec![(format!("{x}.{l} = {y}"), positive)];
            if positive {
                keys.push((format!("{x}.{l} defined"), true));
            }
            keys
        }
        Atom::AttrDefined(x, l) => vec![(format!("{x}.{l} defined"), positive)],
    }
}

fn eq_key(x: &str, y: &str) -> String {
    let (a, b) = if x <= y { (x, y) } else { (y, x) };
    format!("{a} = {b}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{has_errors, Severity};

    fn lint(src: &str) -> Vec<Diagnostic> {
        lint_frames_src(src, &LintContext::offline())
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_script_is_clean() {
        let d = lint(
            "TELL Person end\n\
             TELL Paper with\n\
               attribute author : Person\n\
               constraint authored : $ forall p/Paper p.author defined $\n\
             end",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn malformed_assertion_is_cb008() {
        let d = lint("TELL Paper with constraint c : $ forall broken $ end");
        assert_eq!(codes(&d), vec!["CB008"]);
        assert!(has_errors(&d));
    }

    #[test]
    fn sort_errors_are_cb009_warnings() {
        let d = lint(
            "TELL Paper with\n\
               constraint c : $ forall g/Ghost g.phantom defined $\n\
             end",
        );
        assert_eq!(codes(&d), vec!["CB009", "CB009"]);
        assert!(d.iter().all(|d| d.severity == Severity::Warning));
        assert_eq!(d[0].line, Some(2));
    }

    #[test]
    fn ground_contradiction_is_cb007() {
        let d = lint(
            "TELL Paper end\n\
             TELL p1 in Paper end\n\
             TELL Review with\n\
               constraint yes : $ p1.status = approved $\n\
             end\n\
             TELL Audit with\n\
               constraint no : $ not (p1.status = approved) $\n\
             end",
        );
        let cb007: Vec<_> = d.iter().filter(|d| d.code == "CB007").collect();
        assert_eq!(cb007.len(), 1, "{d:?}");
        assert!(cb007[0].witness.contains("p1.status = approved"));
        assert!(has_errors(&d));
    }

    #[test]
    fn eq_ne_contradiction_detected() {
        let d = lint(
            "TELL A with constraint c1 : $ x = y $ end\n\
             TELL B with constraint c2 : $ y <> x $ end",
        );
        assert!(codes(&d).contains(&"CB007"), "{d:?}");
    }

    #[test]
    fn hasattr_implies_defined() {
        let d = lint(
            "TELL A with constraint c1 : $ p.status = ok $ end\n\
             TELL B with constraint c2 : $ not (p.status defined) $ end",
        );
        assert!(codes(&d).contains(&"CB007"), "{d:?}");
    }

    #[test]
    fn datalog_rule_sections_run_datalog_checks() {
        let d = lint(
            "TELL Game with\n\
               rule w : $ win(X) :- move(X, Y), not win(Y) $\n\
             end",
        );
        assert!(codes(&d).contains(&"CB002"), "{d:?}");
        let cb002 = d.iter().find(|d| d.code == "CB002").unwrap();
        assert!(cb002.subject.contains("Game!w"));
    }

    #[test]
    fn contradiction_against_stored_constraint() {
        let mut ctx = LintContext::offline();
        ctx.stored_constraints
            .push(("Review!yes".into(), "p1 in Approved".into()));
        let d = lint_frames_src(
            "TELL Audit with constraint no : $ not (p1 in Approved) $ end",
            &ctx,
        );
        assert!(codes(&d).contains(&"CB007"), "{d:?}");
        let cb007 = d.iter().find(|d| d.code == "CB007").unwrap();
        assert!(cb007.message.contains("Review!yes"));
    }

    #[test]
    fn quantified_constraints_do_not_contradict() {
        let d = lint(
            "TELL Paper with\n\
               attribute author : Paper\n\
               constraint c1 : $ forall p/Paper p.author defined $\n\
               constraint c2 : $ forall p/Paper (not (p.author defined)) $\n\
             end",
        );
        // Both constraints are quantified: the trivial-unification
        // check stays silent (no ground witness).
        assert!(!codes(&d).contains(&"CB007"), "{d:?}");
    }
}
