//! Best-effort source mapping: the parsers do not track positions, so
//! the linter recovers statement/frame start lines with a light scan
//! of the text.

/// Whether the source is a CML script (`TELL … end` frames) rather
/// than a datalog program.
pub fn looks_like_frames(src: &str) -> bool {
    src.lines()
        .any(|l| l.trim_start().starts_with("TELL ") || l.trim() == "TELL")
}

/// The 1-based start line of each datalog statement, in order. A
/// statement ends at a `.` outside a quoted string; `%` comments out
/// the rest of the line.
pub fn statement_lines(src: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut in_string = false;
    let mut in_comment = false;
    let mut start: Option<usize> = None;
    for c in src.chars() {
        match c {
            '\n' => {
                line += 1;
                in_comment = false;
            }
            _ if in_comment => {}
            '"' => {
                in_string = !in_string;
                start.get_or_insert(line);
            }
            '%' if !in_string => in_comment = true,
            '.' if !in_string => {
                if let Some(s) = start.take() {
                    out.push(s);
                }
            }
            c if c.is_whitespace() => {}
            _ => {
                start.get_or_insert(line);
            }
        }
    }
    out
}

/// The query roots declared by `% query: pred` directives.
pub fn query_directives(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in src.lines() {
        let t = line.trim_start();
        let Some(rest) = t.strip_prefix("%") else {
            continue;
        };
        let Some(names) = rest.trim_start().strip_prefix("query:") else {
            continue;
        };
        for name in names.split(',') {
            let name: String = name
                .trim()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                out.push(name);
            }
        }
    }
    out
}

/// The view name declared by a `% view: name` directive, which asks
/// for the CB013 maintainability lint over the file's rules.
pub fn view_directive(src: &str) -> Option<String> {
    directive_value(src, "view:").map(|v| {
        v.chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect()
    })
}

/// The `% churn: TELLS UNTELLS` directive: an observed write mix for
/// the CB013 churn heuristic.
pub fn churn_directive(src: &str) -> Option<(u64, u64)> {
    let v = directive_value(src, "churn:")?;
    let mut parts = v.split_whitespace();
    let tells = parts.next()?.parse().ok()?;
    let untells = parts.next()?.parse().ok()?;
    Some((tells, untells))
}

fn directive_value(src: &str, key: &str) -> Option<String> {
    for line in src.lines() {
        let t = line.trim_start();
        let Some(rest) = t.strip_prefix("%") else {
            continue;
        };
        if let Some(v) = rest.trim_start().strip_prefix(key) {
            return Some(v.trim().to_string());
        }
    }
    None
}

/// The 1-based line each `TELL` frame starts on, in order.
pub fn frame_lines(src: &str) -> Vec<usize> {
    src.lines()
        .enumerate()
        .filter(|(_, l)| l.trim_start().starts_with("TELL ") || l.trim() == "TELL")
        .map(|(i, _)| i + 1)
        .collect()
}

/// The line of the first occurrence of `needle` at or after
/// `from_line` (1-based), for pointing at a constraint/rule name
/// inside its frame.
pub fn find_from(src: &str, from_line: usize, needle: &str) -> Option<usize> {
    src.lines()
        .enumerate()
        .skip(from_line.saturating_sub(1))
        .find(|(_, l)| l.contains(needle))
        .map(|(i, _)| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statement_lines_skip_comments_and_strings() {
        let src = "% header\nedge(a, b).\n\n% note\npath(X, Y) :-\n  edge(X, Y).\np(\"a.b\").";
        assert_eq!(statement_lines(src), vec![2, 5, 7]);
    }

    #[test]
    fn query_directives_parse_lists() {
        let src = "% query: path\n%query: reach, win(X)\nedge(a, b).";
        assert_eq!(query_directives(src), vec!["path", "reach", "win"]);
    }

    #[test]
    fn frame_detection_and_lines() {
        let src =
            "% intro\nTELL Paper end\n\nTELL Minutes isA Paper with\n  attribute a : Paper\nend";
        assert!(looks_like_frames(src));
        assert_eq!(frame_lines(src), vec![2, 4]);
        assert!(!looks_like_frames("p(a)."));
    }

    #[test]
    fn find_from_locates_names() {
        let src = "TELL A with\n  constraint c1 : $ true $\nend";
        assert_eq!(find_from(src, 1, "c1"), Some(2));
        assert_eq!(find_from(src, 3, "c1"), None);
    }
}
