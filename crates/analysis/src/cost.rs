//! The cost tier of the analyzer: **cardinality and join-cost
//! estimation** (CB012) over the indexed hash-join planner, and the
//! **IVM-maintainability lint** (CB013) for registered views.
//!
//! # CB012 — join-cost estimation
//!
//! The model mirrors the semi-naive evaluator's actual plan
//! ([`datalog::seminaive::plan_masks`]): positive literals first, each
//! probing the per-predicate hash index on the binding-pattern mask the
//! planner would use. Costs follow a textbook System-R-style estimate:
//!
//! * a literal with an empty mask is a **scan** — every tuple of the
//!   relation joins with every intermediate row (a cross join unless it
//!   is the first literal);
//! * a literal with `k` bound positions is a **probe** — assuming
//!   `√n` distinct values per column, each probe matches
//!   `n / (√n)^k` tuples;
//! * negated literals are semijoin filters: one probe per row, no
//!   growth.
//!
//! Recursive components iterate to fixpoint; the worst-case stratum
//! cost multiplies the per-round cost by `√rows` estimated rounds.
//! Rules whose worst-case cost exceeds [`COST_BUDGET`] and joins that
//! cross-multiply past [`CROSS_ROWS_WARN`] intermediate rows are
//! flagged. The same machinery renders `\explain` plans.
//!
//! # CB013 — IVM maintainability
//!
//! A registered view is maintained incrementally (DRed for deletions).
//! Two situations make that expensive enough to warn about at
//! `register_view` time: a recursive stratum estimated at
//! [`DRED_WARN_TUPLES`] or more tuples (every UNTELL triggers
//! overdelete/rederive over it), and an observed TELL/UNTELL mix with a
//! high deletion share (the view will churn).

use crate::checks::SccRule;
use crate::Diagnostic;
use datalog::ast::{Program, Rule};
use datalog::depgraph::DepGraph;
use datalog::seminaive::plan_masks;
use std::collections::HashMap;

/// Assumed rows per EDB relation when no measured cardinality is
/// available (offline `cblint` runs).
pub const DEFAULT_EDB_ROWS: f64 = 1000.0;

/// Worst-case per-stratum cost above which CB012 warns.
pub const COST_BUDGET: f64 = 1e8;

/// Estimated intermediate rows after an unbound (cross) join above
/// which CB012 warns.
pub const CROSS_ROWS_WARN: f64 = 1e6;

/// Estimated tuples in a recursive stratum above which CB013 warns
/// that DRed maintenance will be expensive.
pub const DRED_WARN_TUPLES: f64 = 10_000.0;

/// Minimum observed TELL/UNTELL events before CB013 trusts the mix.
pub const CHURN_MIN_EVENTS: u64 = 20;

/// Deletion share of the observed mix above which CB013 warns.
pub const CHURN_DELETE_SHARE: f64 = 0.2;

/// Measured or assumed cardinalities, predicate name → estimated rows.
/// Unknown predicates estimate [`DEFAULT_EDB_ROWS`].
pub fn card(cards: &HashMap<String, f64>, pred: &str) -> f64 {
    cards
        .get(pred)
        .copied()
        .unwrap_or(DEFAULT_EDB_ROWS)
        .max(1.0)
}

/// The cost estimate for one rule under the planner's join order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleCost {
    /// Estimated output rows (before head projection).
    pub rows: f64,
    /// Estimated probe/scan work to produce them, one fixpoint round.
    pub cost: f64,
}

/// Estimates one rule bottom-up along the exact join order and binding
/// masks the evaluator compiles ([`plan_masks`]). When `diags` is
/// given, cross joins past [`CROSS_ROWS_WARN`] are reported against
/// `subject` as CB012.
pub fn rule_cost(
    rule: &Rule,
    cards: &HashMap<String, f64>,
    mut report: Option<(&str, Option<usize>, &mut Vec<Diagnostic>)>,
) -> RuleCost {
    let mut rows = 1.0f64;
    let mut cost = 0.0f64;
    for (i, mask) in plan_masks(rule) {
        let lit = &rule.body[i];
        let n = card(cards, &lit.atom.pred);
        if lit.negated {
            // Semijoin filter: one probe per intermediate row.
            cost += rows;
            continue;
        }
        if mask == 0 {
            // Scan: every tuple pairs with every intermediate row.
            cost += rows * n;
            let before = rows;
            rows *= n;
            if before > 1.0 && rows >= CROSS_ROWS_WARN {
                if let Some((subject, line, diags)) = report.as_mut() {
                    diags.push(
                        Diagnostic::warning(
                            "CB012",
                            *subject,
                            format!(
                                "cross join: `{}` has no bound argument at its turn \
                                 in the plan (~{} intermediate rows)",
                                lit.atom,
                                approx(rows)
                            ),
                        )
                        .with_witness(format!("`{}` in `{rule}`", lit.atom))
                        .at_line(*line),
                    );
                }
            }
        } else {
            // Probe on `k` bound columns; √n distinct values per
            // column ⇒ n / (√n)^k matches per probe.
            let k = mask.count_ones() as f64;
            let matches = (n / n.sqrt().powf(k)).max(1.0).min(n);
            cost += rows * (1.0 + matches);
            rows *= matches;
        }
    }
    RuleCost { rows, cost }
}

/// CB012 over one SCC: estimates every rule, derives the component's
/// head cardinalities into `cards`, and reports unit rules whose
/// worst-case stratum cost exceeds [`COST_BUDGET`].
pub(crate) fn estimate_scc(
    scc_preds: &[&str],
    rules: &[SccRule<'_>],
    recursive: bool,
    cards: &mut HashMap<String, f64>,
    diags: &mut Vec<Diagnostic>,
) {
    let mut head_rows: HashMap<&str, f64> = scc_preds.iter().map(|p| (*p, 0.0)).collect();
    let mut round_cost = 0.0f64;
    let mut per_rule: Vec<(usize, RuleCost)> = Vec::with_capacity(rules.len());
    for (idx, r) in rules.iter().enumerate() {
        let rc = rule_cost(r.rule, cards, r.subject.map(|s| (s, r.line, &mut *diags)));
        round_cost += rc.cost;
        if let Some(e) = head_rows.get_mut(r.rule.head.pred.as_str()) {
            *e += rc.rows;
        }
        per_rule.push((idx, rc));
    }
    let max_rows = head_rows.values().fold(0.0f64, |a, &b| a.max(b));
    // Fixpoint rounds until nothing new derives: √rows is the classic
    // heuristic between best case (1 round) and worst (rows rounds).
    let rounds = if recursive {
        max_rows.sqrt().max(1.0)
    } else {
        1.0
    };
    let stratum_cost = round_cost * rounds;
    if stratum_cost >= COST_BUDGET {
        // Charge the most expensive unit rule of the component.
        if let Some((idx, rc)) = per_rule
            .iter()
            .filter(|(i, _)| rules[*i].subject.is_some())
            .max_by(|a, b| a.1.cost.total_cmp(&b.1.cost))
        {
            let r = &rules[*idx];
            let subject = r.subject.expect("filtered to unit rules");
            diags.push(
                Diagnostic::warning(
                    "CB012",
                    subject,
                    format!(
                        "estimated evaluation cost ~{} exceeds the budget of {} \
                         (rule contributes ~{} per fixpoint round{})",
                        approx(stratum_cost),
                        approx(COST_BUDGET),
                        approx(rc.cost),
                        if recursive {
                            format!(", ~{} rounds", approx(rounds))
                        } else {
                            String::new()
                        }
                    ),
                )
                .with_witness(format!("`{}`", r.rule))
                .at_line(r.line),
            );
        }
    }
    // Export head cardinalities for downstream components.
    for (p, r) in head_rows {
        cards.insert(p.to_string(), r.max(1.0));
    }
}

/// Renders the evaluator's plan and cost estimate for every rule of
/// `program` — the payload of the `Explain` wire op and `\explain`.
pub fn explain(program: &Program, cards: &HashMap<String, f64>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let graph = DepGraph::of(program);
    let sccs = graph.sccs();
    let mut local: HashMap<String, f64> = cards.clone();
    let mut total = 0.0f64;
    for c in 0..sccs.comps.len() {
        let recursive = sccs.is_recursive(&graph, c);
        let preds: Vec<&str> = sccs.comps[c].iter().map(|&n| graph.name(n)).collect();
        if !program
            .rules
            .iter()
            .any(|r| preds.contains(&r.head.pred.as_str()))
        {
            // Pure-EDB component: keep the measured cardinality.
            continue;
        }
        let mut round_cost = 0.0f64;
        let mut head_rows: HashMap<&str, f64> = preds.iter().map(|p| (*p, 0.0)).collect();
        for rule in program
            .rules
            .iter()
            .filter(|r| preds.contains(&r.head.pred.as_str()))
        {
            let rc = rule_cost(rule, &local, None);
            let _ = writeln!(out, "rule `{rule}`");
            for (i, mask) in plan_masks(rule) {
                let lit = &rule.body[i];
                let n = card(&local, &lit.atom.pred);
                let how = if lit.negated {
                    "filter (negated)".to_string()
                } else if mask == 0 {
                    format!("scan ~{} rows", approx(n))
                } else {
                    format!("probe index on {} bound arg(s)", mask.count_ones())
                };
                let _ = writeln!(out, "  {} `{}`: {how}", i + 1, lit.atom);
            }
            let _ = writeln!(
                out,
                "  => ~{} rows, cost ~{} per round",
                approx(rc.rows),
                approx(rc.cost)
            );
            round_cost += rc.cost;
            if let Some(e) = head_rows.get_mut(rule.head.pred.as_str()) {
                *e += rc.rows;
            }
        }
        let max_rows = head_rows.values().fold(0.0f64, |a, &b| a.max(b));
        let rounds = if recursive {
            max_rows.sqrt().max(1.0)
        } else {
            1.0
        };
        let stratum = round_cost * rounds;
        if round_cost > 0.0 {
            let mut names: Vec<&str> = preds.clone();
            names.sort_unstable();
            let _ = writeln!(
                out,
                "stratum {{{}}}: {}estimated cost ~{}",
                names.join(", "),
                if recursive {
                    format!("recursive, ~{} rounds, ", approx(rounds))
                } else {
                    String::new()
                },
                approx(stratum)
            );
        }
        total += stratum;
        for (p, r) in head_rows {
            local.insert(p.to_string(), r.max(1.0));
        }
    }
    let _ = writeln!(
        out,
        "total estimated cost ~{} (budget {})",
        approx(total),
        approx(COST_BUDGET)
    );
    out
}

/// CB013 over a view's rule program. `cards` carries measured EDB (and
/// stored-IDB) cardinalities; `tells`/`untells` the observed write mix.
pub fn lint_view(
    name: &str,
    program: &Program,
    cards: &HashMap<String, f64>,
    tells: u64,
    untells: u64,
    diags: &mut Vec<Diagnostic>,
) {
    let subject = format!("view `{name}`");
    let graph = DepGraph::of(program);
    let sccs = graph.sccs();
    let mut local: HashMap<String, f64> = cards.clone();
    for c in 0..sccs.comps.len() {
        let preds: Vec<&str> = sccs.comps[c].iter().map(|&n| graph.name(n)).collect();
        if !program
            .rules
            .iter()
            .any(|r| preds.contains(&r.head.pred.as_str()))
        {
            continue;
        }
        let mut head_rows: HashMap<&str, f64> = preds.iter().map(|p| (*p, 0.0)).collect();
        for rule in program
            .rules
            .iter()
            .filter(|r| preds.contains(&r.head.pred.as_str()))
        {
            let rc = rule_cost(rule, &local, None);
            if let Some(e) = head_rows.get_mut(rule.head.pred.as_str()) {
                *e += rc.rows;
            }
        }
        let stratum_rows: f64 = head_rows.values().sum();
        if sccs.is_recursive(&graph, c) && stratum_rows >= DRED_WARN_TUPLES {
            let mut names: Vec<&str> = preds.clone();
            names.sort_unstable();
            diags.push(
                Diagnostic::warning(
                    "CB013",
                    &subject,
                    format!(
                        "every UNTELL will run DRed (overdelete + rederive) over the \
                         recursive stratum {{{}}}, estimated at ~{} tuples",
                        names.join(", "),
                        approx(stratum_rows)
                    ),
                )
                .with_witness(format!("recursive stratum {{{}}}", names.join(", "))),
            );
        }
        for (p, r) in head_rows {
            local.insert(p.to_string(), r.max(1.0));
        }
    }
    let total = tells + untells;
    if total >= CHURN_MIN_EVENTS {
        let share = untells as f64 / total as f64;
        if share >= CHURN_DELETE_SHARE {
            diags.push(
                Diagnostic::warning(
                    "CB013",
                    &subject,
                    format!(
                        "observed write mix is {untells} UNTELLs in {total} events \
                         ({:.0}% deletions): this view will churn under DRed \
                         maintenance",
                        share * 100.0
                    ),
                )
                .with_witness(format!("{tells} TELLs / {untells} UNTELLs observed")),
            );
        }
    }
}

/// `1234567.0` → `"1.2e6"`; small numbers render plainly. Diagnostics
/// stay stable across platforms because the mantissa is rounded to one
/// decimal before formatting.
pub fn approx(x: f64) -> String {
    if !x.is_finite() {
        return "inf".to_string();
    }
    if x < 10_000.0 {
        let r = (x * 10.0).round() / 10.0;
        if (r - r.trunc()).abs() < f64::EPSILON {
            return format!("{}", r.trunc() as i64);
        }
        return format!("{r:.1}");
    }
    let exp = x.abs().log10().floor() as i32;
    let mantissa = (x / 10f64.powi(exp) * 10.0).round() / 10.0;
    // Rounding can push the mantissa to 10.0 — renormalize.
    if mantissa >= 10.0 {
        format!("1e{}", exp + 1)
    } else if (mantissa - mantissa.trunc()).abs() < f64::EPSILON {
        format!("{}e{exp}", mantissa.trunc() as i64)
    } else {
        format!("{mantissa:.1}e{exp}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scc_rules(p: &Program) -> Vec<SccRule<'_>> {
        p.rules
            .iter()
            .map(|rule| SccRule {
                rule,
                subject: Some("rule"),
                line: None,
                text_hash: 0,
            })
            .collect()
    }

    #[test]
    fn approx_is_stable() {
        assert_eq!(approx(0.0), "0");
        assert_eq!(approx(31.6227), "31.6");
        assert_eq!(approx(1000.0), "1000");
        assert_eq!(approx(1_234_567.0), "1.2e6");
        assert_eq!(approx(1e8), "1e8");
        assert_eq!(approx(9.97e7), "1e8");
    }

    #[test]
    fn transitive_closure_stays_under_budget() {
        let p = Program::parse(
            "isaT(X, Y) :- isa(X, Y).\n\
             isaT(X, Z) :- isa(X, Y), isaT(Y, Z).",
        )
        .unwrap();
        let rules = scc_rules(&p);
        let mut cards = HashMap::new();
        let mut diags = Vec::new();
        estimate_scc(&["isaT"], &rules, true, &mut cards, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(cards["isaT"] > 1.0);
    }

    #[test]
    fn two_way_cartesian_product_warns() {
        let p = Program::parse("pairs(X, Y) :- obj(X), obj(Y).").unwrap();
        let rules = scc_rules(&p);
        let mut cards = HashMap::new();
        let mut diags = Vec::new();
        estimate_scc(&["pairs"], &rules, false, &mut cards, &mut diags);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "CB012" && d.message.contains("cross join")),
            "{diags:?}"
        );
    }

    #[test]
    fn three_way_cartesian_blows_the_budget() {
        let p = Program::parse("triples(X, Y, Z) :- a(X), b(Y), c(Z).").unwrap();
        let rules = scc_rules(&p);
        let mut cards = HashMap::new();
        let mut diags = Vec::new();
        estimate_scc(&["triples"], &rules, false, &mut cards, &mut diags);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "CB012" && d.message.contains("exceeds the budget")),
            "{diags:?}"
        );
    }

    #[test]
    fn explain_mentions_cost_and_plan() {
        let p = Program::parse("isaT(X, Z) :- isa(X, Y), isaT(Y, Z).").unwrap();
        let text = explain(&p, &HashMap::new());
        assert!(text.contains("estimated cost"), "{text}");
        assert!(text.contains("probe index"), "{text}");
        assert!(text.contains("recursive"), "{text}");
    }

    #[test]
    fn small_views_register_quietly() {
        let p = Program::parse("r(X, Z) :- e(X, Y), r(Y, Z).").unwrap();
        let mut cards = HashMap::new();
        cards.insert("e".to_string(), 50.0);
        let mut diags = Vec::new();
        lint_view("small", &p, &cards, 100, 1, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn big_recursive_view_warns_dred() {
        let p = Program::parse("r(X, Z) :- e(X, Y), r(Y, Z).").unwrap();
        let mut cards = HashMap::new();
        cards.insert("e".to_string(), 200_000.0);
        let mut diags = Vec::new();
        lint_view("big", &p, &cards, 5, 0, &mut diags);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "CB013" && d.message.contains("DRed")),
            "{diags:?}"
        );
    }

    #[test]
    fn churny_mix_warns() {
        let p = Program::parse("v(X) :- obj(X).").unwrap();
        let mut diags = Vec::new();
        lint_view("churny", &p, &HashMap::new(), 30, 15, &mut diags);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "CB013" && d.message.contains("churn")),
            "{diags:?}"
        );
    }
}
