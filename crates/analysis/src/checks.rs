//! The datalog-side checks: safety, stratification, predicate
//! references, dead rules, duplicates/subsumption.

use crate::{source, Diagnostic, LintContext};
use datalog::ast::{Atom, Program, Rule, Term};
use datalog::depgraph::DepGraph;
use std::collections::{HashMap, HashSet};

/// One rule under analysis, with its reporting identity.
#[derive(Debug, Clone)]
pub struct RuleUnit {
    /// How diagnostics refer to the rule (e.g. ``rule `Game!w` `` or
    /// the rule text itself).
    pub subject: String,
    /// 1-based source line, when known.
    pub line: Option<usize>,
    /// The parsed rule.
    pub rule: Rule,
}

/// Lints a standalone datalog source: the rules in `src` joined with
/// the context's stored rules and the deductive base program.
/// `% query: p` directives name extra reachability roots.
pub fn lint_datalog_src(src: &str, ctx: &LintContext) -> Vec<Diagnostic> {
    let program = match Program::parse_unchecked(src) {
        Ok(p) => p,
        Err(e) => {
            return vec![Diagnostic::error("CB000", "program", e.to_string())];
        }
    };
    let lines = source::statement_lines(src);
    let units: Vec<RuleUnit> = program
        .rules
        .into_iter()
        .enumerate()
        .map(|(i, rule)| RuleUnit {
            subject: format!("rule `{rule}`"),
            line: lines.get(i).copied(),
            rule,
        })
        .collect();
    let mut roots = source::query_directives(src);
    let explicit_roots = !roots.is_empty();
    roots.extend(ctx.roots.iter().cloned());
    lint_rules(
        &units,
        ctx,
        &roots,
        explicit_roots || ctx.assume_new_heads_queryable,
    )
}

/// Runs the datalog checks over `units` in the context of the stored
/// rule base. `check_reachability` gates the dead-rule check: offline
/// it only makes sense when the file says what is queried.
pub fn lint_rules(
    units: &[RuleUnit],
    ctx: &LintContext,
    roots: &[String],
    check_reachability: bool,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let base = base_rules(ctx);

    for u in units {
        check_safety(u, &mut diags);
    }
    check_predicates(units, &base, ctx, &mut diags);
    check_stratification(units, &base, &mut diags);
    if check_reachability {
        check_dead_rules(units, &base, ctx, roots, &mut diags);
    }
    check_duplicates(units, &base, &mut diags);
    diags
}

/// The trusted rules the input joins: the deductive base program plus
/// the context's stored rules. Unparsable stored text is skipped — it
/// was validated at its own admission.
fn base_rules(ctx: &LintContext) -> Vec<Rule> {
    let mut base = objectbase::query::base_program().rules;
    for text in &ctx.stored_rules {
        let dotted = dotted(text);
        if let Ok(p) = Program::parse_unchecked(&dotted) {
            base.extend(p.rules);
        }
    }
    base
}

/// Appends the terminating dot datalog requires, if missing.
pub fn dotted(text: &str) -> String {
    let t = text.trim();
    if t.ends_with('.') {
        t.to_string()
    } else {
        format!("{t}.")
    }
}

/// CB001 — range restriction: every head variable and every variable
/// under negation must be bound by a positive body literal.
fn check_safety(u: &RuleUnit, diags: &mut Vec<Diagnostic>) {
    let positive: Vec<&str> = u
        .rule
        .body
        .iter()
        .filter(|l| !l.negated)
        .flat_map(|l| l.atom.vars())
        .collect();
    for v in u.rule.head.vars() {
        if !positive.contains(&v) {
            diags.push(
                Diagnostic::error(
                    "CB001",
                    &u.subject,
                    format!(
                        "unsafe rule: head variable `{v}` of `{}` is not bound by any \
                         positive body literal",
                        u.rule.head.pred
                    ),
                )
                .with_witness(format!("variable `{v}` in `{}`", u.rule))
                .at_line(u.line),
            );
        }
    }
    for lit in u.rule.body.iter().filter(|l| l.negated) {
        for v in lit.atom.vars() {
            if !positive.contains(&v) {
                diags.push(
                    Diagnostic::error(
                        "CB001",
                        &u.subject,
                        format!(
                            "unsafe rule: variable `{v}` under negation in a rule for \
                             `{}` is not bound by any positive body literal",
                            u.rule.head.pred
                        ),
                    )
                    .with_witness(format!("`not {}` in `{}`", lit.atom, u.rule))
                    .at_line(u.line),
                );
            }
        }
    }
}

/// CB003/CB004 — every referenced predicate must be defined (by the
/// schema, the base, or some rule) and used with one arity.
fn check_predicates(
    units: &[RuleUnit],
    base: &[Rule],
    ctx: &LintContext,
    diags: &mut Vec<Diagnostic>,
) {
    let mut arities: HashMap<String, usize> = ctx.schema.clone();
    let mut defined: HashSet<String> = ctx.schema.keys().cloned().collect();
    for r in base {
        defined.insert(r.head.pred.clone());
        for a in std::iter::once(&r.head).chain(r.body.iter().map(|l| &l.atom)) {
            arities.entry(a.pred.clone()).or_insert(a.args.len());
        }
    }
    for u in units {
        defined.insert(u.rule.head.pred.clone());
    }
    for u in units {
        let atoms = std::iter::once(&u.rule.head).chain(u.rule.body.iter().map(|l| &l.atom));
        for atom in atoms {
            match arities.get(&atom.pred) {
                Some(&n) if n != atom.args.len() => diags.push(
                    Diagnostic::error(
                        "CB004",
                        &u.subject,
                        format!(
                            "predicate `{}` used with arity {}, but it is declared \
                             with arity {n}",
                            atom.pred,
                            atom.args.len()
                        ),
                    )
                    .with_witness(format!("`{atom}` in `{}`", u.rule))
                    .at_line(u.line),
                ),
                Some(_) => {}
                None => {
                    arities.insert(atom.pred.clone(), atom.args.len());
                }
            }
        }
        for lit in &u.rule.body {
            if !defined.contains(&lit.atom.pred) {
                diags.push(
                    Diagnostic::warning(
                        "CB003",
                        &u.subject,
                        format!(
                            "references predicate `{}`, which no rule defines and the \
                             schema does not declare",
                            lit.atom.pred
                        ),
                    )
                    .with_witness(format!("`{}` in `{}`", lit.atom, u.rule))
                    .at_line(u.line),
                );
            }
        }
    }
}

/// CB002 — the combined rule base must be stratifiable; the witness is
/// the actual negative cycle.
fn check_stratification(units: &[RuleUnit], base: &[Rule], diags: &mut Vec<Diagnostic>) {
    let mut combined = Program {
        rules: base.to_vec(),
    };
    combined.rules.extend(units.iter().map(|u| u.rule.clone()));
    let graph = DepGraph::of(&combined);
    let Some(cycle) = graph.negative_cycle() else {
        return;
    };
    let on_cycle: HashSet<&str> = cycle.iter().map(|s| s.as_str()).collect();
    let culprit = units
        .iter()
        .find(|u| on_cycle.contains(u.rule.head.pred.as_str()));
    let (subject, line) = match culprit {
        Some(u) => (u.subject.clone(), u.line),
        None => ("rule base".to_string(), None),
    };
    diags.push(
        Diagnostic::error(
            "CB002",
            subject,
            "the rule base is not stratifiable: recursion through negation",
        )
        .with_witness(format!("negative cycle {}", cycle.join(" -> ")))
        .at_line(line),
    );
}

/// CB005 — a rule is dead when its head predicate is unreachable from
/// every query root.
fn check_dead_rules(
    units: &[RuleUnit],
    base: &[Rule],
    ctx: &LintContext,
    roots: &[String],
    diags: &mut Vec<Diagnostic>,
) {
    let mut all_roots: Vec<String> = roots.to_vec();
    if ctx.assume_new_heads_queryable {
        all_roots.extend(units.iter().map(|u| u.rule.head.pred.clone()));
    }
    if all_roots.is_empty() {
        return;
    }
    let mut combined = Program {
        rules: base.to_vec(),
    };
    combined.rules.extend(units.iter().map(|u| u.rule.clone()));
    let graph = DepGraph::of(&combined);
    let live = graph.reachable_from(all_roots.iter().map(|s| s.as_str()));
    for u in units {
        let Some(i) = graph.pred_index(&u.rule.head.pred) else {
            continue;
        };
        if !live.contains(&i) {
            diags.push(
                Diagnostic::warning(
                    "CB005",
                    &u.subject,
                    format!(
                        "dead rule: no query or other rule can reach predicate `{}`",
                        u.rule.head.pred
                    ),
                )
                .with_witness(format!("query roots: {}", all_roots.join(", ")))
                .at_line(u.line),
            );
        }
    }
}

/// CB006 — a rule that duplicates, is subsumed by, or subsumes an
/// existing rule is redundant.
fn check_duplicates(units: &[RuleUnit], base: &[Rule], diags: &mut Vec<Diagnostic>) {
    let mut earlier: Vec<(String, Rule)> =
        base.iter().map(|r| (format!("`{r}`"), r.clone())).collect();
    for u in units {
        let mut flagged = false;
        for (other_name, other) in &earlier {
            let (kind, witness) = if canonical(&u.rule) == canonical(other) {
                ("duplicate of", format!("both read `{}`", other))
            } else if subsumes(other, &u.rule) {
                (
                    "subsumed by",
                    format!("`{other}` already derives every instance"),
                )
            } else if subsumes(&u.rule, other) {
                ("subsumes", format!("`{other}` becomes redundant"))
            } else {
                continue;
            };
            diags.push(
                Diagnostic::warning(
                    "CB006",
                    &u.subject,
                    format!("redundant rule: {kind} {other_name}"),
                )
                .with_witness(witness)
                .at_line(u.line),
            );
            flagged = true;
            break;
        }
        if !flagged {
            earlier.push((format!("`{}`", u.rule), u.rule.clone()));
        }
    }
}

/// The rule with variables renamed `V0, V1, …` in order of first
/// occurrence, so α-equivalent rules print identically.
fn canonical(rule: &Rule) -> String {
    let mut names: HashMap<String, String> = HashMap::new();
    let rename = |t: &Term, names: &mut HashMap<String, String>| match t {
        Term::Var(v) => {
            let n = names.len();
            Term::var(
                names
                    .entry(v.clone())
                    .or_insert_with(|| format!("V{n}"))
                    .clone(),
            )
        }
        c => c.clone(),
    };
    let mut r = rule.clone();
    r.head.args = r.head.args.iter().map(|t| rename(t, &mut names)).collect();
    for l in &mut r.body {
        l.atom.args = l.atom.args.iter().map(|t| rename(t, &mut names)).collect();
    }
    r.to_string()
}

/// θ-subsumption: `a` subsumes `b` when a substitution maps `a`'s head
/// onto `b`'s head and every literal of `a`'s body onto some literal
/// of `b`'s body. Then `a` derives everything `b` does.
fn subsumes(a: &Rule, b: &Rule) -> bool {
    let mut sub = HashMap::new();
    if !match_atom(&a.head, &b.head, &mut sub) {
        return false;
    }
    match_body(&a.body, &b.body, &sub)
}

fn match_body(
    rest: &[datalog::ast::Literal],
    targets: &[datalog::ast::Literal],
    sub: &HashMap<String, Term>,
) -> bool {
    let Some((first, tail)) = rest.split_first() else {
        return true;
    };
    for t in targets {
        if t.negated != first.negated {
            continue;
        }
        let mut trial = sub.clone();
        if match_atom(&first.atom, &t.atom, &mut trial) && match_body(tail, targets, &trial) {
            return true;
        }
    }
    false
}

fn match_atom(a: &Atom, b: &Atom, sub: &mut HashMap<String, Term>) -> bool {
    if a.pred != b.pred || a.args.len() != b.args.len() {
        return false;
    }
    for (x, y) in a.args.iter().zip(&b.args) {
        match x {
            Term::Const(_) => {
                if x != y {
                    return false;
                }
            }
            Term::Var(v) => match sub.get(v) {
                Some(bound) => {
                    if bound != y {
                        return false;
                    }
                }
                None => {
                    sub.insert(v.clone(), y.clone());
                }
            },
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn lint(src: &str) -> Vec<Diagnostic> {
        lint_datalog_src(src, &LintContext::offline())
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_is_clean() {
        let d = lint(
            "% query: path\n\
             edge(a, b).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- edge(X, Y), path(Y, Z).",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unsafe_rule_names_variable_and_predicate() {
        let d = lint("q(X, Y) :- r(X).\nr(a).");
        assert_eq!(codes(&d), vec!["CB001"]);
        assert!(d[0].message.contains("`Y`"));
        assert!(d[0].message.contains("`q`"));
        assert_eq!(d[0].line, Some(1));
    }

    #[test]
    fn negative_cycle_witnessed() {
        let d = lint("move(a, b).\nwin(X) :- move(X, Y), not win(Y).");
        assert!(codes(&d).contains(&"CB002"), "{d:?}");
        let cb002 = d.iter().find(|d| d.code == "CB002").unwrap();
        assert!(cb002.witness.contains("win -> win"), "{cb002:?}");
        assert_eq!(cb002.severity, Severity::Error);
    }

    #[test]
    fn undeclared_predicate_warned() {
        let d = lint("q(X) :- ghost(X).");
        assert_eq!(codes(&d), vec!["CB003"]);
        assert!(d[0].message.contains("`ghost`"));
        assert_eq!(d[0].severity, Severity::Warning);
    }

    #[test]
    fn schema_arity_mismatch_rejected() {
        let d = lint("q(X) :- attr(X, author).");
        assert!(codes(&d).contains(&"CB004"), "{d:?}");
    }

    #[test]
    fn dead_rule_flagged_only_with_roots() {
        let live = "edge(a, b).\npath(X, Y) :- edge(X, Y).";
        assert!(lint(live).is_empty(), "no directive, no dead-check");
        let dead = "% query: path\n\
                    edge(a, b).\n\
                    path(X, Y) :- edge(X, Y).\n\
                    orphan(X) :- edge(X, X).";
        let d = lint(dead);
        assert_eq!(codes(&d), vec!["CB005"]);
        assert!(d[0].message.contains("`orphan`"));
    }

    #[test]
    fn duplicate_and_subsumed_rules_flagged() {
        let d = lint(
            "edge(a, b).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(U, V) :- edge(U, V).",
        );
        assert_eq!(codes(&d), vec!["CB006"]);
        assert!(d[0].message.contains("duplicate"));
        let d = lint(
            "edge(a, b).\nred(a).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Y), red(X).",
        );
        assert_eq!(codes(&d), vec!["CB006"]);
        assert!(d[0].message.contains("subsumed"), "{d:?}");
    }

    #[test]
    fn subsumption_matcher() {
        let p = Program::parse_unchecked(
            "p(X, Y) :- e(X, Y).\n\
             p(a, Y) :- e(a, Y), f(Y).",
        )
        .unwrap();
        assert!(subsumes(&p.rules[0], &p.rules[1]));
        assert!(!subsumes(&p.rules[1], &p.rules[0]));
    }

    #[test]
    fn syntax_error_is_cb000() {
        let d = lint("p(");
        assert_eq!(codes(&d), vec!["CB000"]);
    }

    #[test]
    fn new_rule_closing_cycle_over_stored_rule_caught() {
        let mut ctx = LintContext::offline();
        ctx.stored_rules
            .push("odd(X) :- succ(Y, X), not even(Y)".into());
        let d = lint_datalog_src("even(X) :- succ(Y, X), not odd(Y).", &ctx);
        assert!(codes(&d).contains(&"CB002"), "{d:?}");
    }
}
