//! The datalog-side checks — safety, stratification, predicate
//! references, dead rules, duplicates/subsumption, and the dataflow
//! tier (sorts, termination, cost) — organized as an **incremental
//! per-SCC engine**.
//!
//! The combined rule base (deductive base program + stored rules +
//! the units under admission) is condensed into strongly connected
//! components, processed in dependency order. Each component's
//! analysis result is cached under a fingerprint of everything it can
//! observe: its own rules (text, subject, line), the arity/defined
//! authority for every predicate it references, and the sort/
//! cardinality exports of its upstream dependencies. A TELL that adds
//! one rule therefore re-analyzes only the dirty component and the
//! components whose fingerprints its exports change — O(delta), not
//! O(rule base). The two checks that are inherently global —
//! CB005 dead rules (a reachability sweep) and the authority maps —
//! are linear passes that run every call.

use crate::{cost, dataflow, source, Diagnostic, LintContext};
use datalog::ast::{Atom, Program, Rule, Term};
use datalog::depgraph::DepGraph;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};

/// One rule under analysis, with its reporting identity.
#[derive(Debug, Clone)]
pub struct RuleUnit {
    /// How diagnostics refer to the rule (e.g. ``rule `Game!w` `` or
    /// the rule text itself).
    pub subject: String,
    /// 1-based source line, when known.
    pub line: Option<usize>,
    /// The parsed rule.
    pub rule: Rule,
}

/// A rule inside one SCC's analysis group. Base rules (trusted at
/// their own admission) carry no subject and produce no diagnostics;
/// they still contribute to inference and cost.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SccRule<'a> {
    /// The parsed rule.
    pub rule: &'a Rule,
    /// Reporting identity; `None` for trusted base rules.
    pub subject: Option<&'a str>,
    /// 1-based source line, when known.
    pub line: Option<usize>,
    /// Hash of the rule's rendering, precomputed once (for base rules,
    /// once per base refresh) so the per-call fingerprint sweep does
    /// not re-render O(rule base) text.
    pub text_hash: u64,
}

/// The per-SCC fingerprint cache. One instance lives per admission
/// surface (the GKBMS holds one behind a mutex); a fresh instance
/// makes every entry point behave like a full from-scratch lint.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    entries: HashMap<u64, CacheEntry>,
    base_key: Option<u64>,
    base: Vec<Rule>,
    /// Per-rule [`rule_hash`] for `base`, parallel to it.
    base_hashes: Vec<u64>,
    /// First-seen arities over schema + base (heads and body atoms).
    base_arities: HashMap<String, usize>,
    /// Schema predicates plus base rule heads.
    base_defined: HashSet<String>,
    /// Dependency graph over the base alone; per call a clone is
    /// extended with the delta instead of re-interning O(rule base).
    base_graph: DepGraph,
    generation: u64,
    /// Cumulative count of SCCs actually (re-)analyzed.
    pub sccs_reanalyzed: u64,
    /// Cumulative count of SCCs served from the fingerprint cache.
    pub fingerprint_hits: u64,
}

#[derive(Debug)]
struct CacheEntry {
    diags: Vec<Diagnostic>,
    sorts: Vec<(String, Vec<dataflow::Sort>)>,
    cards: Vec<(String, f64)>,
    generation: u64,
}

impl AnalysisCache {
    /// An empty cache — the first lint through it is a full analysis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-parses the trusted base (deductive base program + stored
    /// rules) — and re-derives everything O(base) that only depends on
    /// it: per-rule text hashes and the arity/defined authorities —
    /// only when the stored rule texts or the schema change.
    fn refresh_base(&mut self, ctx: &LintContext) {
        let mut h = DefaultHasher::new();
        for t in &ctx.stored_rules {
            t.hash(&mut h);
        }
        let mut schema: Vec<(&String, &usize)> = ctx.schema.iter().collect();
        schema.sort_unstable();
        schema.hash(&mut h);
        let key = h.finish();
        if self.base_key == Some(key) {
            return;
        }
        let mut base = objectbase::query::base_program().rules;
        for text in &ctx.stored_rules {
            // Unparsable stored text is skipped — it was validated at
            // its own admission.
            if let Ok(p) = Program::parse_unchecked(&dotted(text)) {
                base.extend(p.rules);
            }
        }
        self.base_hashes = base.iter().map(rule_hash).collect();
        self.base_arities = ctx.schema.clone();
        self.base_defined = ctx.schema.keys().cloned().collect();
        for rule in &base {
            self.base_defined.insert(rule.head.pred.clone());
            for a in atoms_of(rule) {
                if !self.base_arities.contains_key(&a.pred) {
                    self.base_arities.insert(a.pred.clone(), a.args.len());
                }
            }
        }
        self.base_graph = DepGraph::of_rules(base.iter());
        self.base = base;
        self.base_key = Some(key);
    }

    /// Drops entries not touched in the last couple of generations so
    /// retracted rules do not pin their analyses forever.
    fn evict(&mut self) {
        let generation = self.generation;
        self.entries
            .retain(|_, e| generation.saturating_sub(e.generation) <= 2);
    }
}

/// Lints a standalone datalog source: the rules in `src` joined with
/// the context's stored rules and the deductive base program.
/// `% query: p` directives name extra reachability roots; `% view:` /
/// `% churn:` directives run the CB013 view-maintainability lint.
pub fn lint_datalog_src(src: &str, ctx: &LintContext) -> Vec<Diagnostic> {
    lint_datalog_src_cached(src, ctx, &mut AnalysisCache::new())
}

/// [`lint_datalog_src`] through a long-lived [`AnalysisCache`].
pub fn lint_datalog_src_cached(
    src: &str,
    ctx: &LintContext,
    cache: &mut AnalysisCache,
) -> Vec<Diagnostic> {
    let program = match Program::parse_unchecked(src) {
        Ok(p) => p,
        Err(e) => {
            return vec![Diagnostic::error("CB000", "program", e.to_string())];
        }
    };
    let lines = source::statement_lines(src);
    let units: Vec<RuleUnit> = program
        .rules
        .into_iter()
        .enumerate()
        .map(|(i, rule)| RuleUnit {
            subject: format!("rule `{rule}`"),
            line: lines.get(i).copied(),
            rule,
        })
        .collect();
    let mut roots = source::query_directives(src);
    let explicit_roots = !roots.is_empty();
    roots.extend(ctx.roots.iter().cloned());
    let mut diags = lint_rules_cached(
        &units,
        ctx,
        &roots,
        explicit_roots || ctx.assume_new_heads_queryable,
        cache,
    );
    if let Some(view) = source::view_directive(src) {
        let program = Program {
            rules: units.iter().map(|u| u.rule.clone()).collect(),
        };
        let (tells, untells) = source::churn_directive(src).unwrap_or((0, 0));
        cost::lint_view(&view, &program, &ctx.edb_cards, tells, untells, &mut diags);
    }
    crate::sort_diagnostics(&mut diags);
    diags
}

/// Runs the datalog checks over `units` in the context of the stored
/// rule base, from scratch. `check_reachability` gates the dead-rule
/// check: offline it only makes sense when the file says what is
/// queried.
pub fn lint_rules(
    units: &[RuleUnit],
    ctx: &LintContext,
    roots: &[String],
    check_reachability: bool,
) -> Vec<Diagnostic> {
    lint_rules_cached(
        units,
        ctx,
        roots,
        check_reachability,
        &mut AnalysisCache::new(),
    )
}

/// The incremental engine: [`lint_rules`] through a long-lived
/// [`AnalysisCache`]. With a fresh cache the result is identical to a
/// full analysis (the differential proptest in `tests/` holds the two
/// equal under random TELL/UNTELL mixes).
pub fn lint_rules_cached(
    units: &[RuleUnit],
    ctx: &LintContext,
    roots: &[String],
    check_reachability: bool,
    cache: &mut AnalysisCache,
) -> Vec<Diagnostic> {
    cache.generation += 1;
    cache.refresh_base(ctx);
    let generation = cache.generation;

    // Every rule under analysis: the trusted base first, then the
    // units, so "earlier rule wins" tie-breaks match admission order.
    let all: Vec<SccRule<'_>> = cache
        .base
        .iter()
        .zip(cache.base_hashes.iter())
        .map(|(rule, &text_hash)| SccRule {
            rule,
            subject: None,
            line: None,
            text_hash,
        })
        .chain(units.iter().map(|u| SccRule {
            rule: &u.rule,
            subject: Some(u.subject.as_str()),
            line: u.line,
            text_hash: rule_hash(&u.rule),
        }))
        .collect();

    let mut graph = cache.base_graph.clone();
    graph.extend_rules(units.iter().map(|u| &u.rule));
    let sccs = graph.sccs();

    // Rules grouped by the component their head belongs to, in
    // admission order within each group.
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); sccs.comps.len()];
    for (i, s) in all.iter().enumerate() {
        if let Some(n) = graph.pred_index(&s.rule.head.pred) {
            groups[sccs.comp_of[n]].push(i);
        }
    }

    // Global reference authorities: the schema + base portion is
    // cached in `refresh_base`; only the units' O(delta) contribution
    // is folded in per call.
    let mut arities = cache.base_arities.clone();
    let mut defined = cache.base_defined.clone();
    for u in units {
        defined.insert(u.rule.head.pred.clone());
    }
    for u in units {
        for a in atoms_of(&u.rule) {
            if !arities.contains_key(&a.pred) {
                arities.insert(a.pred.clone(), a.args.len());
            }
        }
    }

    // Exports accumulate dependency-first: `sccs()` emits components
    // so every edge points at an earlier-or-equal index.
    let mut sigs: HashMap<String, Vec<dataflow::Sort>> = HashMap::new();
    let mut cards: HashMap<String, f64> = ctx.edb_cards.clone();

    let mut diags = Vec::new();
    for (c, group) in groups.iter().enumerate() {
        if group.is_empty() {
            // A pure-EDB predicate: nothing to analyze, nothing to
            // export beyond the measured cardinality already seeded.
            continue;
        }
        let scc_preds: Vec<&str> = sccs.comps[c].iter().map(|&n| graph.name(n)).collect();
        let recursive = sccs.is_recursive(&graph, c);
        let fp = fingerprint(
            &scc_preds, group, &all, recursive, &arities, &defined, &sigs, &cards,
        );
        if let Some(e) = cache.entries.get_mut(&fp) {
            e.generation = generation;
            cache.fingerprint_hits += 1;
            for (p, s) in &e.sorts {
                sigs.insert(p.clone(), s.clone());
            }
            for (p, v) in &e.cards {
                cards.insert(p.clone(), *v);
            }
            diags.extend(e.diags.iter().cloned());
            continue;
        }
        cache.sccs_reanalyzed += 1;
        let rules: Vec<SccRule<'_>> = group.iter().map(|&i| all[i]).collect();
        let mut scc_diags = Vec::new();
        for r in &rules {
            check_safety(r, &mut scc_diags);
            check_predicates_rule(r, &arities, &defined, &mut scc_diags);
        }
        check_stratification_scc(&graph, &sccs.comps[c], &rules, &mut scc_diags);
        check_duplicates(&rules, &mut scc_diags);
        dataflow::infer_scc_sorts(&scc_preds, &rules, &mut sigs, &mut scc_diags);
        if recursive {
            let pred_set: HashSet<&str> = scc_preds.iter().copied().collect();
            dataflow::check_termination(&pred_set, &rules, &mut scc_diags);
        }
        cost::estimate_scc(&scc_preds, &rules, recursive, &mut cards, &mut scc_diags);
        let sorts = scc_preds
            .iter()
            .filter_map(|p| sigs.get(*p).map(|s| ((*p).to_string(), s.clone())))
            .collect();
        let exported_cards = scc_preds
            .iter()
            .filter_map(|p| cards.get(*p).map(|v| ((*p).to_string(), *v)))
            .collect();
        cache.entries.insert(
            fp,
            CacheEntry {
                diags: scc_diags.clone(),
                sorts,
                cards: exported_cards,
                generation,
            },
        );
        diags.extend(scc_diags);
    }

    // CB005 is inherently global (reachability from the query roots):
    // a linear sweep over the graph we already built, never cached.
    if check_reachability {
        check_dead_rules(units, &graph, ctx, roots, &mut diags);
    }

    cache.evict();
    crate::sort_diagnostics(&mut diags);
    diags
}

/// Everything one component's analysis can observe, hashed: its rules
/// (text, subject, line), whether the component is recursive, and per
/// referenced predicate the arity/defined authority plus the upstream
/// sort and cardinality exports. Equal fingerprint ⇒ equal analysis.
#[allow(clippy::too_many_arguments)]
fn fingerprint(
    scc_preds: &[&str],
    group: &[usize],
    all: &[SccRule<'_>],
    recursive: bool,
    arities: &HashMap<String, usize>,
    defined: &HashSet<String>,
    sigs: &HashMap<String, Vec<dataflow::Sort>>,
    cards: &HashMap<String, f64>,
) -> u64 {
    let mut h = DefaultHasher::new();
    recursive.hash(&mut h);
    let mut names: Vec<&str> = scc_preds.to_vec();
    names.sort_unstable();
    for p in &names {
        p.hash(&mut h);
    }
    for &i in group {
        let s = &all[i];
        match s.subject {
            None => 0u8.hash(&mut h),
            Some(sub) => {
                1u8.hash(&mut h);
                sub.hash(&mut h);
            }
        }
        s.line.hash(&mut h);
        s.text_hash.hash(&mut h);
    }
    let mut refs: Vec<&str> = group
        .iter()
        .flat_map(|&i| atoms_of(all[i].rule).map(|a| a.pred.as_str()))
        .collect();
    refs.sort_unstable();
    refs.dedup();
    for p in refs {
        p.hash(&mut h);
        arities.get(p).hash(&mut h);
        defined.contains(p).hash(&mut h);
        match sigs.get(p) {
            Some(sig) => {
                1u8.hash(&mut h);
                sig.hash(&mut h);
            }
            None => match dataflow::declared_sorts(p) {
                Some(sig) => {
                    1u8.hash(&mut h);
                    sig.hash(&mut h);
                }
                None => 0u8.hash(&mut h),
            },
        }
        cost::card(cards, p).to_bits().hash(&mut h);
    }
    h.finish()
}

/// Hash of a rule's rendering, streamed without allocating a String.
fn rule_hash(rule: &Rule) -> u64 {
    let mut h = DefaultHasher::new();
    let _ = fmt::write(&mut HashWriter(&mut h), format_args!("{rule}"));
    h.finish()
}

struct HashWriter<'a, H: Hasher>(&'a mut H);

impl<H: Hasher> fmt::Write for HashWriter<'_, H> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0.write(s.as_bytes());
        Ok(())
    }
}

fn atoms_of(r: &Rule) -> impl Iterator<Item = &Atom> {
    std::iter::once(&r.head).chain(r.body.iter().map(|l| &l.atom))
}

/// Appends the terminating dot datalog requires, if missing.
pub fn dotted(text: &str) -> String {
    let t = text.trim();
    if t.ends_with('.') {
        t.to_string()
    } else {
        format!("{t}.")
    }
}

/// CB001 — range restriction: every head variable and every variable
/// under negation must be bound by a positive body literal.
fn check_safety(u: &SccRule<'_>, diags: &mut Vec<Diagnostic>) {
    let Some(subject) = u.subject else { return };
    let positive: Vec<&str> = u
        .rule
        .body
        .iter()
        .filter(|l| !l.negated)
        .flat_map(|l| l.atom.vars())
        .collect();
    for v in u.rule.head.vars() {
        if !positive.contains(&v) {
            diags.push(
                Diagnostic::error(
                    "CB001",
                    subject,
                    format!(
                        "unsafe rule: head variable `{v}` of `{}` is not bound by any \
                         positive body literal",
                        u.rule.head.pred
                    ),
                )
                .with_witness(format!("variable `{v}` in `{}`", u.rule))
                .at_line(u.line),
            );
        }
    }
    for lit in u.rule.body.iter().filter(|l| l.negated) {
        for v in lit.atom.vars() {
            if !positive.contains(&v) {
                diags.push(
                    Diagnostic::error(
                        "CB001",
                        subject,
                        format!(
                            "unsafe rule: variable `{v}` under negation in a rule for \
                             `{}` is not bound by any positive body literal",
                            u.rule.head.pred
                        ),
                    )
                    .with_witness(format!("`not {}` in `{}`", lit.atom, u.rule))
                    .at_line(u.line),
                );
            }
        }
    }
}

/// CB003/CB004 — every referenced predicate must be defined (by the
/// schema, the base, or some rule) and used with one arity. The
/// authority maps are first-seen over the whole admission-ordered rule
/// base, so checking against the final maps equals the sequential
/// check: the first occurrence *is* the map entry it is checked
/// against.
fn check_predicates_rule(
    u: &SccRule<'_>,
    arities: &HashMap<String, usize>,
    defined: &HashSet<String>,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(subject) = u.subject else { return };
    for atom in atoms_of(u.rule) {
        if let Some(&n) = arities.get(&atom.pred) {
            if n != atom.args.len() {
                diags.push(
                    Diagnostic::error(
                        "CB004",
                        subject,
                        format!(
                            "predicate `{}` used with arity {}, but it is declared \
                             with arity {n}",
                            atom.pred,
                            atom.args.len()
                        ),
                    )
                    .with_witness(format!("`{atom}` in `{}`", u.rule))
                    .at_line(u.line),
                );
            }
        }
    }
    for lit in &u.rule.body {
        if !defined.contains(&lit.atom.pred) {
            diags.push(
                Diagnostic::warning(
                    "CB003",
                    subject,
                    format!(
                        "references predicate `{}`, which no rule defines and the \
                         schema does not declare",
                        lit.atom.pred
                    ),
                )
                .with_witness(format!("`{}` in `{}`", lit.atom, u.rule))
                .at_line(u.line),
            );
        }
    }
}

/// CB002 — recursion through negation. Every cycle of the dependency
/// graph lies within one SCC, so scanning each component finds every
/// negative cycle the global scan would.
fn check_stratification_scc(
    graph: &DepGraph,
    comp: &[usize],
    rules: &[SccRule<'_>],
    diags: &mut Vec<Diagnostic>,
) {
    let within: HashSet<usize> = comp.iter().copied().collect();
    let Some(cycle) = graph.negative_cycle_within(&within) else {
        return;
    };
    let on_cycle: HashSet<&str> = cycle.iter().map(|s| s.as_str()).collect();
    let culprit = rules
        .iter()
        .find(|r| r.subject.is_some() && on_cycle.contains(r.rule.head.pred.as_str()));
    let (subject, line) = match culprit {
        Some(r) => (r.subject.unwrap_or_default().to_string(), r.line),
        None => ("rule base".to_string(), None),
    };
    diags.push(
        Diagnostic::error(
            "CB002",
            subject,
            "the rule base is not stratifiable: recursion through negation",
        )
        .with_witness(format!("negative cycle {}", cycle.join(" -> ")))
        .at_line(line),
    );
}

/// CB005 — a rule is dead when its head predicate is unreachable from
/// every query root.
fn check_dead_rules(
    units: &[RuleUnit],
    graph: &DepGraph,
    ctx: &LintContext,
    roots: &[String],
    diags: &mut Vec<Diagnostic>,
) {
    let mut all_roots: Vec<String> = roots.to_vec();
    if ctx.assume_new_heads_queryable {
        all_roots.extend(units.iter().map(|u| u.rule.head.pred.clone()));
    }
    if all_roots.is_empty() {
        return;
    }
    let live = graph.reachable_from(all_roots.iter().map(|s| s.as_str()));
    for u in units {
        let Some(i) = graph.pred_index(&u.rule.head.pred) else {
            continue;
        };
        if !live.contains(&i) {
            diags.push(
                Diagnostic::warning(
                    "CB005",
                    &u.subject,
                    format!(
                        "dead rule: no query or other rule can reach predicate `{}`",
                        u.rule.head.pred
                    ),
                )
                .with_witness(format!("query roots: {}", all_roots.join(", ")))
                .at_line(u.line),
            );
        }
    }
}

/// CB006 — a rule that duplicates, is subsumed by, or subsumes an
/// earlier rule is redundant. Duplication and θ-subsumption both
/// require identical head predicates, so comparing within the head's
/// component group sees every pair the global quadratic scan would.
fn check_duplicates(rules: &[SccRule<'_>], diags: &mut Vec<Diagnostic>) {
    let mut earlier: Vec<&SccRule<'_>> = Vec::new();
    for r in rules {
        let Some(subject) = r.subject else {
            earlier.push(r);
            continue;
        };
        let mut flagged = false;
        for other in &earlier {
            if other.rule.head.pred != r.rule.head.pred {
                continue;
            }
            let (kind, witness) = if canonical(r.rule) == canonical(other.rule) {
                ("duplicate of", format!("both read `{}`", other.rule))
            } else if subsumes(other.rule, r.rule) {
                (
                    "subsumed by",
                    format!("`{}` already derives every instance", other.rule),
                )
            } else if subsumes(r.rule, other.rule) {
                ("subsumes", format!("`{}` becomes redundant", other.rule))
            } else {
                continue;
            };
            diags.push(
                Diagnostic::warning(
                    "CB006",
                    subject,
                    format!("redundant rule: {kind} `{}`", other.rule),
                )
                .with_witness(witness)
                .at_line(r.line),
            );
            flagged = true;
            break;
        }
        if !flagged {
            earlier.push(r);
        }
    }
}

/// The rule with variables renamed `V0, V1, …` in order of first
/// occurrence, so α-equivalent rules print identically.
fn canonical(rule: &Rule) -> String {
    let mut names: HashMap<String, String> = HashMap::new();
    let rename = |t: &Term, names: &mut HashMap<String, String>| match t {
        Term::Var(v) => {
            let n = names.len();
            Term::var(
                names
                    .entry(v.clone())
                    .or_insert_with(|| format!("V{n}"))
                    .clone(),
            )
        }
        c => c.clone(),
    };
    let mut r = rule.clone();
    r.head.args = r.head.args.iter().map(|t| rename(t, &mut names)).collect();
    for l in &mut r.body {
        l.atom.args = l.atom.args.iter().map(|t| rename(t, &mut names)).collect();
    }
    r.to_string()
}

/// θ-subsumption: `a` subsumes `b` when a substitution maps `a`'s head
/// onto `b`'s head and every literal of `a`'s body onto some literal
/// of `b`'s body. Then `a` derives everything `b` does.
fn subsumes(a: &Rule, b: &Rule) -> bool {
    let mut sub = HashMap::new();
    if !match_atom(&a.head, &b.head, &mut sub) {
        return false;
    }
    match_body(&a.body, &b.body, &sub)
}

fn match_body(
    rest: &[datalog::ast::Literal],
    targets: &[datalog::ast::Literal],
    sub: &HashMap<String, Term>,
) -> bool {
    let Some((first, tail)) = rest.split_first() else {
        return true;
    };
    for t in targets {
        if t.negated != first.negated {
            continue;
        }
        let mut trial = sub.clone();
        if match_atom(&first.atom, &t.atom, &mut trial) && match_body(tail, targets, &trial) {
            return true;
        }
    }
    false
}

fn match_atom(a: &Atom, b: &Atom, sub: &mut HashMap<String, Term>) -> bool {
    if a.pred != b.pred || a.args.len() != b.args.len() {
        return false;
    }
    for (x, y) in a.args.iter().zip(&b.args) {
        match x {
            Term::Const(_) => {
                if x != y {
                    return false;
                }
            }
            Term::Var(v) => match sub.get(v) {
                Some(bound) => {
                    if bound != y {
                        return false;
                    }
                }
                None => {
                    sub.insert(v.clone(), y.clone());
                }
            },
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn lint(src: &str) -> Vec<Diagnostic> {
        lint_datalog_src(src, &LintContext::offline())
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_is_clean() {
        let d = lint(
            "% query: path\n\
             edge(a, b).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- edge(X, Y), path(Y, Z).",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unsafe_rule_names_variable_and_predicate() {
        let d = lint("q(X, Y) :- r(X).\nr(a).");
        assert_eq!(codes(&d), vec!["CB001"]);
        assert!(d[0].message.contains("`Y`"));
        assert!(d[0].message.contains("`q`"));
        assert_eq!(d[0].line, Some(1));
    }

    #[test]
    fn negative_cycle_witnessed() {
        let d = lint("move(a, b).\nwin(X) :- move(X, Y), not win(Y).");
        assert!(codes(&d).contains(&"CB002"), "{d:?}");
        let cb002 = d.iter().find(|d| d.code == "CB002").unwrap();
        assert!(cb002.witness.contains("win -> win"), "{cb002:?}");
        assert_eq!(cb002.severity, Severity::Error);
    }

    #[test]
    fn undeclared_predicate_warned() {
        let d = lint("q(X) :- ghost(X).");
        assert_eq!(codes(&d), vec!["CB003"]);
        assert!(d[0].message.contains("`ghost`"));
        assert_eq!(d[0].severity, Severity::Warning);
    }

    #[test]
    fn schema_arity_mismatch_rejected() {
        let d = lint("q(X) :- attr(X, author).");
        assert!(codes(&d).contains(&"CB004"), "{d:?}");
    }

    #[test]
    fn dead_rule_flagged_only_with_roots() {
        let live = "edge(a, b).\npath(X, Y) :- edge(X, Y).";
        assert!(lint(live).is_empty(), "no directive, no dead-check");
        let dead = "% query: path\n\
                    edge(a, b).\n\
                    path(X, Y) :- edge(X, Y).\n\
                    orphan(X) :- edge(X, X).";
        let d = lint(dead);
        assert_eq!(codes(&d), vec!["CB005"]);
        assert!(d[0].message.contains("`orphan`"));
    }

    #[test]
    fn duplicate_and_subsumed_rules_flagged() {
        let d = lint(
            "edge(a, b).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(U, V) :- edge(U, V).",
        );
        assert_eq!(codes(&d), vec!["CB006"]);
        assert!(d[0].message.contains("duplicate"));
        let d = lint(
            "edge(a, b).\nred(a).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Y), red(X).",
        );
        assert_eq!(codes(&d), vec!["CB006"]);
        assert!(d[0].message.contains("subsumed"), "{d:?}");
    }

    #[test]
    fn subsumption_matcher() {
        let p = Program::parse_unchecked(
            "p(X, Y) :- e(X, Y).\n\
             p(a, Y) :- e(a, Y), f(Y).",
        )
        .unwrap();
        assert!(subsumes(&p.rules[0], &p.rules[1]));
        assert!(!subsumes(&p.rules[1], &p.rules[0]));
    }

    #[test]
    fn syntax_error_is_cb000() {
        let d = lint("p(");
        assert_eq!(codes(&d), vec!["CB000"]);
    }

    #[test]
    fn new_rule_closing_cycle_over_stored_rule_caught() {
        let mut ctx = LintContext::offline();
        ctx.stored_rules
            .push("odd(X) :- succ(Y, X), not even(Y)".into());
        let d = lint_datalog_src("even(X) :- succ(Y, X), not odd(Y).", &ctx);
        assert!(codes(&d).contains(&"CB002"), "{d:?}");
    }

    #[test]
    fn warm_cache_hits_every_clean_component() {
        let ctx = LintContext::offline();
        let src = "edge(a, b).\npath(X, Y) :- edge(X, Y).\npath(X, Z) :- edge(X, Y), path(Y, Z).";
        let mut cache = AnalysisCache::new();
        let cold = lint_datalog_src_cached(src, &ctx, &mut cache);
        let analyzed_cold = cache.sccs_reanalyzed;
        assert!(analyzed_cold > 0);
        let warm = lint_datalog_src_cached(src, &ctx, &mut cache);
        assert_eq!(cold, warm);
        assert_eq!(cache.sccs_reanalyzed, analyzed_cold, "warm run re-analyzed");
        assert!(cache.fingerprint_hits >= analyzed_cold);
    }

    #[test]
    fn incremental_matches_full_when_rules_change() {
        let ctx = LintContext::offline();
        let v1 = "edge(a, b).\npath(X, Y) :- edge(X, Y).";
        let v2 = "edge(a, b).\npath(X, Y) :- edge(X, Y).\nq(X, Y) :- path(X, Y), r(X).";
        let mut cache = AnalysisCache::new();
        lint_datalog_src_cached(v1, &ctx, &mut cache);
        let incr = lint_datalog_src_cached(v2, &ctx, &mut cache);
        let full = lint_datalog_src(v2, &ctx);
        assert_eq!(incr, full);
    }

    #[test]
    fn view_directive_runs_cb013() {
        let d = lint(
            "% view: closure\n\
             % churn: 30 20\n\
             r(X, Y) :- e(X, Y).\n\
             r(X, Z) :- e(X, Y), r(Y, Z).",
        );
        assert!(
            d.iter()
                .any(|d| d.code == "CB013" && d.message.contains("churn")),
            "{d:?}"
        );
    }
}
