//! Operational telemetry for the GKBMS stack.
//!
//! The paper's GKBMS is "ex post … a documentation service" for system
//! evolution; this crate documents the *service itself*: every hot
//! boundary (request dispatch, deductive evaluation, storage, decision
//! execution) records into a process-wide registry of lock-free
//! metrics, and [`render_prometheus`] exposes the whole registry as
//! Prometheus text exposition for scraping.
//!
//! # Design
//!
//! - **No external dependencies.** Counters and gauges are single
//!   atomics; histograms are fixed-bucket atomic arrays. Nothing on a
//!   record path takes a lock.
//! - **Process-global registry.** Metrics are registered on first use
//!   and live for the process lifetime (instances are leaked, exactly
//!   like mainstream Prometheus client libraries). The
//!   [`counter!`]/[`gauge!`]/[`histogram!`] macros cache the
//!   `&'static` handle in a `OnceLock` per call site, so the name
//!   lookup happens once and the steady-state cost is one atomic op.
//! - **Names are Prometheus series**: a metric name may carry a label
//!   suffix (`gkbms_requests_total{op="ask"}`); the renderer groups
//!   series of one family under a single `# HELP`/`# TYPE` header.
//! - **Disable switch.** [`set_enabled`] turns all recording into a
//!   no-op (one relaxed load per call); the overhead benchmark uses it
//!   to measure the instrumentation cost on a live workload.
//!
//! Because the registry is process-global, concurrently running tests
//! share it: assertions must compare *deltas* around the exercised
//! code path, never absolute values.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};
use std::time::Duration;

/// Global recording switch (default on). See [`set_enabled`].
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables all metric recording process-wide. Registration
/// and reads keep working while disabled; only the record paths
/// (`inc`/`add`/`set`/`observe`) become no-ops.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True if metric recording is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        if enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds (inclusive) of the latency buckets, in microseconds.
/// Spans 100 µs – 10 s, log-ish spaced; the final `+Inf` bucket is
/// implicit. Fixed at compile time so a histogram is a plain atomic
/// array with no allocation or locking on the observe path.
pub const LATENCY_BUCKETS_US: [u64; 14] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
    2_500_000, 10_000_000,
];

/// A fixed-bucket latency histogram (microsecond observations).
#[derive(Debug)]
pub struct Histogram {
    /// One cumulative-style slot per bound, plus the +Inf overflow.
    buckets: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; LATENCY_BUCKETS_US.len() + 1],
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Records one duration.
    pub fn observe(&self, d: Duration) {
        self.observe_micros(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Records one observation in microseconds.
    pub fn observe_micros(&self, us: u64) {
        if !enabled() {
            return;
        }
        let slot = LATENCY_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (not cumulative), `+Inf` last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// Upper bounds (inclusive) of the value buckets used by
/// [`ValueHistogram`] — power-of-two-ish spacing from 1 to 64k,
/// suitable for unit-less magnitudes such as replication lag measured
/// in ops. The final `+Inf` bucket is implicit.
pub const VALUE_BUCKETS: [u64; 12] = [0, 1, 2, 4, 8, 16, 32, 64, 256, 1_024, 4_096, 16_384];

/// A fixed-bucket histogram over unit-less integer magnitudes (op
/// counts, queue depths, lag). Same lock-free design as [`Histogram`]
/// but bucketed by [`VALUE_BUCKETS`] and rendered without the
/// microseconds→seconds conversion.
#[derive(Debug)]
pub struct ValueHistogram {
    buckets: [AtomicU64; VALUE_BUCKETS.len() + 1],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for ValueHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl ValueHistogram {
    /// A fresh, empty histogram.
    pub const fn new() -> Self {
        ValueHistogram {
            buckets: [const { AtomicU64::new(0) }; VALUE_BUCKETS.len() + 1],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        if !enabled() {
            return;
        }
        let slot = VALUE_BUCKETS
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(VALUE_BUCKETS.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (not cumulative), `+Inf` last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
    ValueHistogram(&'static ValueHistogram),
}

struct Entry {
    help: &'static str,
    metric: Metric,
}

/// The process-wide metric registry. Obtain it with [`registry`].
pub struct Registry {
    // BTreeMap so exposition is deterministically name-sorted; the map
    // is only locked on registration and render, never on record.
    entries: RwLock<BTreeMap<String, Entry>>,
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        entries: RwLock::new(BTreeMap::new()),
    })
}

impl Registry {
    fn lock_read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Entry>> {
        self.entries.read().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_write(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, Entry>> {
        self.entries.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the counter registered as `name` (a Prometheus series
    /// name, optionally with labels), registering it on first use.
    pub fn counter(&self, name: &str, help: &'static str) -> &'static Counter {
        if let Some(Entry {
            metric: Metric::Counter(c),
            ..
        }) = self.lock_read().get(name)
        {
            return c;
        }
        let mut entries = self.lock_write();
        match entries
            .entry(name.to_string())
            .or_insert_with(|| Entry {
                help,
                metric: Metric::Counter(Box::leak(Box::new(Counter::new()))),
            })
            .metric
        {
            Metric::Counter(c) => c,
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Returns the gauge registered as `name`, registering on first use.
    pub fn gauge(&self, name: &str, help: &'static str) -> &'static Gauge {
        if let Some(Entry {
            metric: Metric::Gauge(g),
            ..
        }) = self.lock_read().get(name)
        {
            return g;
        }
        let mut entries = self.lock_write();
        match entries
            .entry(name.to_string())
            .or_insert_with(|| Entry {
                help,
                metric: Metric::Gauge(Box::leak(Box::new(Gauge::new()))),
            })
            .metric
        {
            Metric::Gauge(g) => g,
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Returns the histogram registered as `name`, registering on
    /// first use.
    pub fn histogram(&self, name: &str, help: &'static str) -> &'static Histogram {
        if let Some(Entry {
            metric: Metric::Histogram(h),
            ..
        }) = self.lock_read().get(name)
        {
            return h;
        }
        let mut entries = self.lock_write();
        match entries
            .entry(name.to_string())
            .or_insert_with(|| Entry {
                help,
                metric: Metric::Histogram(Box::leak(Box::new(Histogram::new()))),
            })
            .metric
        {
            Metric::Histogram(h) => h,
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Returns the value histogram registered as `name`, registering
    /// on first use.
    pub fn value_histogram(&self, name: &str, help: &'static str) -> &'static ValueHistogram {
        if let Some(Entry {
            metric: Metric::ValueHistogram(h),
            ..
        }) = self.lock_read().get(name)
        {
            return h;
        }
        let mut entries = self.lock_write();
        match entries
            .entry(name.to_string())
            .or_insert_with(|| Entry {
                help,
                metric: Metric::ValueHistogram(Box::leak(Box::new(ValueHistogram::new()))),
            })
            .metric
        {
            Metric::ValueHistogram(h) => h,
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// The current value of a registered counter, or `None`.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.lock_read().get(name)?.metric {
            Metric::Counter(c) => Some(c.get()),
            _ => None,
        }
    }

    /// The current value of a registered gauge, or `None`.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        match self.lock_read().get(name)?.metric {
            Metric::Gauge(g) => Some(g.get()),
            _ => None,
        }
    }
}

/// Splits `series` into `(family, labels)`:
/// `a_total{op="ask"}` → `("a_total", Some("op=\"ask\""))`.
fn split_series(series: &str) -> (&str, Option<&str>) {
    match series.split_once('{') {
        Some((fam, rest)) => (fam, rest.strip_suffix('}').or(Some(rest))),
        None => (series, None),
    }
}

/// Renders the whole registry in Prometheus text exposition format
/// (version 0.0.4): `# HELP` / `# TYPE` per family, then one line per
/// series. Histograms expose cumulative `_bucket{le=…}` series plus
/// `_sum` (seconds) and `_count`.
pub fn render_prometheus() -> String {
    let entries = registry().lock_read();
    let mut out = String::new();
    let mut last_family = "";
    for (name, entry) in entries.iter() {
        let (family, labels) = split_series(name);
        if family != last_family {
            let kind = match entry.metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) | Metric::ValueHistogram(_) => "histogram",
            };
            let _ = writeln!(out, "# HELP {family} {}", entry.help);
            let _ = writeln!(out, "# TYPE {family} {kind}");
            last_family = family;
        }
        match entry.metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "{name} {}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "{name} {}", g.get());
            }
            Metric::Histogram(h) => {
                let mut cumulative = 0u64;
                for (i, count) in h.bucket_counts().iter().enumerate() {
                    cumulative += count;
                    let le = match LATENCY_BUCKETS_US.get(i) {
                        Some(&b) => format!("{}", b as f64 / 1e6),
                        None => "+Inf".to_string(),
                    };
                    let series = match labels {
                        Some(l) => format!("{family}_bucket{{{l},le=\"{le}\"}}"),
                        None => format!("{family}_bucket{{le=\"{le}\"}}"),
                    };
                    let _ = writeln!(out, "{series} {cumulative}");
                }
                let suffix = |part: &str| match labels {
                    Some(l) => format!("{family}_{part}{{{l}}}"),
                    None => format!("{family}_{part}"),
                };
                let _ = writeln!(out, "{} {}", suffix("sum"), h.sum_micros() as f64 / 1e6);
                let _ = writeln!(out, "{} {}", suffix("count"), h.count());
            }
            Metric::ValueHistogram(h) => {
                let mut cumulative = 0u64;
                for (i, count) in h.bucket_counts().iter().enumerate() {
                    cumulative += count;
                    let le = match VALUE_BUCKETS.get(i) {
                        Some(&b) => format!("{b}"),
                        None => "+Inf".to_string(),
                    };
                    let series = match labels {
                        Some(l) => format!("{family}_bucket{{{l},le=\"{le}\"}}"),
                        None => format!("{family}_bucket{{le=\"{le}\"}}"),
                    };
                    let _ = writeln!(out, "{series} {cumulative}");
                }
                let suffix = |part: &str| match labels {
                    Some(l) => format!("{family}_{part}{{{l}}}"),
                    None => format!("{family}_{part}"),
                };
                let _ = writeln!(out, "{} {}", suffix("sum"), h.sum());
                let _ = writeln!(out, "{} {}", suffix("count"), h.count());
            }
        }
    }
    out
}

/// Registers (on first use) and returns a `&'static` [`Counter`],
/// caching the handle per call site so the registry lookup runs once.
#[macro_export]
macro_rules! counter {
    ($name:expr, $help:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Counter> = std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().counter($name, $help))
    }};
}

/// Registers (on first use) and returns a `&'static` [`Gauge`],
/// caching the handle per call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $help:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Gauge> = std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().gauge($name, $help))
    }};
}

/// Registers (on first use) and returns a `&'static` [`Histogram`],
/// caching the handle per call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $help:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Histogram> = std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().histogram($name, $help))
    }};
}

/// Registers (on first use) and returns a `&'static`
/// [`ValueHistogram`], caching the handle per call site.
#[macro_export]
macro_rules! value_histogram {
    ($name:expr, $help:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::ValueHistogram> =
            std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().value_histogram($name, $help))
    }};
}

/// Measures the elapsed time of `f` into `h` and returns `f`'s value
/// along with the duration.
pub fn time<R>(h: &Histogram, f: impl FnOnce() -> R) -> (R, Duration) {
    let start = std::time::Instant::now();
    let out = f();
    let elapsed = start.elapsed();
    h.observe(elapsed);
    (out, elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_identity() {
        let a = registry().counter("obs_test_counter_total", "test");
        let before = a.get();
        a.inc();
        a.add(4);
        assert_eq!(a.get(), before + 5);
        // Same name → same instance.
        let b = registry().counter("obs_test_counter_total", "test");
        assert!(std::ptr::eq(a, b));
        assert_eq!(
            registry().counter_value("obs_test_counter_total"),
            Some(a.get())
        );
    }

    #[test]
    fn gauges_move_both_ways() {
        let g = registry().gauge("obs_test_gauge", "test");
        g.set(7);
        assert_eq!(g.get(), 7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_buckets_observations() {
        let h = registry().histogram("obs_test_hist_seconds", "test");
        let before = h.count();
        h.observe_micros(50); // first bucket (<= 100 µs)
        h.observe_micros(900); // <= 1000 µs
        h.observe_micros(99_000_000); // +Inf
        assert_eq!(h.count(), before + 3);
        let counts = h.bucket_counts();
        assert!(counts[0] >= 1);
        assert!(counts[LATENCY_BUCKETS_US.len()] >= 1, "+Inf overflow");
        assert!(h.sum_micros() >= 99_000_950);
    }

    #[test]
    fn value_histogram_buckets_magnitudes() {
        let h = registry().value_histogram("obs_test_value_hist", "test");
        let before = h.count();
        h.observe(0); // first bucket (<= 0)
        h.observe(3); // <= 4
        h.observe(1_000_000); // +Inf
        assert_eq!(h.count(), before + 3);
        let counts = h.bucket_counts();
        assert!(counts[0] >= 1);
        assert!(counts[VALUE_BUCKETS.len()] >= 1, "+Inf overflow");
        assert!(h.sum() >= 1_000_003);
        let text = render_prometheus();
        assert!(text.contains("# TYPE obs_test_value_hist histogram"));
        assert!(text.contains("obs_test_value_hist_bucket{le=\"4\"}"));
        assert!(text.contains("obs_test_value_hist_bucket{le=\"+Inf\"}"));
        let via_macro = value_histogram!("obs_test_value_hist", "test");
        assert!(std::ptr::eq(h, via_macro));
    }

    #[test]
    fn macros_cache_per_call_site() {
        let c = counter!("obs_test_macro_total", "test");
        let before = c.get();
        for _ in 0..10 {
            counter!("obs_test_macro_total", "test").inc();
        }
        assert_eq!(c.get(), before + 10);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let c = registry().counter("obs_test_disabled_total", "test");
        let h = registry().histogram("obs_test_disabled_seconds", "test");
        let (c0, h0) = (c.get(), h.count());
        set_enabled(false);
        c.inc();
        h.observe_micros(5);
        set_enabled(true);
        assert_eq!(c.get(), c0);
        assert_eq!(h.count(), h0);
        c.inc();
        assert_eq!(c.get(), c0 + 1);
    }

    #[test]
    fn prometheus_rendering_groups_families() {
        registry()
            .counter("obs_test_fam_total{op=\"ask\"}", "per-op test counter")
            .inc();
        registry()
            .counter("obs_test_fam_total{op=\"tell\"}", "per-op test counter")
            .inc();
        registry()
            .histogram("obs_test_fam_seconds{op=\"ask\"}", "per-op test latency")
            .observe_micros(300);
        let text = render_prometheus();
        // One header per family, even with several labelled series.
        assert_eq!(text.matches("# TYPE obs_test_fam_total counter").count(), 1);
        assert!(text.contains("obs_test_fam_total{op=\"ask\"} "));
        assert!(text.contains("obs_test_fam_total{op=\"tell\"} "));
        // Histogram series carry both the op label and le.
        assert!(text.contains("obs_test_fam_seconds_bucket{op=\"ask\",le=\"+Inf\"}"));
        assert!(text.contains("obs_test_fam_seconds_count{op=\"ask\"}"));
        // Buckets are cumulative: the +Inf bucket equals the count.
        let count_line = text
            .lines()
            .find(|l| l.starts_with("obs_test_fam_seconds_count{op=\"ask\"}"))
            .unwrap();
        let inf_line = text
            .lines()
            .find(|l| l.contains("obs_test_fam_seconds_bucket{op=\"ask\",le=\"+Inf\"}"))
            .unwrap();
        assert_eq!(
            count_line.split_whitespace().last(),
            inf_line.split_whitespace().last()
        );
    }

    #[test]
    fn split_series_parses_labels() {
        assert_eq!(split_series("a_total"), ("a_total", None));
        assert_eq!(
            split_series("a_total{op=\"x\"}"),
            ("a_total", Some("op=\"x\""))
        );
    }
}
