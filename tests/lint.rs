//! Integration: the rule-base static analyzer (`cblint`) — golden
//! fixtures for every check, and the admission-time wiring: a server
//! must reject an unsafe or unstratifiable TELL with a typed
//! diagnostic *before* anything is admitted, leaving the session
//! usable (the paper's Consistency Checker validates ahead of use,
//! not at the first query).

use conceptbase::analysis::{lint_source, render, LintContext};
use conceptbase::gkbms::Gkbms;
use conceptbase::server::{Client, ClientError, Config, ErrorCode, Server};
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lint")
}

/// Every `.dl`/`.cb` fixture has an `.expected` file listing
/// substrings (one per line, `#` comments allowed) that must appear
/// in the rendered diagnostics. Clean fixtures expect the
/// `0 error(s), 0 warning(s)` summary — which also asserts that no
/// diagnostic fired at all.
#[test]
fn golden_fixtures() {
    let dir = fixture_dir();
    let mut checked = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("fixture dir")
        .map(|e| e.expect("entry").path())
        .collect();
    entries.sort();
    for path in entries {
        let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
        if ext != "dl" && ext != "cb" {
            continue;
        }
        let expected_path = path.with_extension("expected");
        let expected = std::fs::read_to_string(&expected_path)
            .unwrap_or_else(|_| panic!("fixture {} has no .expected file", path.display()));
        let src = std::fs::read_to_string(&path).expect("fixture source");
        let name = path.file_name().unwrap().to_str().unwrap();
        let diags = lint_source(&src, &LintContext::offline());
        let rendered = render(name, &src, &diags);
        for want in expected
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
        {
            assert!(
                rendered.contains(want),
                "{name}: expected `{want}` in rendered diagnostics:\n{rendered}"
            );
        }
        checked += 1;
    }
    assert!(
        checked >= 32,
        "expected at least 32 fixtures, found {checked}"
    );
}

/// A defect fixture must carry a source line and a witness — the
/// diagnostics are only useful if they point somewhere.
#[test]
fn defect_fixtures_carry_spans_and_witnesses() {
    let src = std::fs::read_to_string(fixture_dir().join("unsafe_rule.dl")).unwrap();
    let diags = lint_source(&src, &LintContext::offline());
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].line, Some(2), "span must point at the unsafe rule");
    assert!(diags[0].witness.contains("`Y`"), "{:?}", diags[0]);
}

fn start(cfg: Config) -> (Server, std::net::SocketAddr) {
    let state = Gkbms::new().expect("fresh gkbms");
    let server = Server::bind("127.0.0.1:0", state, cfg).expect("bind");
    let addr = server.local_addr();
    (server, addr)
}

fn expect_lint_rejection(err: ClientError) -> String {
    match err {
        ClientError::Server(se) => {
            assert_eq!(se.code, ErrorCode::LintRejected, "{}", se.message);
            se.message
        }
        other => panic!("expected a typed server error, got {other:?}"),
    }
}

/// An unstratifiable TELL is rejected at admission with the negative
/// cycle as witness, nothing is admitted, and the session keeps
/// working — it is not poisoned and does not fail at the next ASK.
#[test]
fn server_rejects_unstratifiable_tell_with_typed_diagnostic() {
    let (server, addr) = start(Config::default());
    let mut c = Client::connect(addr).unwrap();
    let (s, _) = c.hello().unwrap();
    c.tell(s, "TELL Game end").unwrap();

    let err = c
        .tell(
            s,
            "TELL Game2 with rule w : $ win(X) :- move(X, Y), not win(Y) $ end",
        )
        .unwrap_err();
    let message = expect_lint_rejection(err);
    assert!(message.contains("CB002"), "{message}");
    assert!(message.contains("win -> win"), "{message}");

    // The rejected batch left no trace and the session still works.
    c.tell(s, "TELL p1 in Game end").unwrap();
    c.refresh(s).unwrap();
    let hits = c.ask(s, "x", "Game", "true").unwrap().answers;
    assert_eq!(hits, vec!["p1".to_string()]);
    let err = c.show(s, "Game2").unwrap_err();
    assert!(
        matches!(err, ClientError::Server(_)),
        "Game2 must not exist"
    );

    // The analyzer's metrics are scrapable.
    let metrics = c.metrics().unwrap();
    assert!(
        metrics.contains("gkbms_lint_diagnostics_total{severity=\"error\"}"),
        "lint error counter missing from metrics"
    );
    assert!(
        metrics.contains("gkbms_lint_seconds"),
        "lint latency missing"
    );
    server.shutdown().unwrap();
}

/// An unsafe rule (range restriction violated) is likewise rejected
/// with the offending variable named.
#[test]
fn server_rejects_unsafe_tell() {
    let (server, addr) = start(Config::default());
    let mut c = Client::connect(addr).unwrap();
    let (s, _) = c.hello().unwrap();
    let err = c
        .tell(s, "TELL Game with rule r : $ best(X, Y) :- plays(X) $ end")
        .unwrap_err();
    let message = expect_lint_rejection(err);
    assert!(message.contains("CB001"), "{message}");
    assert!(message.contains("`Y`"), "{message}");
    server.shutdown().unwrap();
}

/// Warnings are admitted by default (the Done text reports them) but
/// rejected under `strict_lint`.
#[test]
fn warnings_admit_by_default_and_reject_under_strict_lint() {
    // A rule referencing a predicate nothing defines: CB003, warning.
    let warned = "TELL Game with rule r : $ wins(X) :- beats(X, Y) $ end";

    let (server, addr) = start(Config::default());
    let mut c = Client::connect(addr).unwrap();
    let (s, _) = c.hello().unwrap();
    let text = c.tell(s, warned).unwrap();
    assert!(text.contains("lint warning"), "{text}");
    assert!(text.contains("CB003"), "{text}");
    server.shutdown().unwrap();

    let (server, addr) = start(Config {
        strict_lint: true,
        ..Config::default()
    });
    let mut c = Client::connect(addr).unwrap();
    let (s, _) = c.hello().unwrap();
    let message = expect_lint_rejection(c.tell(s, warned).unwrap_err());
    assert!(message.contains("CB003"), "{message}");
    // Clean TELLs still pass under strict lint.
    c.tell(s, "TELL Game end").unwrap();
    server.shutdown().unwrap();
}

/// The `Lint` wire op analyzes without admitting: diagnostics come
/// back over the wire and the KB is untouched.
#[test]
fn lint_op_reports_without_admitting() {
    let (server, addr) = start(Config::default());
    let mut c = Client::connect(addr).unwrap();
    let (s, _) = c.hello().unwrap();

    let diags = c
        .lint(
            s,
            "TELL Game with rule w : $ win(X) :- move(X, Y), not win(Y) $ end",
        )
        .unwrap();
    assert!(
        diags.iter().any(|d| d.is_error && d.code == "CB002"),
        "{diags:?}"
    );
    let cb002 = diags.iter().find(|d| d.code == "CB002").unwrap();
    assert!(
        cb002
            .witness
            .as_deref()
            .unwrap_or("")
            .contains("win -> win"),
        "{cb002:?}"
    );
    let err = c.show(s, "Game").unwrap_err();
    assert!(matches!(err, ClientError::Server(_)), "lint must not admit");

    // Datalog sources lint over the wire too, and clean input is clean.
    let diags = c.lint(s, "p(a).\nq(X, Y) :- p(X).").unwrap();
    assert!(diags.iter().any(|d| d.code == "CB001"), "{diags:?}");
    let diags = c.lint(s, "TELL Game end").unwrap();
    assert!(diags.is_empty(), "{diags:?}");
    server.shutdown().unwrap();
}
