//! Integration: fig 3-2 — the propositional representation of
//! `Invitation` — plus frame round-trips over the full stack.

use conceptbase::objectbase::frame::ObjectFrame;
use conceptbase::objectbase::transform::{frame_of, tell, tell_all};
use conceptbase::telos::{Kb, PropId};

#[test]
fn fig_3_2_invitation_as_propositions() {
    // "Consider, for example, a class TDL_EntityClass called
    // Invitation, which relates invitations to persons by an attribute
    // sender. The Object Transformer transforms this class into a set
    // of propositions as shown in Fig 3-2."
    let mut kb = Kb::new();
    tell_all(
        &mut kb,
        &ObjectFrame::parse_all(
            "TELL TDL_EntityClass isA Class end\n\
             TELL Person end\n\
             TELL Invitation in TDL_EntityClass with attribute sender : Person end",
        )
        .unwrap(),
    )
    .unwrap();

    let invitation = kb.lookup("Invitation").unwrap();
    let tdl = kb.lookup("TDL_EntityClass").unwrap();
    let person = kb.lookup("Person").unwrap();

    // Node propositions are self-referential: Invitation = <Invitation,
    // "Invitation", Invitation>.
    let p = kb.get(invitation).unwrap();
    assert!(p.is_individual());
    assert_eq!(kb.resolve(p.label), "Invitation");

    // The unlabeled (instanceof) link of fig 3-2: Invitation → TDL_EntityClass.
    let class_links: Vec<PropId> = kb
        .links_from(invitation)
        .into_iter()
        .filter(|&l| {
            let lp = kb.get(l).unwrap();
            kb.resolve(lp.label) == "instanceof" && lp.dest == tdl
        })
        .collect();
    assert_eq!(class_links.len(), 1);

    // The attribute proposition <Invitation, sender, Person> — itself
    // an object that can be the source of further propositions.
    let sender_attr = kb
        .attrs_of(invitation)
        .into_iter()
        .find(|&a| kb.resolve(kb.get(a).unwrap().label) == "sender")
        .unwrap();
    let ap = kb.get(sender_attr).unwrap();
    assert_eq!(ap.source, invitation);
    assert_eq!(ap.dest, person);
    assert!(!ap.is_individual());
    // "p can appear as the source component of another proposition":
    let meta = kb.individual("annotation").unwrap();
    let about_attr = kb.put_attr(sender_attr, "notedBy", meta).unwrap();
    assert_eq!(kb.get(about_attr).unwrap().source, sender_attr);
    assert_eq!(
        kb.display(about_attr),
        "<<Invitation sender Person> notedBy annotation>"
    );
}

#[test]
fn fig_3_2_two_time_dimensions() {
    // "PI = <Invitation, instanceof CLASS, version17>; PI' asserts that
    // PI is known since 21-Sep-1987" — history time on the link,
    // belief time from the KB clock.
    use conceptbase::telos::Interval;
    let mut kb = Kb::new();
    let invitation = kb.individual("Invitation").unwrap();
    let class = kb.builtins().simple_class;
    let instanceof = kb.intern("instanceof");
    kb.tick(); // "21-Sep-1987": some belief instant
    let told_at = kb.now();
    let link = kb
        .create_raw(
            invitation,
            instanceof,
            class,
            Interval::between(17, 18).unwrap(),
        )
        .unwrap();
    let p = kb.get(link).unwrap();
    assert_eq!(p.history, Interval::between(17, 18).unwrap());
    assert!(p.believed_at(told_at));
    assert!(!p.believed_at(told_at - 1));
    assert!(p.is_believed(), "belief open towards the future");
}

#[test]
fn frame_roundtrip_with_constraints_and_tokens() {
    let mut kb = Kb::new();
    tell_all(
        &mut kb,
        &ObjectFrame::parse_all(
            "TELL TDL_EntityClass isA Class end\n\
             TELL Person end\n\
             TELL Paper in TDL_EntityClass with attribute author : Person end",
        )
        .unwrap(),
    )
    .unwrap();
    let src = "TELL Invitation in TDL_EntityClass isA Paper with\n\
               attribute sender : Person\n\
               constraint hasSender : $ forall i/Invitation i.sender defined $\n\
               end";
    let frame = ObjectFrame::parse(src).unwrap();
    tell(&mut kb, &frame).unwrap();
    let back = frame_of(&kb, kb.lookup("Invitation").unwrap()).unwrap();
    // Round-trip: re-parse the printed frame and compare structure.
    let reparsed = ObjectFrame::parse(&back.to_string()).unwrap();
    assert_eq!(reparsed.name, "Invitation");
    assert_eq!(reparsed.classes, vec!["TDL_EntityClass"]);
    assert_eq!(reparsed.isa, vec!["Paper"]);
    assert_eq!(reparsed.attrs.len(), 1);
    assert_eq!(reparsed.constraints.len(), 1);
    assert!(reparsed.constraints[0].1.contains("sender defined"));
}

#[test]
fn transformer_feeds_consistency_checker() {
    // The §3.1 pipeline: object transformer → proposition processor →
    // consistency checker.
    use conceptbase::objectbase::consistency::{check_touched, Violation};
    let mut kb = Kb::new();
    tell_all(
        &mut kb,
        &ObjectFrame::parse_all(
            "TELL Person end\n\
             TELL Invitation with\n\
               attribute sender : Person\n\
               constraint hasSender : $ forall i/Invitation i.sender defined $\n\
             end",
        )
        .unwrap(),
    )
    .unwrap();
    // A violating token…
    let receipt = tell(
        &mut kb,
        &ObjectFrame::parse("TELL inv1 in Invitation end").unwrap(),
    )
    .unwrap();
    let (violations, _) = check_touched(&kb, &receipt.created);
    assert!(violations
        .iter()
        .any(|v| matches!(v, Violation::Constraint { name, .. } if name == "hasSender")));
    // …fixed by a second TELL.
    tell(
        &mut kb,
        &ObjectFrame::parse("TELL maria in Person end").unwrap(),
    )
    .unwrap();
    let receipt = tell(
        &mut kb,
        &ObjectFrame::parse("TELL inv1 with attribute sender : maria end").unwrap(),
    )
    .unwrap();
    let (violations, _) = check_touched(&kb, &receipt.created);
    assert!(violations.is_empty());
}
