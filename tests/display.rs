//! Integration: the Model Configuration module and the display tools
//! over a real GKBMS state (§3.1 "Conceptual Model Processor").

use conceptbase::gkbms::scenario::Scenario;
use conceptbase::modelbase::display::relational::Table;
use conceptbase::modelbase::ModelLattice;

#[test]
fn gkbms_as_a_configured_model() {
    // "The GKBMS is implemented as a model in ConceptBase" — build the
    // model lattice of fig 3-1: the GKBMS model comprising the design
    // object, decision and tool bases, sharing the object base with a
    // hypothetical second application.
    let mut s = Scenario::setup().unwrap();
    s.step2_map_invitations().unwrap();
    let kb = s.gkbms.kb();

    let mut lattice = ModelLattice::new();
    let gkbms_model = lattice.define("GKBMS").unwrap();
    let objects = lattice.define("DesignObjectBase").unwrap();
    let decisions = lattice.define("DesignDecisionBase").unwrap();
    let tools = lattice.define("DesignToolBase").unwrap();
    lattice.include(gkbms_model, objects).unwrap();
    lattice.include(gkbms_model, decisions).unwrap();
    lattice.include(gkbms_model, tools).unwrap();

    // Populate from the KB.
    for name in s.gkbms.current_objects() {
        lattice.add_object(objects, kb.lookup(&name).unwrap());
    }
    lattice.add_object(decisions, kb.lookup("mapInvitations").unwrap());
    lattice.add_object(tools, kb.lookup("TDL-DBPL-Mapper").unwrap());

    // A second application sharing only the object base.
    let reporting = lattice.define("ReportingApp").unwrap();
    lattice.include(reporting, objects).unwrap();

    // Configure the GKBMS: everything accessible.
    lattice.configure(&[gkbms_model]);
    assert!(lattice.is_accessible(kb.lookup("mapInvitations").unwrap()));
    // Configure the reporting app: decisions are not accessible.
    lattice.configure(&[reporting]);
    assert!(lattice.is_accessible(kb.lookup("InvitationRel").unwrap()));
    assert!(!lattice.is_accessible(kb.lookup("mapInvitations").unwrap()));
    // Sharing is observable.
    assert!(!lattice.shared_objects(gkbms_model, reporting).is_empty());
}

#[test]
fn relational_display_of_decision_documentation() {
    let mut s = Scenario::setup().unwrap();
    s.step2_map_invitations().unwrap();
    s.step3_normalize().unwrap();
    // Build the fig 3-1 "relational display": one row per decision.
    let mut t = Table::new(&["decision", "class", "from", "to"]);
    for r in s.gkbms.records() {
        t.row(&[&r.name, &r.class, &r.inputs.join(","), &r.outputs.join(",")]);
    }
    let rendered = t.render_window(0, 10, 28);
    assert!(rendered.contains("mapInvitations"));
    assert!(rendered.contains("normalizeInvitations"));
    // Long cells are clipped with an ellipsis, per "variable column
    // width".
    assert!(rendered.contains('…'));
}

#[test]
fn dot_export_of_scenario_dependencies() {
    use conceptbase::modelbase::display::dot::to_dot;
    let mut s = Scenario::setup().unwrap();
    s.step2_map_invitations().unwrap();
    let graph = s.gkbms.dependency_graph();
    let dot = to_dot(&graph, "fig2-2");
    assert!(dot.contains("digraph \"fig2-2\""));
    assert!(dot.contains("\"Invitation\" -> \"DecMoveDown:mapInvitations\""));
    assert!(dot.contains("[label=\"to\"]"));
}

#[test]
fn browse_session_over_decision_instances() {
    use conceptbase::modelbase::BrowseSession;
    let mut s = Scenario::setup().unwrap();
    s.step2_map_invitations().unwrap();
    let kb = s.gkbms.kb();
    // Focus on the decision class, enumerate its instances.
    let session = BrowseSession::start(kb, "DecMoveDown").unwrap();
    let tree = session.instance_tree();
    assert!(tree.contains("mapInvitations"));
}
