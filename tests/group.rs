//! Integration: group decision support (§3.3.3) combined with the
//! GKBMS — multiple developers, argumentation, conflict detection, and
//! the resolution recorded as a documented decision.

use conceptbase::gkbms::scenario::Scenario;
use conceptbase::rms::group::{GroupBoard, Stance};

#[test]
fn key_debate_resolution_drives_the_gkbms() {
    // The §2.1 key choice, deliberated by two developers.
    let mut board = GroupBoard::new();
    let dev = board.stakeholder("developer");
    let maintainer = board.stakeholder("maintainer");
    board.criterion("user-friendliness", 2.0);
    board.criterion("robustness", 3.0);
    let issue = board.issue("key of InvitationRel2");
    let surrogate = board.position(issue, "keep paperkey");
    let associative = board.position(issue, "use (date, author)");
    board.exclusive(surrogate, associative);
    board.score(surrogate, "robustness", 0.9);
    board.score(associative, "user-friendliness", 0.9);
    board.argue(associative, Stance::Pro, dev, "friendlier", 1.0);
    board.argue(
        associative,
        Stance::Con,
        maintainer,
        "fragile under evolution",
        1.5,
    );
    board.endorse(associative, dev);
    board.endorse(surrogate, maintainer);

    // The conflict is surfaced before anything is executed.
    assert_eq!(board.conflicts().len(), 1);

    // Multicriteria choice favours the surrogate; resolve and only
    // *then* execute the corresponding GKBMS path: the scenario without
    // the key substitution.
    let ranking = board.rank(issue);
    assert_eq!(ranking[0].0, surrogate);
    board.resolve(issue, surrogate);

    let mut s = Scenario::setup().unwrap();
    s.step2_map_invitations().unwrap();
    s.step3_normalize().unwrap();
    // The chosen position (surrogate) means step 4 is skipped; mapping
    // Minutes then raises no conflict.
    let (_, conflicts) = s.step5_map_minutes().unwrap();
    assert!(
        conflicts.is_empty(),
        "deliberation avoided fig 2-4 entirely"
    );
}

#[test]
fn losing_position_recorded_not_erased() {
    let mut board = GroupBoard::new();
    let dev = board.stakeholder("developer");
    board.criterion("c", 1.0);
    let issue = board.issue("i");
    let a = board.position(issue, "A");
    let b = board.position(issue, "B");
    board.score(a, "c", 0.9);
    board.score(b, "c", 0.1);
    board.argue(b, Stance::Pro, dev, "still documented", 0.2);
    board.resolve(issue, a);
    // The display still shows the losing position and its arguments —
    // the documentation discipline of the paper applied to debates.
    let rendered = board.to_string();
    assert!(rendered.contains("* P0: A"));
    assert!(rendered.contains("  P1: B"));
    assert!(rendered.contains("still documented"));
}

#[test]
fn multi_developer_decision_history() {
    // Decisions by different performers coexist in one history and the
    // process view names them.
    use conceptbase::gkbms::metamodel::kernel;
    use conceptbase::gkbms::{DecisionClass, DecisionDimension, DecisionRequest, Gkbms, ToolSpec};
    let mut g = Gkbms::new().unwrap();
    g.define_decision_class(
        DecisionClass::new("DecMap", DecisionDimension::Mapping)
            .from_classes(&[kernel::TDL_ENTITY_CLASS])
            .to_classes(&[kernel::DBPL_REL]),
    )
    .unwrap();
    g.register_tool(ToolSpec::new("Mapper", true).executes("DecMap"))
        .unwrap();
    g.register_object("A", kernel::TDL_ENTITY_CLASS, "src")
        .unwrap();
    g.register_object("B", kernel::TDL_ENTITY_CLASS, "src")
        .unwrap();
    g.execute(
        DecisionRequest::new("DecMap", "mapA", "alice")
            .with_tool("Mapper")
            .input("A")
            .output("ARel", kernel::DBPL_REL),
    )
    .unwrap();
    g.execute(
        DecisionRequest::new("DecMap", "mapB", "bob")
            .with_tool("Mapper")
            .input("B")
            .output("BRel", kernel::DBPL_REL),
    )
    .unwrap();
    assert_eq!(g.record("mapA").unwrap().performer, "alice");
    assert_eq!(g.record("mapB").unwrap().performer, "bob");
    // Both performers appear as Agent instances in the KB.
    let kb = g.kb();
    let agent = kb.lookup("Agent").unwrap();
    let agents: Vec<String> = kb
        .all_instances_of(agent)
        .into_iter()
        .map(|a| kb.display(a))
        .collect();
    assert!(agents.contains(&"alice".to_string()));
    assert!(agents.contains(&"bob".to_string()));
    // alice's retraction does not disturb bob's work.
    g.retract_decision("mapA").unwrap();
    assert!(g.is_current("BRel"));
    assert!(!g.is_current("ARel"));
}
