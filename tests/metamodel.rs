//! Integration: the knowledge-structure figures — levels of design
//! object knowledge (fig 2-5), decision/tool interrelationships
//! (fig 2-6), and the proposition-level representation of design
//! decisions (fig 3-3).

use conceptbase::gkbms::metamodel::{self, kernel, names};
use conceptbase::gkbms::{
    DecisionClass, DecisionDimension, DecisionRequest, Discharge, Gkbms, ToolSpec,
};
use conceptbase::telos::Kb;

fn gkbms_with_normalize() -> Gkbms {
    let mut g = Gkbms::new().unwrap();
    g.define_decision_class(
        DecisionClass::new("TDL_MappingDec", DecisionDimension::Mapping)
            .from_classes(&[kernel::TDL_ENTITY_CLASS])
            .to_classes(&[kernel::DBPL_REL]),
    )
    .unwrap();
    g.define_decision_class(
        DecisionClass::new("DecNormalize", DecisionDimension::Refinement)
            .from_classes(&[kernel::DBPL_REL])
            .to_classes(&[
                kernel::NORMALIZED_DBPL_REL,
                kernel::DBPL_SELECTOR,
                kernel::DBPL_CONSTRUCTOR,
            ])
            .obligation("normalized", "1NF with correct keys"),
    )
    .unwrap();
    g.register_tool(
        ToolSpec::new("NormalizerTool", true)
            .executes("DecNormalize")
            .guarantees("normalized"),
    )
    .unwrap();
    g
}

#[test]
fn fig_2_5_levels() {
    // "Levels of design object knowledge base": metaclass / class /
    // instance, with sources outside the GKB.
    let mut kb = Kb::new();
    let pm = metamodel::bootstrap(&mut kb).unwrap();
    metamodel::install_kernel(&mut kb, &pm).unwrap();
    let design_object = kb.lookup("DesignObject").unwrap();
    let dbpl_rel = kb.lookup(kernel::DBPL_REL).unwrap();
    // Class level: DBPL_Rel in DesignObject.
    assert!(kb.is_instance_of(dbpl_rel, design_object));
    // Instance level: a token in DBPL_Rel.
    let token = kb.individual("InvitationRel").unwrap();
    kb.instantiate(token, dbpl_rel).unwrap();
    assert!(kb.is_instance_of(token, dbpl_rel));
    // The levels are strictly separated (no collapsing).
    assert!(!kb.is_instance_of(token, design_object));
    assert!(!kb.is_instance_of(design_object, dbpl_rel));
    // The uniform representation is abstract: sources live outside,
    // referenced by SOURCE links to SourceRef tokens.
    let src = kb.individual("dbpl://DocumentDB#InvitationRel").unwrap();
    kb.instantiate(src, pm.source_ref).unwrap();
    kb.put_attr(token, names::SOURCE_I, src).unwrap();
    assert_eq!(kb.attr_values(token, names::SOURCE_I), vec![src]);
}

#[test]
fn fig_2_6_decision_mediates_tools() {
    // "Methods/tools are not directly associated with object classes
    // but only indirectly via the mediating concept of decision class."
    let mut g = gkbms_with_normalize();
    g.register_object("InvitationRel", kernel::DBPL_REL, "src")
        .unwrap();
    let menu = g.applicable_decisions("InvitationRel").unwrap();
    assert_eq!(menu.len(), 1);
    assert_eq!(menu[0].0, "DecNormalize");
    assert_eq!(menu[0].1, vec!["NormalizerTool"]);
    // The tool is reachable only through the decision class: an object
    // whose classes match no decision class gets an empty menu.
    g.register_object("SomeScript", kernel::TDL_TRANSACTION, "src")
        .unwrap();
    assert!(g.applicable_decisions("SomeScript").unwrap().is_empty());
}

#[test]
fn fig_3_3_proposition_level_decision_documentation() {
    let mut g = gkbms_with_normalize();
    g.register_object("InvitationRel", kernel::DBPL_REL, "src")
        .unwrap();
    g.execute(
        DecisionRequest::new("DecNormalize", "normalizeInvitations", "developer")
            .with_tool("NormalizerTool")
            .input("InvitationRel")
            .output("InvitationRel2", kernel::NORMALIZED_DBPL_REL)
            .output("InvReceivRel", kernel::NORMALIZED_DBPL_REL)
            .output("InvitationsPaperIC", kernel::DBPL_SELECTOR)
            .output("ConsInvitation", kernel::DBPL_CONSTRUCTOR),
    )
    .unwrap();
    let kb = g.kb();

    // Middle layer: DecNormalize has from/to links to DBPL_Rel and its
    // specialization — "there are two links relating decision class
    // DecNormalize to object class DBPL_Rel, one being an instance of
    // FROM, the other one of TO (NormalizedDBPL_Rel is a
    // specialization of DBPL_Rel)".
    let dec_class = kb.lookup("DecNormalize").unwrap();
    let dbpl_rel = kb.lookup(kernel::DBPL_REL).unwrap();
    let normalized = kb.lookup(kernel::NORMALIZED_DBPL_REL).unwrap();
    assert!(kb.attr_values(dec_class, names::FROM_I).contains(&dbpl_rel));
    assert!(kb.attr_values(dec_class, names::TO_I).contains(&normalized));
    assert!(kb.isa_ancestors(normalized).contains(&dbpl_rel));

    // Bottom layer: the executed decision interrelates the object
    // instances, and each output's justification points at it.
    let dec = kb.lookup("normalizeInvitations").unwrap();
    assert!(kb.is_instance_of(dec, dec_class));
    let from = kb.attr_values(dec, names::FROM_I);
    assert_eq!(from, vec![kb.lookup("InvitationRel").unwrap()]);
    let to = kb.attr_values(dec, names::TO_I);
    assert_eq!(to.len(), 4);
    let inv2 = kb.lookup("InvitationRel2").unwrap();
    assert_eq!(kb.attr_values(inv2, names::JUSTIFICATION_I), vec![dec]);
    // The tool association at the instance level.
    let by = kb.attr_values(dec, names::BY_I);
    assert_eq!(by, vec![kb.lookup("NormalizerTool").unwrap()]);

    // Top layer: everything is classified under the metaclasses.
    let design_decision = kb.lookup("DesignDecision").unwrap();
    assert!(kb.is_instance_of(dec_class, design_decision));
    // And the whole construction satisfies the CML axioms.
    assert!(conceptbase::telos::axioms::check_all(kb).is_empty());
}

#[test]
fn verification_obligations_per_fig_3_3() {
    // "normalizeInvitations must satisfy that InvitationRel2 and
    // InvReceivRel are normalized DBPL relations with correct keys;
    // however … the key decision may be executed manually, thus
    // creating a proof obligation (the 'proof' may be either formal or
    // by 'signature' of the decision maker)."
    let mut g = gkbms_with_normalize();
    g.register_object("InvitationRel", kernel::DBPL_REL, "src")
        .unwrap();
    // Manual execution (no tool): obligation must be discharged.
    let err = g.execute(
        DecisionRequest::new("DecNormalize", "manualNorm", "developer")
            .input("InvitationRel")
            .output("X", kernel::NORMALIZED_DBPL_REL),
    );
    assert!(err.is_err());
    g.execute(
        DecisionRequest::new("DecNormalize", "manualNorm", "developer")
            .input("InvitationRel")
            .output("X", kernel::NORMALIZED_DBPL_REL)
            .discharge(Discharge::Signature {
                obligation: "normalized".into(),
                by: "developer".into(),
            }),
    )
    .unwrap();
    let rec = g.record("manualNorm").unwrap();
    assert!(matches!(rec.discharges[0], Discharge::Signature { .. }));
}

#[test]
fn metamodel_is_extensible_with_new_decision_knowledge() {
    // §2.2: "this development knowledge is extensible to capture
    // additionally evolved knowledge about languages, design decisions
    // and tools."
    let mut g = gkbms_with_normalize();
    // A new object class for a new language…
    g.define_object_class("SQL_View", "Implementation", Some(kernel::DBPL_CONSTRUCTOR))
        .unwrap();
    // …a new decision class over it…
    g.define_decision_class(
        DecisionClass::new("DecViewCompile", DecisionDimension::Mapping)
            .from_classes(&[kernel::DBPL_CONSTRUCTOR])
            .to_classes(&["SQL_View"]),
    )
    .unwrap();
    // …and a new tool, all without kernel changes.
    g.register_tool(ToolSpec::new("ViewCompiler", true).executes("DecViewCompile"))
        .unwrap();
    g.register_object("ConsPapers", kernel::DBPL_CONSTRUCTOR, "src")
        .unwrap();
    let menu = g.applicable_decisions("ConsPapers").unwrap();
    assert!(menu
        .iter()
        .any(|(dc, tools)| dc == "DecViewCompile" && tools.contains(&"ViewCompiler".to_string())));
    g.execute(
        DecisionRequest::new("DecViewCompile", "compilePapers", "dev")
            .with_tool("ViewCompiler")
            .input("ConsPapers")
            .output("PapersView", "SQL_View"),
    )
    .unwrap();
    assert!(g.is_current("PapersView"));
}
