//! Integration: the §3.3.3 second-stage facilities — design
//! explanation and dependency-directed conflict resolution — over the
//! full scenario history.

use conceptbase::gkbms::scenario::Scenario;

fn full_history() -> Scenario {
    let mut s = Scenario::setup().unwrap();
    s.step2_map_invitations().unwrap();
    s.step3_normalize().unwrap();
    s.step4_substitute_keys().unwrap();
    s
}

#[test]
fn explanation_covers_the_scenario_chain() {
    let s = full_history();
    let e = s.gkbms.explain("InvitationRel2").unwrap();
    // The full justification chain down to the registered TDL objects.
    assert!(e.contains("justified by `normalizeInvitations`"));
    assert!(e.contains("justified by `mapInvitations`"));
    assert!(e.contains("registered design object (source: design.tdl#Invitation)"));
    // Obligations and their coverage are explained.
    assert!(e.contains("obligation `normalized`"));
    assert!(e.contains("guaranteed by tool NormalizerTool"));
}

#[test]
fn explanation_of_the_key_choice_shows_the_signature() {
    let s = full_history();
    let e = s.gkbms.explain("InvitationRel2@assoc").unwrap();
    assert!(e.contains("justified by `chooseAssociativeKeys`"));
    assert!(e.contains("choice"));
    assert!(e.contains("signed by developer"));
    let d = s.gkbms.explain_decision("chooseAssociativeKeys").unwrap();
    assert!(d.contains("(effective)"));
    assert!(d.contains("using KeyEditor"));
}

#[test]
fn automatic_conflict_resolution_mirrors_fig_2_4() {
    // Instead of the developer manually retracting (scenario step 6),
    // report the conflict to the DDB machinery, narrowed to the key
    // decision as the paper's developer concluded.
    let mut s = full_history();
    let (_, conflicts) = s.step5_map_minutes().unwrap();
    assert_eq!(conflicts.len(), 1);
    let resolution = s
        .gkbms
        .report_conflict(&conflicts[0].to_string(), &["chooseAssociativeKeys"])
        .unwrap();
    assert_eq!(resolution.culprit, "chooseAssociativeKeys");
    assert!(resolution.affected.iter().all(|o| o.contains("@assoc")));
    // The rest of the design survives; the nogood warns against a redo.
    assert!(s.gkbms.is_effective("mapMinutes"));
    assert!(s.gkbms.is_effective("normalizeInvitations"));
    assert!(s.gkbms.would_repeat_nogood(&["chooseAssociativeKeys"]));
    // The retracted object's explanation reflects the retraction.
    let e = s.gkbms.explain("InvitationRel2@assoc").unwrap();
    assert!(e.contains("not current"));
    assert!(e.contains("RETRACTED"));
}

#[test]
fn chronological_ddb_picks_the_latest_decision() {
    let mut s = full_history();
    s.step5_map_minutes().unwrap();
    // Without narrowing, the chronologically latest decision
    // (mapMinutes) is the culprit — Doyle's heuristic; the paper's
    // developer instead keeps Minutes and drops the key choice,
    // which `report_conflict(&[..narrowed..])` supports (above).
    let resolution = s
        .gkbms
        .report_conflict(
            "union key conflict",
            &["chooseAssociativeKeys", "mapMinutes"],
        )
        .unwrap();
    assert_eq!(resolution.culprit, "mapMinutes");
    assert!(s.gkbms.is_effective("chooseAssociativeKeys"));
}
