//! Property-based tests over the core invariants (DESIGN.md §6).

use conceptbase::datalog::ast::{Atom, Program, Term, Value};
use conceptbase::datalog::db::Database;
use conceptbase::datalog::{magic, seminaive, topdown};
use conceptbase::rms::atms::Atms;
use conceptbase::rms::jtms::Jtms;
use conceptbase::storage::record;
use conceptbase::storage::KvStore;
use conceptbase::telos::time::allen::{AllenNetwork, AllenRel, RelSet};
use conceptbase::telos::{Interval, Kb};
use proptest::prelude::*;

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (0i64..50, 1i64..20).prop_map(|(a, d)| Interval::between(a, a + d).expect("d > 0"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ---------- time calculus ----------

    #[test]
    fn allen_relation_is_total_and_converse_correct(
        a in interval_strategy(),
        b in interval_strategy(),
    ) {
        let r = AllenRel::between(&a, &b);
        prop_assert_eq!(r.converse(), AllenRel::between(&b, &a));
        // Exactly one basic relation holds: its converse's converse is it.
        prop_assert_eq!(r.converse().converse(), r);
    }

    #[test]
    fn allen_composition_is_sound(
        a in interval_strategy(),
        b in interval_strategy(),
        c in interval_strategy(),
    ) {
        let rab = RelSet::of(AllenRel::between(&a, &b));
        let rbc = RelSet::of(AllenRel::between(&b, &c));
        let rac = AllenRel::between(&a, &c);
        prop_assert!(rab.compose(rbc).contains(rac),
            "composition must contain the realized relation");
    }

    #[test]
    fn path_consistency_preserves_realizable_scenarios(
        ivals in prop::collection::vec(interval_strategy(), 2..6),
    ) {
        // Build the network from a concrete realization; propagation
        // must keep every realized relation possible.
        let n = ivals.len();
        let mut net = AllenNetwork::new(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    net.assert_rel(i, j, RelSet::of(AllenRel::between(&ivals[i], &ivals[j])));
                }
            }
        }
        prop_assert!(net.propagate(), "a realized network is consistent");
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    prop_assert!(net
                        .get(i, j)
                        .contains(AllenRel::between(&ivals[i], &ivals[j])));
                }
            }
        }
    }

    #[test]
    fn interval_intersection_is_contained_in_both(
        a in interval_strategy(),
        b in interval_strategy(),
    ) {
        if let Some(i) = a.intersect(&b) {
            prop_assert!(a.contains(&i));
            prop_assert!(b.contains(&i));
            prop_assert!(a.overlaps(&b));
        } else {
            prop_assert!(!a.overlaps(&b));
        }
        let s = a.span(&b);
        prop_assert!(s.contains(&a) && s.contains(&b));
    }

    // ---------- storage ----------

    #[test]
    fn record_codec_roundtrips(payload in prop::collection::vec(any::<u8>(), 0..300)) {
        let mut buf = Vec::new();
        record::encode(&payload, &mut buf).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        match record::read_record(&mut cursor, 0).unwrap() {
            record::ReadOutcome::Record(p) => prop_assert_eq!(p, payload),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    #[test]
    fn kv_recovery_matches_model(
        ops in prop::collection::vec(
            (0u8..3, 0u8..8, any::<u8>()),
            1..40,
        )
    ) {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "cb-prop-kv-{}-{:x}",
            std::process::id(),
            ops.iter().fold(0u64, |h, (a, b, c)| h
                .wrapping_mul(31)
                .wrapping_add(*a as u64 + *b as u64 * 7 + *c as u64 * 13))
        ));
        let _ = std::fs::remove_file(&path);
        let mut model = std::collections::BTreeMap::new();
        {
            let mut kv = KvStore::open(&path).unwrap();
            for (op, k, v) in &ops {
                let key = vec![*k];
                match op {
                    0 | 1 => {
                        kv.set(&key, &[*v]).unwrap();
                        model.insert(key, vec![*v]);
                    }
                    _ => {
                        kv.delete(&key).unwrap();
                        model.remove(&key);
                    }
                }
            }
            kv.sync().unwrap();
        }
        let kv = KvStore::open(&path).unwrap();
        let recovered: std::collections::BTreeMap<Vec<u8>, Vec<u8>> = kv
            .scan()
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(recovered, model);
    }

    // ---------- inference engines ----------

    #[test]
    fn engines_agree_on_transitive_closure(
        edges in prop::collection::vec((0i64..8, 0i64..8), 0..20)
    ) {
        let program = Program::parse(
            "path(X, Y) :- edge(X, Y).\npath(X, Z) :- edge(X, Y), path(Y, Z).",
        ).unwrap();
        let mut db = Database::new();
        for (a, b) in &edges {
            db.insert("edge", vec![Value::Int(*a), Value::Int(*b)]).unwrap();
        }
        let bottom = seminaive::evaluate_pred(&program, &db, "path").unwrap();
        // Top-down, fully open query.
        let mut td = topdown::TopDown::new(&program, &db);
        let mut top: Vec<Vec<Value>> = td
            .query(&Atom::new("path", vec![Term::var("X"), Term::var("Y")]))
            .unwrap()
            .into_iter()
            .map(|e| vec![e["X"].clone(), e["Y"].clone()])
            .collect();
        top.sort();
        top.dedup();
        prop_assert_eq!(&top, &bottom);
        // Magic with a bound first argument agrees with the filtered model.
        if let Some((a, _)) = edges.first() {
            let q = Atom::new("path", vec![Term::int(*a), Term::var("Y")]);
            let magic_answers = magic::magic_evaluate(&program, &db, &q).unwrap();
            let filtered: Vec<Vec<Value>> = bottom
                .iter()
                .filter(|t| t[0] == Value::Int(*a))
                .cloned()
                .collect();
            prop_assert_eq!(magic_answers, filtered);
        }
    }

    // ---------- reason maintenance ----------

    #[test]
    fn jtms_labels_are_a_fixpoint(
        chains in prop::collection::vec((0usize..4, 0usize..4), 1..12),
        retract_mask in any::<u8>(),
    ) {
        // 4 assumptions, nodes justified by random pairs of them.
        let mut tms = Jtms::new();
        let assumptions: Vec<_> = (0..4).map(|i| tms.assumption(format!("a{i}"))).collect();
        let mut derived = Vec::new();
        for (i, (x, y)) in chains.iter().enumerate() {
            let n = tms.node(format!("d{i}"));
            tms.justify(n, &[assumptions[*x], assumptions[*y]], &[]);
            derived.push((n, *x, *y));
        }
        for (i, a) in assumptions.iter().enumerate() {
            if retract_mask & (1 << i) != 0 {
                tms.retract(*a);
            }
        }
        for (n, x, y) in derived {
            let expect = tms.is_in(assumptions[x]) && tms.is_in(assumptions[y]);
            prop_assert_eq!(tms.is_in(n), expect);
        }
    }

    #[test]
    fn atms_labels_are_minimal_and_consistent(
        justs in prop::collection::vec(
            (0usize..4, 0usize..4, 0usize..3),
            1..10,
        )
    ) {
        let mut atms = Atms::new();
        let assumptions: Vec<_> = (0..4).map(|i| atms.assumption(format!("a{i}"))).collect();
        let nodes: Vec<_> = (0..3).map(|i| atms.node(format!("n{i}"))).collect();
        for (x, y, n) in &justs {
            atms.justify(nodes[*n], &[assumptions[*x], assumptions[*y]]);
        }
        // Make one combination a nogood.
        let bad = atms.contradiction("bad");
        atms.justify(bad, &[assumptions[0], assumptions[1]]);
        for &n in &nodes {
            let label = atms.label(n);
            for (i, e1) in label.iter().enumerate() {
                prop_assert!(atms.consistent(e1), "label env must be consistent");
                for (j, e2) in label.iter().enumerate() {
                    if i != j {
                        prop_assert!(!e1.subset_of(e2), "label must be minimal");
                    }
                }
            }
        }
    }

    // ---------- proposition processor ----------

    #[test]
    fn isa_closure_is_monotone_and_acyclic(
        links in prop::collection::vec((0usize..6, 0usize..6), 0..15)
    ) {
        let mut kb = Kb::new();
        let classes: Vec<_> = (0..6)
            .map(|i| kb.individual(&format!("C{i}")).unwrap())
            .collect();
        for (a, b) in links {
            // Cycle-creating links are rejected; accepted ones keep the
            // graph a DAG.
            let _ = kb.specialize(classes[a], classes[b]);
        }
        for &c in &classes {
            let ancestors = kb.isa_ancestors(c);
            prop_assert!(!ancestors.contains(&c), "no reflexive ancestry");
            for &a in &ancestors {
                // Ancestors of ancestors are ancestors (transitivity).
                for &aa in &kb.isa_ancestors(a) {
                    prop_assert!(ancestors.contains(&aa));
                }
            }
        }
    }

    // ---------- GKBMS backtracking invariant ----------

    #[test]
    fn selective_backtracking_partitions_exactly(
        chains in 2usize..5,
        depth in 1usize..4,
        victim_chain in 0usize..5,
        victim_depth in 0usize..4,
    ) {
        use conceptbase::gkbms::metamodel::kernel;
        use conceptbase::gkbms::{DecisionClass, DecisionDimension, DecisionRequest, Gkbms, ToolSpec};
        let victim_chain = victim_chain % chains;
        let victim_depth = victim_depth % depth;
        let mut g = Gkbms::new().unwrap();
        g.define_decision_class(
            DecisionClass::new("DecMap", DecisionDimension::Mapping)
                .from_classes(&[kernel::TDL_ENTITY_CLASS])
                .to_classes(&[kernel::DBPL_REL]),
        )
        .unwrap();
        g.define_decision_class(
            DecisionClass::new("DecRefine", DecisionDimension::Refinement)
                .from_classes(&[kernel::DBPL_REL])
                .to_classes(&[kernel::DBPL_REL]),
        )
        .unwrap();
        g.register_tool(ToolSpec::new("T", true).executes("DecMap").executes("DecRefine"))
            .unwrap();
        for i in 0..chains {
            g.register_object(&format!("E{i}"), kernel::TDL_ENTITY_CLASS, "src").unwrap();
            g.execute(
                DecisionRequest::new("DecMap", &format!("map{i}"), "dev")
                    .with_tool("T")
                    .input(&format!("E{i}"))
                    .output(&format!("R{i}_0"), kernel::DBPL_REL),
            )
            .unwrap();
            for d in 0..depth {
                g.execute(
                    DecisionRequest::new("DecRefine", &format!("ref{i}_{d}"), "dev")
                        .with_tool("T")
                        .input(&format!("R{i}_{d}"))
                        .output(&format!("R{i}_{}", d + 1), kernel::DBPL_REL),
                )
                .unwrap();
            }
        }
        let victim = format!("ref{victim_chain}_{victim_depth}");
        let affected = g.retract_decision(&victim).unwrap();
        // Exactly the downstream suffix of the victim chain went out.
        let expected: Vec<String> = (victim_depth + 1..=depth)
            .map(|d| format!("R{victim_chain}_{d}"))
            .collect();
        prop_assert_eq!(&affected, &expected);
        for i in 0..chains {
            for d in 0..=depth {
                let name = format!("R{i}_{d}");
                let should_be_current = i != victim_chain || d <= victim_depth;
                prop_assert_eq!(g.is_current(&name), should_be_current, "{}", name);
            }
        }
    }

    // ---------- language layer ----------

    #[test]
    fn tdl_display_reparses(
        width in 1usize..8,
        attrs in 0usize..4,
        seed in 0u64..1000,
    ) {
        // Reuse the bench generator shape inline: a root with `width`
        // subclasses carrying `attrs` attributes each.
        use conceptbase::langs::taxisdl::{EntityClass, TdlAttribute, TdlModel};
        let mut model = TdlModel::default();
        model.entities.push(EntityClass {
            name: "Domain".into(), isa: vec![], attributes: vec![],
        });
        model.entities.push(EntityClass {
            name: "Root".into(), isa: vec![], attributes: vec![],
        });
        for i in 0..width {
            let attributes = (0..attrs)
                .map(|a| TdlAttribute {
                    label: format!("a{i}_{a}"),
                    target: "Domain".into(),
                    set_valued: (seed + a as u64).is_multiple_of(3),
                })
                .collect();
            model.entities.push(EntityClass {
                name: format!("Sub{i}"),
                isa: vec!["Root".into()],
                attributes,
            });
        }
        let printed = model.to_string();
        let reparsed = TdlModel::parse(&printed).unwrap();
        prop_assert_eq!(model, reparsed);
    }

    #[test]
    fn dbpl_mapping_display_reparses(
        width in 1usize..6,
        seed in 0u64..1000,
    ) {
        use conceptbase::langs::dbpl::DbplModule;
        use conceptbase::langs::mapping::{Distribute, MappingStrategy, MoveDown};
        use conceptbase::langs::taxisdl::{EntityClass, TdlAttribute, TdlModel};
        let mut model = TdlModel::default();
        model.entities.push(EntityClass { name: "Domain".into(), isa: vec![], attributes: vec![] });
        model.entities.push(EntityClass { name: "Root".into(), isa: vec![], attributes: vec![] });
        for i in 0..width {
            model.entities.push(EntityClass {
                name: format!("Sub{i}"),
                isa: vec!["Root".into()],
                attributes: vec![TdlAttribute {
                    label: format!("a{i}"),
                    target: "Domain".into(),
                    set_valued: seed % 2 == 0,
                }],
            });
        }
        for strategy in [&MoveDown as &dyn MappingStrategy, &Distribute] {
            let out = strategy.map_hierarchy(&model, "Root").unwrap();
            let mut module = DbplModule::new("M");
            for d in out.decls {
                module.add(d).unwrap();
            }
            let printed = module.to_string();
            let reparsed = DbplModule::parse(&printed).unwrap();
            prop_assert_eq!(&module, &reparsed, "{}", strategy.name());
        }
    }

    // ---------- MVCC versions (ISSUE 6) ----------

    /// Differential concurrency property at the store level: versions
    /// captured at random points of a random TELL/UNTELL history, read
    /// concurrently from their own threads, must answer byte-identically
    /// to a serial retrospective query on the final KB at their
    /// watermark. This is the equivalence the server's lock-free ASK
    /// path rests on.
    #[test]
    fn pinned_versions_answer_like_serial_replay_at_their_watermark(
        ops in prop::collection::vec((0u8..5, 0usize..8), 1..40),
    ) {
        use conceptbase::objectbase::query::{ask_with_stats_at, ask_with_stats_version};
        let mut kb = Kb::new();
        let class = kb.individual("K").unwrap();
        let mut links = Vec::new();
        let mut counter = 0usize;
        let mut captured = Vec::new();
        for (op, sel) in ops {
            match op {
                // TELL (ticking first, as the server's begin_write does).
                0..=2 => {
                    kb.tick();
                    let x = kb.individual(&format!("x{counter}")).unwrap();
                    counter += 1;
                    links.push(kb.instantiate(x, class).unwrap());
                }
                // UNTELL a surviving instance link.
                3 => {
                    if !links.is_empty() {
                        kb.tick();
                        let l = links.remove(sel % links.len());
                        kb.untell(l).unwrap();
                    }
                }
                // Capture a version pinned at the current watermark.
                _ => captured.push((kb.version(), kb.now())),
            }
        }
        captured.push((kb.version(), kb.now()));

        // Concurrent pinned readers: each captured version answers from
        // its own thread, no lock, while the main thread replays the
        // same queries serially against the final KB.
        let results: Vec<Vec<String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = captured
                .iter()
                .map(|(v, w)| {
                    scope.spawn(move || {
                        ask_with_stats_version(v, *w, "x", "K", "true").unwrap().0
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for ((_, w), from_version) in captured.iter().zip(results) {
            let (serial, _) = ask_with_stats_at(&kb, *w, "x", "K", "true").unwrap();
            prop_assert_eq!(from_version, serial, "diverged at watermark {}", w);
        }
    }

    // ---------- incremental views (ISSUE 8) ----------

    /// Differential property: incremental maintenance against
    /// from-scratch recomputation over random TELL/UNTELL
    /// interleavings. The program composes a recursive stratum (DRed
    /// territory) with stratified negation over it (counting
    /// territory), and the oracle rebuilds the extensional database
    /// from an independent support multiset — so the view's own EDB
    /// bookkeeping (re-TELL raises support, UNTELL of absent is a
    /// no-op) is checked too, not assumed.
    #[test]
    fn incremental_maintenance_matches_recompute_under_churn(
        ops in prop::collection::vec((0u8..3, 0i64..5, 0i64..5), 1..30),
    ) {
        use conceptbase::datalog::ivm::{Fact, MaterializedView};
        let program = Program::parse(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- path(X, Y), edge(Y, Z).\n\
             node(X) :- edge(X, _Y).\n\
             node(Y) :- edge(_X, Y).\n\
             cut(X, Y) :- node(X), node(Y), not path(X, Y).",
        )
        .unwrap();
        let mut view = MaterializedView::new(program.clone()).unwrap();
        let mut support: std::collections::HashMap<Fact, i64> =
            std::collections::HashMap::new();
        for (op, a, b) in ops {
            let f: Fact = ("edge".to_string(), vec![Value::Int(a), Value::Int(b)]);
            match op {
                // TELL, weighted 2:1 so the model actually grows.
                0 | 1 => {
                    view.apply(std::slice::from_ref(&f), &[]).unwrap();
                    *support.entry(f).or_insert(0) += 1;
                }
                // UNTELL, possibly of an absent fact (must be a no-op).
                _ => {
                    view.apply(&[], std::slice::from_ref(&f)).unwrap();
                    let e = support.entry(f).or_insert(0);
                    *e = (*e - 1).max(0);
                }
            }
            let mut edb = Database::new();
            for ((pred, tuple), n) in &support {
                if *n > 0 {
                    edb.insert(pred, tuple.clone()).unwrap();
                }
            }
            let (expect, _) = seminaive::evaluate(&program, &edb).unwrap();
            let mut preds: Vec<&str> = expect.preds();
            preds.extend(view.model().preds());
            preds.sort_unstable();
            preds.dedup();
            for pred in preds {
                let mut got: Vec<Vec<Value>> = view.model().tuples(pred).collect();
                let mut want: Vec<Vec<Value>> = expect.tuples(pred).collect();
                got.sort();
                want.sort();
                prop_assert_eq!(got, want, "maintained and recomputed `{}` differ", pred);
            }
        }
    }

    /// Regression (ISSUE 8 satellite 3): pinned belief-time reads must
    /// not observe view refreshes. Answers captured through
    /// `ask_with_stats_at` and `ask_with_stats_version` at a watermark
    /// stay byte-identical while a registered view refreshes on newer
    /// ticks of random TELL/UNTELL churn.
    #[test]
    fn pinned_asks_are_byte_identical_across_view_refreshes(
        churn in prop::collection::vec((any::<bool>(), 0usize..4), 1..8),
    ) {
        use conceptbase::gkbms::Gkbms;
        use conceptbase::objectbase::query::{ask_with_stats_at, ask_with_stats_version};
        let mut g = Gkbms::new().unwrap();
        g.tell_src("TELL Person end\nTELL maria in Person end").unwrap();
        g.register_view("closure", "hasSelf(X) :- in_(X, _C).").unwrap();
        let watermark = g.kb().now();
        let version = g.kb().version();
        let (before, _) =
            ask_with_stats_at(g.kb(), watermark, "x", "Person", "true").unwrap();
        let mut told: Vec<String> = Vec::new();
        let mut counter = 0usize;
        for (tell, sel) in churn {
            if tell || told.is_empty() {
                let name = format!("p{counter}");
                counter += 1;
                g.tell_src(&format!("TELL {name} in Person end")).unwrap();
                told.push(name);
            } else {
                let name = told.remove(sel % told.len());
                g.untell(&name).unwrap();
            }
        }
        let v = g.view("closure").unwrap();
        prop_assert!(v.as_of() > watermark, "the view refreshed past the watermark");
        let (after, _) =
            ask_with_stats_at(g.kb(), watermark, "x", "Person", "true").unwrap();
        let (from_version, _) =
            ask_with_stats_version(&version, watermark, "x", "Person", "true").unwrap();
        prop_assert_eq!(&after, &before, "ask_with_stats_at leaked a refresh");
        prop_assert_eq!(&from_version, &before, "ask_with_stats_version leaked a refresh");
    }

    #[test]
    fn untell_restores_previous_query_results(
        n_attrs in 1usize..6,
    ) {
        let mut kb = Kb::new();
        let obj = kb.individual("obj").unwrap();
        let val = kb.individual("val").unwrap();
        let mut links = Vec::new();
        for i in 0..n_attrs {
            links.push(kb.put_attr(obj, &format!("l{i}"), val).unwrap());
        }
        let before = kb.believed_count();
        for l in links {
            kb.untell(l).unwrap();
        }
        prop_assert_eq!(kb.believed_count(), before - n_attrs);
        prop_assert!(kb.attrs_of(obj).is_empty());
        prop_assert_eq!(kb.len() - 2, n_attrs + kb.builtins_len_offset());
    }
}

/// Helper trait to make the last property readable without exposing
/// internals: the number of bootstrap propositions.
trait BuiltinsLen {
    fn builtins_len_offset(&self) -> usize;
}

impl BuiltinsLen for Kb {
    fn builtins_len_offset(&self) -> usize {
        // Everything created before "obj": total - obj - val - attrs.
        // Computed from a fresh bootstrap for stability.
        static OFFSET: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        *OFFSET.get_or_init(|| Kb::new().len())
    }
}

// ---------- synthetic histories (gkbms::synth) ----------
//
// A separate block with few cases: each case boots three full GKBMS
// instances and persists two of them, which is orders of magnitude
// heavier than the calculus properties above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn synthetic_history_is_seed_deterministic_and_replays_byte_identical(
        seed in 0u64..1_000,
        decisions in 10usize..40,
        retraction_steps in 0u32..4,
    ) {
        use conceptbase::gkbms::synth::{self, SynthConfig};
        use conceptbase::gkbms::Gkbms;
        let cfg = SynthConfig {
            seed,
            decisions,
            fanout: 2,
            retraction_rate: f64::from(retraction_steps) * 0.05,
            ..SynthConfig::default()
        };
        // Same seed, same corpus: the generator is deterministic.
        let mut g1 = Gkbms::new().unwrap();
        let h1 = synth::generate_into(&mut g1, &cfg).unwrap();
        let mut g2 = Gkbms::new().unwrap();
        let h2 = synth::generate_into(&mut g2, &cfg).unwrap();
        prop_assert_eq!(&h1, &h2, "same-seed corpora must be identical");
        prop_assert_eq!(h1.fingerprint(), h2.fingerprint());
        // Serial re-execution of the recorded ops is replay-equivalent.
        let mut g3 = Gkbms::new().unwrap();
        synth::apply(&mut g3, &h1).unwrap();
        prop_assert_eq!(g1.records().len(), g3.records().len());
        prop_assert_eq!(g1.current_objects(), g3.current_objects());
        prop_assert_eq!(g1.kb().len(), g3.kb().len());
        // ...and persists byte-identically with the generating run.
        let dir = std::env::temp_dir();
        let p1 = dir.join(format!("cb-synth-{}-{seed}-{decisions}-gen.kb", std::process::id()));
        let p3 = dir.join(format!("cb-synth-{}-{seed}-{decisions}-rep.kb", std::process::id()));
        g1.save(&p1).unwrap();
        g3.save(&p3).unwrap();
        let b1 = std::fs::read(&p1).unwrap();
        let b3 = std::fs::read(&p3).unwrap();
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p3);
        prop_assert_eq!(b1, b3, "replayed history must persist byte-identically");
    }

    /// ISSUE 10 tentpole: the incremental analyzer (per-SCC
    /// fingerprint cache, reused across admissions) must agree with a
    /// from-scratch lint after every step of a random TELL/UNTELL
    /// sequence — same diagnostics, same order.
    #[test]
    fn incremental_lint_matches_from_scratch_under_churn(
        ops in prop::collection::vec((any::<bool>(), 0usize..5), 1..8),
    ) {
        use conceptbase::analysis::{lint_source, lint_source_cached, AnalysisCache, LintContext};
        use conceptbase::gkbms::Gkbms;
        let mut g = Gkbms::new().unwrap();
        g.tell_src("TELL Person end").unwrap();
        let mut cache = AnalysisCache::new();
        let mut told: Vec<String> = Vec::new();
        let mut counter = 0usize;
        for (tell, sel) in ops {
            if tell || told.is_empty() {
                counter += 1;
                // Every other TELL carries a rule, so the stored rule
                // base (and with it the SCC structure) really churns.
                if counter.is_multiple_of(2) {
                    g.tell_src(&format!(
                        "TELL C{counter} with rule r{counter} : \
                         $ p{counter}(X) :- in_(X, \"Person\") $ end"
                    )).unwrap();
                    told.push(format!("C{counter}"));
                } else {
                    g.tell_src(&format!("TELL q{counter} in Person end")).unwrap();
                    told.push(format!("q{counter}"));
                }
            } else {
                let name = told.remove(sel % told.len());
                g.untell(&name).unwrap();
            }
            for probe in [
                "good(X) :- in_(X, \"Person\").",
                "spin(X, Y) :- spin(Y, X).",
                "pairs(X, Y) :- in_(X, C), isa(Y, D).",
            ] {
                let ctx = LintContext::from_kb(g.kb());
                let warm = lint_source_cached(probe, &ctx, &mut cache);
                let cold = lint_source(probe, &ctx);
                prop_assert_eq!(warm, cold,
                    "incremental and from-scratch lint diverged on `{}`", probe);
            }
        }
    }
}
