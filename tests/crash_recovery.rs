//! Crash-injection recovery harness.
//!
//! Simulates a kill at arbitrary points of the durability pipeline by
//! truncating (and flipping bytes of) copies of the on-disk state, then
//! asserts the recovery invariants:
//!
//! * **prefix durability** — every mutation whose synced WAL bytes lie
//!   at or below the crash point survives recovery;
//! * **no interior loss** — recovery replays exactly the whole records
//!   below the crash point, never skipping one in the middle;
//! * **no panics** — every injected crash yields either a recovered
//!   prefix or a typed error.

use conceptbase::gkbms::journal::{SNAPSHOT_FILE, WAL_FILE};
use conceptbase::gkbms::metamodel::kernel;
use conceptbase::gkbms::{DecisionClass, DecisionDimension, DecisionRequest, Gkbms, ToolSpec};
use conceptbase::storage::crash;
use std::path::{Path, PathBuf};

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cb-crashrec-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

const PADS: usize = 8;
/// Fixed step indexes of the scripted history below.
const STEP_TELL_ADHOC: usize = 5;
const STEP_EXEC_MINUTES: usize = 6;
const STEP_UNTELL_ADHOC: usize = 7;
const STEP_RETRACT_MINUTES: usize = 8;
const STEP_FIRST_PAD: usize = 9;

/// Builds a journaled history in `dir`, syncing after every mutation
/// and recording the WAL length at each step boundary. Each step
/// appends exactly one WAL record, so whole-record boundaries and step
/// boundaries coincide.
fn build_journaled_history(dir: &Path) -> Vec<u64> {
    let wal = dir.join(WAL_FILE);
    let (mut g, report) = Gkbms::recover(dir).expect("fresh recover");
    assert_eq!(report.replayed_ops, 0);
    let mut boundaries = Vec::new();
    let mut mark = |g: &mut Gkbms| {
        g.journal_mut().expect("journaled").sync().expect("sync");
        boundaries.push(crash::file_len(&wal).expect("wal len"));
    };

    g.define_decision_class(
        DecisionClass::new("MapDec", DecisionDimension::Mapping)
            .from_classes(&[kernel::TDL_ENTITY_CLASS])
            .to_classes(&[kernel::DBPL_REL]),
    )
    .unwrap();
    mark(&mut g); // 0
    g.register_tool(ToolSpec::new("Mapper", true).executes("MapDec"))
        .unwrap();
    mark(&mut g); // 1
    g.register_object(
        "Invitation",
        kernel::TDL_ENTITY_CLASS,
        "design.tdl#Invitation",
    )
    .unwrap();
    mark(&mut g); // 2
    g.register_object("Minutes", kernel::TDL_ENTITY_CLASS, "design.tdl#Minutes")
        .unwrap();
    mark(&mut g); // 3
    g.execute(
        DecisionRequest::new("MapDec", "mapInvitations", "dev")
            .with_tool("Mapper")
            .input("Invitation")
            .output("InvitationRel", kernel::DBPL_REL),
    )
    .unwrap();
    mark(&mut g); // 4
    g.tell_src("TELL AdHoc end").unwrap();
    mark(&mut g); // 5 = STEP_TELL_ADHOC
    g.execute(
        DecisionRequest::new("MapDec", "mapMinutes", "dev")
            .with_tool("Mapper")
            .input("Minutes")
            .output("MinutesRel", kernel::DBPL_REL),
    )
    .unwrap();
    mark(&mut g); // 6 = STEP_EXEC_MINUTES
    g.untell("AdHoc").unwrap();
    mark(&mut g); // 7 = STEP_UNTELL_ADHOC
    g.retract_decision("mapMinutes").unwrap();
    mark(&mut g); // 8 = STEP_RETRACT_MINUTES
    for i in 0..PADS {
        g.tell_src(&format!("TELL Pad{i} end")).unwrap();
        mark(&mut g); // 9.. = STEP_FIRST_PAD..
    }
    boundaries
}

/// Asserts the exact state a recovery must reach after replaying the
/// first `n` steps of [`build_journaled_history`]'s script — including
/// the *absence* of later effects (an untell or retraction from beyond
/// the crash point must not have applied).
fn assert_prefix_state(g: &Gkbms, n: usize, ctx: &str) {
    let has = |name: &str| g.kb().lookup(name).is_some();
    assert_eq!(n > 0, has("MapDec"), "{ctx}: MapDec definition");
    assert_eq!(n > 1, has("Mapper"), "{ctx}: Mapper tool");
    assert_eq!(n > 2, g.is_current("Invitation"), "{ctx}: Invitation");
    assert_eq!(n > 3, g.is_current("Minutes"), "{ctx}: Minutes");
    assert_eq!(
        n > 4,
        g.is_effective("mapInvitations") && g.is_current("InvitationRel"),
        "{ctx}: mapInvitations execution"
    );
    // AdHoc is told at step 5 and untold at step 7: believed only in
    // the window, and never resurrected by a crash after the untell.
    let adhoc_believed = g.snapshot().lookup("AdHoc").is_some();
    assert_eq!(
        n > STEP_TELL_ADHOC && n <= STEP_UNTELL_ADHOC,
        adhoc_believed,
        "{ctx}: AdHoc belief window"
    );
    // mapMinutes executes at step 6 and is retracted at step 8.
    assert_eq!(
        n > STEP_EXEC_MINUTES && n <= STEP_RETRACT_MINUTES,
        g.is_effective("mapMinutes") && g.is_current("MinutesRel"),
        "{ctx}: mapMinutes effectiveness window"
    );
    for i in 0..PADS {
        assert_eq!(
            n > STEP_FIRST_PAD + i,
            has(&format!("Pad{i}")),
            "{ctx}: Pad{i}"
        );
    }
}

/// The tentpole harness: a simulated crash at ≥ 200 byte offsets of the
/// live WAL. Each crash point must recover exactly the mutations whose
/// records lie fully below it — no acked-and-synced op lost, no
/// interior op skipped, no panic.
#[test]
fn wal_crash_at_hundreds_of_offsets_preserves_synced_prefix() {
    let base = tmp_dir("wal-matrix");
    let boundaries = build_journaled_history(&base);
    let full_len = *boundaries.last().expect("steps");

    let offsets = crash::crash_offsets(full_len, 256);
    assert!(
        offsets.len() >= 200,
        "need >= 200 crash points, got {} (wal is {} bytes)",
        offsets.len(),
        full_len
    );

    let work = tmp_dir("wal-matrix-work");
    for &cut in &offsets {
        crash::copy_dir(&base, &work).expect("copy journal dir");
        crash::truncate_in_place(work.join(WAL_FILE), cut).expect("inject crash");

        let (g, report) = Gkbms::recover(&work)
            .unwrap_or_else(|e| panic!("recover after crash at {cut} must not fail: {e}"));

        // Exactly the whole records below the cut replay: the synced
        // boundaries are the per-step WAL lengths.
        let expect_ops = boundaries.iter().filter(|b| **b <= cut).count();
        assert_eq!(
            report.replayed_ops, expect_ops as u64,
            "crash at {cut}: wrong replay count (interior loss or phantom op)"
        );
        assert_prefix_state(&g, expect_ops, &format!("crash at {cut}"));

        // The recovered instance stays writable: the journal reattached
        // cleanly over the truncated tail.
        let mut g = g;
        g.tell_src("TELL PostCrash end").expect("post-crash write");
        assert!(g.kb().lookup("PostCrash").is_some());
    }

    std::fs::remove_dir_all(&base).unwrap();
    std::fs::remove_dir_all(&work).unwrap();
}

/// Corruption (not truncation): flipped bytes anywhere in the WAL must
/// surface as a typed error or a clean shorter prefix — never a panic.
/// The per-record CRC makes any surviving record byte-faithful, so an
/// `Ok` recovery must land exactly on a step boundary state.
#[test]
fn wal_byte_flips_never_panic_and_keep_clean_prefixes() {
    let base = tmp_dir("wal-flips");
    let boundaries = build_journaled_history(&base);
    let full_len = *boundaries.last().expect("steps");

    let work = tmp_dir("wal-flips-work");
    for &off in crash::crash_offsets(full_len - 1, 64).iter() {
        crash::copy_dir(&base, &work).expect("copy journal dir");
        crash::flip_byte(work.join(WAL_FILE), off, 0xA5).expect("flip");

        match Gkbms::recover(&work) {
            Err(_) => {} // typed error is acceptable for corruption
            Ok((g, report)) => {
                let n = report.replayed_ops as usize;
                assert!(n <= boundaries.len(), "flip at {off}: phantom ops");
                assert_prefix_state(&g, n, &format!("flip at {off}"));
            }
        }
    }

    std::fs::remove_dir_all(&base).unwrap();
    std::fs::remove_dir_all(&work).unwrap();
}

/// Crashes injected *after* a checkpoint: the snapshot holds the
/// compacted history, and WAL cuts only ever lose post-checkpoint ops.
#[test]
fn crash_after_checkpoint_keeps_compacted_history() {
    let base = tmp_dir("ckpt");
    {
        let boundaries = build_journaled_history(&base);
        assert!(!boundaries.is_empty());
    }
    let (mut g, _) = Gkbms::recover(&base).unwrap();
    let report = g.checkpoint().unwrap();
    assert!(report.compacted_ops > 0);
    g.tell_src("TELL AfterCkpt end").unwrap();
    g.journal_mut().unwrap().sync().unwrap();
    let wal_len = crash::file_len(base.join(WAL_FILE)).unwrap();
    drop(g);
    assert!(base.join(SNAPSHOT_FILE).exists());

    let work = tmp_dir("ckpt-work");
    for cut in crash::crash_offsets(wal_len, 64) {
        crash::copy_dir(&base, &work).unwrap();
        crash::truncate_in_place(work.join(WAL_FILE), cut).unwrap();
        let (g, report) = Gkbms::recover(&work).expect("recover");
        assert!(report.snapshot_loaded);
        // Pre-checkpoint history is immune to WAL damage.
        assert!(g.is_effective("mapInvitations"));
        assert!(g.is_current("Invitation"));
        assert!(!g.is_effective("mapMinutes"));
        if cut >= wal_len {
            assert!(g.kb().lookup("AfterCkpt").is_some());
        }
    }

    std::fs::remove_dir_all(&base).unwrap();
    std::fs::remove_dir_all(&work).unwrap();
}

/// The checkpoint's commit point is the snapshot rename: a crash in
/// the window between the rename and the WAL truncation leaves a
/// snapshot that already covers every op AND a WAL still holding those
/// same ops. Recovery must drop the covered records — replaying them
/// would double-apply every mutation (or fail outright on duplicate
/// definitions) — and must complete the interrupted truncation.
#[test]
fn crash_between_snapshot_rename_and_wal_truncation_never_double_applies() {
    let base = tmp_dir("ckpt-window");
    let boundaries = build_journaled_history(&base);
    let total_steps = boundaries.len();
    let wal = base.join(WAL_FILE);
    let wal_before = std::fs::read(&wal).expect("pre-checkpoint wal");

    let (mut g, _) = Gkbms::recover(&base).unwrap();
    let report = g.checkpoint().unwrap();
    assert_eq!(report.compacted_ops, total_steps as u64);
    drop(g);

    // Crash in the window: the snapshot is published but the WAL was
    // never truncated — put the pre-checkpoint WAL bytes back.
    std::fs::write(&wal, &wal_before).unwrap();
    let (g, report) = Gkbms::recover(&base).expect("recover in window");
    assert!(report.snapshot_loaded);
    assert_eq!(report.replayed_ops, 0, "covered ops replayed");
    assert_eq!(report.skipped_ops, total_steps as u64);
    assert_prefix_state(&g, total_steps, "checkpoint window");
    // Recovery finished the checkpoint's truncation.
    assert_eq!(crash::file_len(&wal).unwrap(), 0);

    // The instance stays writable, and a further recovery sees exactly
    // the post-window history — once.
    let mut g = g;
    g.tell_src("TELL AfterWindow end").unwrap();
    g.journal_mut().unwrap().sync().unwrap();
    drop(g);
    let (g, report) = Gkbms::recover(&base).unwrap();
    assert_eq!(report.replayed_ops, 1);
    assert_eq!(report.skipped_ops, 0);
    assert_prefix_state(&g, total_steps, "after window");
    assert!(g.kb().lookup("AfterWindow").is_some());
    drop(g);

    // And the window composes with torn WAL writes: any truncation of
    // the covered WAL is still fully covered, so every cut recovers
    // the complete checkpointed state.
    let full_len = wal_before.len() as u64;
    let work = tmp_dir("ckpt-window-work");
    for cut in crash::crash_offsets(full_len, 64) {
        crash::copy_dir(&base, &work).unwrap();
        std::fs::write(work.join(WAL_FILE), &wal_before[..cut as usize]).unwrap();
        let (g, report) = Gkbms::recover(&work)
            .unwrap_or_else(|e| panic!("window + cut at {cut} must recover: {e}"));
        assert_eq!(report.replayed_ops, 0, "cut at {cut}");
        assert_prefix_state(&g, total_steps, &format!("window cut at {cut}"));
    }

    std::fs::remove_dir_all(&base).unwrap();
    std::fs::remove_dir_all(&work).unwrap();
}

/// Satellite: `Gkbms::load` of a truncated save file — every byte
/// offset — yields a clean prefix or a typed error, never a panic, and
/// never silently drops an event in the middle of the history.
#[test]
fn truncated_save_file_loads_clean_prefix_or_typed_error() {
    let dir = tmp_dir("load-matrix");
    std::fs::create_dir_all(&dir).unwrap();
    let saved = dir.join("history");

    const TELLS: usize = 10;
    {
        let mut g = Gkbms::new().unwrap();
        g.define_decision_class(
            DecisionClass::new("MapDec", DecisionDimension::Mapping)
                .from_classes(&[kernel::TDL_ENTITY_CLASS])
                .to_classes(&[kernel::DBPL_REL]),
        )
        .unwrap();
        g.register_object("Invitation", kernel::TDL_ENTITY_CLASS, "src")
            .unwrap();
        g.execute(
            DecisionRequest::new("MapDec", "mapInvitations", "dev")
                .input("Invitation")
                .output("InvitationRel", kernel::DBPL_REL),
        )
        .unwrap();
        // The save layout puts raw TELL events last, in commit order:
        // their presence indexes how deep a truncated load got.
        for i in 0..TELLS {
            g.tell_src(&format!("TELL Seq{i} end")).unwrap();
        }
        g.save(&saved).unwrap();
    }

    let full_len = crash::file_len(&saved).unwrap();
    let cut_file = dir.join("history.cut");
    for cut in crash::crash_offsets(full_len, 512) {
        crash::truncated_copy(&saved, &cut_file, cut).unwrap();
        match Gkbms::load(&cut_file) {
            Err(_) => {} // typed error, fine
            Ok(g) => {
                // No interior loss among the trailing TELLs: present
                // objects must form a gap-free prefix Seq0..Seqk.
                let present: Vec<bool> = (0..TELLS)
                    .map(|i| g.kb().lookup(&format!("Seq{i}")).is_some())
                    .collect();
                let count = present.iter().filter(|p| **p).count();
                assert!(
                    present.iter().take(count).all(|p| *p),
                    "cut at {cut}: interior TELL lost ({present:?})"
                );
                // And the definition prefix stays consistent: if the
                // execution survived, so did its decision class.
                if g.is_effective("mapInvitations") {
                    assert!(g.kb().lookup("MapDec").is_some());
                }
            }
        }
    }
    // The untruncated file loads everything.
    let g = Gkbms::load(&saved).unwrap();
    assert!(g.is_effective("mapInvitations"));
    for i in 0..TELLS {
        assert!(g.kb().lookup(&format!("Seq{i}")).is_some());
    }

    std::fs::remove_dir_all(&dir).unwrap();
}
