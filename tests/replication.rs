//! Integration: WAL shipping — read replicas, catch-up, and
//! promote-on-failure.
//!
//! The replication contract under test:
//!
//! * **convergence** — followers replay the leader's committed WAL
//!   prefix and end up byte-identical (same WAL file) and
//!   answer-identical to a serial replay of the same TELLs;
//! * **catch-up** — a follower that disconnects (or starts far behind
//!   the checkpoint truncation horizon) resubscribes from its applied
//!   position and converges, via the WAL tail or a shipped snapshot;
//! * **redirect** — writes against a follower fail fast with the
//!   leader's address, as a typed client error;
//! * **fencing** — after promotion the old sequence epoch is dead: a
//!   store that lived under the new epoch refuses the old leader;
//! * **bounded staleness** — replica reads carry the applied position,
//!   and a configured lag bound rejects reads on a lagging replica.

use conceptbase::gkbms::journal::WAL_FILE;
use conceptbase::gkbms::Gkbms;
use conceptbase::server::{Client, ClientError, Config, ErrorCode, Server};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cb-repl-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn quick() -> Config {
    Config {
        poll_interval: Duration::from_millis(20),
        ..Config::default()
    }
}

/// Starts a journaled leader recovering from `dir`.
fn leader(dir: &Path) -> (Server, SocketAddr) {
    let (g, _) = Gkbms::recover(dir).expect("recover leader");
    let srv = Server::bind("127.0.0.1:0", g, quick()).expect("bind leader");
    let addr = srv.local_addr();
    (srv, addr)
}

/// Starts a journaled follower recovering from `dir`, shipping from
/// `leader`.
fn follower(dir: &Path, leader: SocketAddr, max_lag: Option<u64>) -> (Server, SocketAddr) {
    let (g, _) = Gkbms::recover(dir).expect("recover follower");
    let cfg = Config {
        follow: Some(leader.to_string()),
        max_lag,
        ..quick()
    };
    let srv = Server::bind("127.0.0.1:0", g, cfg).expect("bind follower");
    let addr = srv.local_addr();
    (srv, addr)
}

/// Polls `cond` until it holds or a generous deadline passes.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}");
}

/// Blocks until the server at `addr` reports `applied_seq >= want`.
fn wait_applied(addr: SocketAddr, want: u64) {
    let mut c = Client::connect(addr).unwrap();
    wait_for(&format!("applied_seq >= {want} at {addr}"), || {
        c.repl_status()
            .map(|s| s.applied_seq >= want)
            .unwrap_or(false)
    });
}

fn ask_all(c: &mut Client, session: u64) -> Vec<String> {
    let mut names = c.ask(session, "p", "Paper", "true").unwrap().answers;
    names.sort();
    names
}

/// Two followers converge under concurrent TELL churn: both end up
/// answering exactly like a serial replay of the same TELLs, and their
/// WAL files are byte-identical to the leader's.
#[test]
fn two_followers_converge_byte_identical_under_churn() {
    const THREADS: usize = 3;
    const PER_THREAD: usize = 8;
    let ldir = tmp_dir("churn-l");
    let f1dir = tmp_dir("churn-f1");
    let f2dir = tmp_dir("churn-f2");
    let (lsrv, laddr) = leader(&ldir);
    let (f1srv, f1addr) = follower(&f1dir, laddr, None);
    let (f2srv, f2addr) = follower(&f2dir, laddr, None);

    {
        let mut c = Client::connect(laddr).unwrap();
        let (s, _) = c.hello().unwrap();
        c.tell(s, "TELL Paper end").unwrap();
        c.bye(s).unwrap();
    }
    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect(laddr).unwrap();
                let (s, _) = c.hello().unwrap();
                for i in 0..PER_THREAD {
                    c.tell(s, &format!("TELL p_{t}_{i} in Paper end")).unwrap();
                }
                c.bye(s).unwrap();
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer thread");
    }

    let committed = {
        let mut c = Client::connect(laddr).unwrap();
        let s = c.repl_status().unwrap();
        assert!(s.is_leader);
        s.applied_seq
    };
    assert_eq!(committed, (THREADS * PER_THREAD + 1) as u64);
    wait_applied(f1addr, committed);
    wait_applied(f2addr, committed);

    // Differential check: each follower answers like a serial replay.
    let mut serial = Gkbms::new().unwrap();
    let tell = |g: &mut Gkbms, src: &str| {
        g.begin_write();
        let frames = conceptbase::objectbase::ObjectFrame::parse_all(src).unwrap();
        conceptbase::objectbase::transform::tell_all(g.kb_mut(), &frames).unwrap();
    };
    tell(&mut serial, "TELL Paper end");
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            tell(&mut serial, &format!("TELL p_{t}_{i} in Paper end"));
        }
    }
    let mut expected =
        conceptbase::objectbase::query::ask(serial.kb(), "p", "Paper", "true").unwrap();
    expected.sort();
    for addr in [f1addr, f2addr] {
        let mut c = Client::connect(addr).unwrap();
        let (s, _) = c.hello().unwrap();
        assert_eq!(ask_all(&mut c, s), expected, "replica at {addr} diverged");
        // Replica reads carry the staleness header.
        assert_eq!(c.last_staleness(), Some((committed, 0)));
        c.bye(s).unwrap();
    }

    f1srv.shutdown().unwrap();
    f2srv.shutdown().unwrap();
    lsrv.shutdown().unwrap();
    let lwal = std::fs::read(ldir.join(WAL_FILE)).unwrap();
    assert!(!lwal.is_empty());
    for (name, dir) in [("f1", &f1dir), ("f2", &f2dir)] {
        let fwal = std::fs::read(dir.join(WAL_FILE)).unwrap();
        assert_eq!(lwal, fwal, "{name} WAL is not byte-identical");
    }
    for d in [ldir, f1dir, f2dir] {
        std::fs::remove_dir_all(d).unwrap();
    }
}

/// A follower that dies resubscribes from its applied position on
/// restart and converges on everything it missed.
#[test]
fn killed_follower_catches_up_on_restart() {
    let ldir = tmp_dir("kill-l");
    let fdir = tmp_dir("kill-f");
    let (lsrv, laddr) = leader(&ldir);
    let (fsrv, faddr) = follower(&fdir, laddr, None);

    let mut c = Client::connect(laddr).unwrap();
    let (s, _) = c.hello().unwrap();
    c.tell(s, "TELL Paper end\nTELL before in Paper end")
        .unwrap();
    // A multi-frame TELL is one journaled op.
    wait_applied(faddr, 1);
    // The follower dies with 1 op applied; the leader keeps going.
    fsrv.shutdown().unwrap();
    c.tell(s, "TELL during1 in Paper end").unwrap();
    c.tell(s, "TELL during2 in Paper end").unwrap();

    let (fsrv, faddr) = follower(&fdir, laddr, None);
    wait_applied(faddr, 3);
    let mut fc = Client::connect(faddr).unwrap();
    let (fs, _) = fc.hello().unwrap();
    assert_eq!(ask_all(&mut fc, fs), vec!["before", "during1", "during2"]);

    fsrv.shutdown().unwrap();
    lsrv.shutdown().unwrap();
    assert_eq!(
        std::fs::read(ldir.join(WAL_FILE)).unwrap(),
        std::fs::read(fdir.join(WAL_FILE)).unwrap(),
        "catch-up must restore byte-identical WALs"
    );
    std::fs::remove_dir_all(ldir).unwrap();
    std::fs::remove_dir_all(fdir).unwrap();
}

/// A brand-new follower subscribing behind the checkpoint truncation
/// horizon gets the covering snapshot first, then the WAL tail.
#[test]
fn new_follower_catches_up_past_checkpoint_horizon() {
    let ldir = tmp_dir("snap-l");
    let fdir = tmp_dir("snap-f");
    let (lsrv, laddr) = leader(&ldir);
    let mut c = Client::connect(laddr).unwrap();
    let (s, _) = c.hello().unwrap();
    c.tell(s, "TELL Paper end").unwrap();
    for i in 0..5 {
        c.tell(s, &format!("TELL old{i} in Paper end")).unwrap();
    }
    // The checkpoint truncates the WAL: ops 1..=6 now live only in the
    // snapshot, so a fresh follower (applied 0) cannot tail its way up.
    c.checkpoint(s).unwrap();
    c.tell(s, "TELL fresh in Paper end").unwrap();

    let (fsrv, faddr) = follower(&fdir, laddr, None);
    wait_applied(faddr, 7);
    let mut fc = Client::connect(faddr).unwrap();
    let (fs, _) = fc.hello().unwrap();
    let names = ask_all(&mut fc, fs);
    assert_eq!(
        names,
        vec!["fresh", "old0", "old1", "old2", "old3", "old4"],
        "snapshot + tail must reconstruct the full state"
    );
    let status = fc.repl_status().unwrap();
    assert!(!status.is_leader);
    assert!(status.connected);
    assert_eq!(status.applied_seq, 7);

    // The replica keeps converging after the snapshot install.
    c.tell(s, "TELL after in Paper end").unwrap();
    wait_applied(faddr, 8);
    fc.refresh(fs).unwrap();
    assert!(ask_all(&mut fc, fs).contains(&"after".to_string()));

    fsrv.shutdown().unwrap();
    lsrv.shutdown().unwrap();
    std::fs::remove_dir_all(ldir).unwrap();
    std::fs::remove_dir_all(fdir).unwrap();
}

/// Writes against a follower fail fast with the leader's address.
#[test]
fn writes_against_follower_redirect_to_leader() {
    let ldir = tmp_dir("redir-l");
    let fdir = tmp_dir("redir-f");
    let (lsrv, laddr) = leader(&ldir);
    let (fsrv, faddr) = follower(&fdir, laddr, None);

    let mut fc = Client::connect(faddr).unwrap();
    let (fs, _) = fc.hello().unwrap();
    match fc.tell(fs, "TELL Paper end") {
        Err(ClientError::Redirect { leader }) => {
            assert_eq!(leader, laddr.to_string(), "redirect must name the leader")
        }
        other => panic!("expected redirect, got {other:?}"),
    }
    // Reads still work on the follower.
    assert!(fc.show(fs, "Proposition").unwrap().contains("Proposition"));

    fsrv.shutdown().unwrap();
    lsrv.shutdown().unwrap();
    std::fs::remove_dir_all(ldir).unwrap();
    std::fs::remove_dir_all(fdir).unwrap();
}

/// A view registered on the leader is rebuilt on the follower by
/// replaying the shipped `RegisterView` record, and subsequent
/// replicated TELLs keep the replica's model maintained — so view
/// reads work against a follower, while view registration redirects.
#[test]
fn registered_views_replicate_to_followers() {
    let ldir = tmp_dir("view-l");
    let fdir = tmp_dir("view-f");
    let (lsrv, laddr) = leader(&ldir);
    let (fsrv, faddr) = follower(&fdir, laddr, None);

    let mut c = Client::connect(laddr).unwrap();
    let (s, _) = c.hello().unwrap();
    c.tell(s, "TELL Paper end").unwrap();
    c.register_view(s, "closure", "hasPaper(X) :- inT(X, \"Paper\").")
        .unwrap();
    c.tell(s, "TELL p1 in Paper end").unwrap();
    c.tell(s, "TELL p2 in Paper end").unwrap();
    let applied = c.repl_status().unwrap().applied_seq;
    wait_applied(faddr, applied);

    let mut fc = Client::connect(faddr).unwrap();
    let (fs, _) = fc.hello().unwrap();
    let mut rows = fc.view_ask(fs, "closure", "hasPaper").unwrap();
    rows.sort();
    assert_eq!(rows, vec!["p1".to_string(), "p2".to_string()]);
    // Registering a view is a journaled write: a follower redirects it.
    match fc.register_view(fs, "local", "") {
        Err(ClientError::Redirect { leader }) => {
            assert_eq!(leader, laddr.to_string())
        }
        other => panic!("expected redirect, got {other:?}"),
    }
    // An UNTELL shipped after the registration flows a delete delta
    // through the replica's maintained model too.
    c.untell(s, "p2").unwrap();
    let applied = c.repl_status().unwrap().applied_seq;
    wait_applied(faddr, applied);
    fc.refresh(fs).unwrap();
    assert_eq!(
        fc.view_ask(fs, "closure", "hasPaper").unwrap(),
        vec!["p1".to_string()]
    );

    fsrv.shutdown().unwrap();
    lsrv.shutdown().unwrap();
    std::fs::remove_dir_all(ldir).unwrap();
    std::fs::remove_dir_all(fdir).unwrap();
}

/// Reads the current value of a counter out of the Prometheus text.
fn metric_value(text: &str, name: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().next_back())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Promote-on-failure: the surviving follower becomes writable under a
/// new sequence epoch, and the old epoch is fenced out — a store that
/// lived under the new epoch refuses to follow the restarted old
/// leader, so old-epoch records can never re-enter it.
#[test]
fn promotion_fences_out_the_old_leader() {
    let ldir = tmp_dir("fence-l");
    let fdir = tmp_dir("fence-f");
    let (lsrv, laddr) = leader(&ldir);
    let (fsrv, faddr) = follower(&fdir, laddr, None);

    let mut c = Client::connect(laddr).unwrap();
    let (s, _) = c.hello().unwrap();
    c.tell(s, "TELL Paper end\nTELL shared in Paper end")
        .unwrap();
    wait_applied(faddr, 1);
    // The leader "fails".
    lsrv.shutdown().unwrap();

    // Manual promotion: the follower seals its log under epoch 2 and
    // starts accepting writes.
    let mut fc = Client::connect(faddr).unwrap();
    let (fs, _) = fc.hello().unwrap();
    let msg = fc.promote(fs).unwrap();
    assert!(msg.contains("epoch 2"), "{msg}");
    let status = fc.repl_status().unwrap();
    assert!(status.is_leader);
    assert_eq!(status.epoch, 2);
    fc.tell(fs, "TELL newera in Paper end").unwrap();
    // Promoting a leader is a no-op error, not a second epoch bump.
    match fc.promote(fs) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::Rejected),
        other => panic!("expected rejection, got {other:?}"),
    }
    fsrv.shutdown().unwrap();

    // The old leader comes back from its own directory, still under
    // epoch 1, and diverges with a write of its own.
    let (l2srv, l2addr) = leader(&ldir);
    let mut oc = Client::connect(l2addr).unwrap();
    let (os, _) = oc.hello().unwrap();
    oc.tell(os, "TELL oldera in Paper end").unwrap();

    // Restarting the promoted store as a follower of the old leader
    // must be fenced: its epoch (2) outranks the old leader's (1).
    let fenced_before = {
        let mut m = Client::connect(l2addr).unwrap();
        metric_value(&m.metrics().unwrap(), "gkbms_replication_fenced_total")
    };
    let (f2srv, f2addr) = follower(&fdir, l2addr, None);
    let mut f2c = Client::connect(f2addr).unwrap();
    wait_for("the fenced subscription to be refused", || {
        metric_value(&f2c.metrics().unwrap(), "gkbms_replication_fenced_total") > fenced_before
    });
    let status = f2c.repl_status().unwrap();
    assert!(!status.connected, "a fenced follower must not connect");
    assert_eq!(status.epoch, 2, "promotion survives restart");
    let (f2s, _) = f2c.hello().unwrap();
    let names = ask_all(&mut f2c, f2s);
    assert!(
        names.contains(&"newera".to_string()),
        "the promoted era must survive: {names:?}"
    );
    assert!(
        !names.contains(&"oldera".to_string()),
        "a fenced old-leader record leaked in: {names:?}"
    );

    f2srv.shutdown().unwrap();
    l2srv.shutdown().unwrap();
    std::fs::remove_dir_all(ldir).unwrap();
    std::fs::remove_dir_all(fdir).unwrap();
}

/// A configured lag bound turns reads on a lagging replica into typed
/// `StaleRead` errors until the replica catches back up.
#[test]
fn stale_read_bound_rejects_a_lagging_replica() {
    let ldir = tmp_dir("stale-l");
    let fdir = tmp_dir("stale-f");
    let (lsrv, laddr) = leader(&ldir);
    let (fsrv, faddr) = follower(&fdir, laddr, Some(0));

    let mut c = Client::connect(laddr).unwrap();
    let (s, _) = c.hello().unwrap();
    c.tell(s, "TELL Paper end\nTELL p1 in Paper end").unwrap();
    wait_applied(faddr, 1);
    let mut fc = Client::connect(faddr).unwrap();
    let (fs, _) = fc.hello().unwrap();
    assert_eq!(ask_all(&mut fc, fs), vec!["p1"], "caught up: reads pass");

    // Wedge the apply loop, then commit on the leader: the replica
    // observes the leader's position without applying, so its lag
    // exceeds the bound of 0.
    fsrv.set_apply_paused(true);
    c.tell(s, "TELL p2 in Paper end").unwrap();
    wait_for("the replica to observe the leader's position", || {
        fc.repl_status()
            .map(|st| st.leader_seq >= 2)
            .unwrap_or(false)
    });
    match fc.ask(fs, "p", "Paper", "true") {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, ErrorCode::StaleRead);
            assert!(e.message.contains("exceeds bound"), "{}", e.message);
        }
        other => panic!("expected StaleRead, got {other:?}"),
    }

    // Unwedged, the replica converges and reads pass again.
    fsrv.set_apply_paused(false);
    wait_applied(faddr, 2);
    fc.refresh(fs).unwrap();
    assert_eq!(ask_all(&mut fc, fs), vec!["p1", "p2"]);
    assert_eq!(fc.last_staleness(), Some((2, 0)));

    fsrv.shutdown().unwrap();
    lsrv.shutdown().unwrap();
    std::fs::remove_dir_all(ldir).unwrap();
    std::fs::remove_dir_all(fdir).unwrap();
}
