//! Integration: the persistent proposition base — "several physical
//! representations of propositions can be managed by the proposition
//! base" (§3.1) — across the object processor.

use conceptbase::objectbase::frame::ObjectFrame;
use conceptbase::objectbase::transform::{frame_of, tell_all};
use conceptbase::storage::heap::HeapFile;
use conceptbase::telos::backend::KbBackend;
use conceptbase::telos::Kb;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cb-int-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn frames_survive_reopen() {
    let path = tmp("frames");
    {
        let mut kb = Kb::with_backend(KbBackend::log(&path).unwrap()).unwrap();
        tell_all(
            &mut kb,
            &ObjectFrame::parse_all(
                "TELL TDL_EntityClass isA Class end\n\
                 TELL Person end\n\
                 TELL Paper in TDL_EntityClass with attribute author : Person end\n\
                 TELL Invitation in TDL_EntityClass isA Paper with\n\
                   attribute sender : Person\n\
                   constraint hasSender : $ forall i/Invitation i.sender defined $\n\
                 end",
            )
            .unwrap(),
        )
        .unwrap();
        kb.sync().unwrap();
    }
    let kb = Kb::with_backend(KbBackend::log(&path).unwrap()).unwrap();
    let invitation = kb.lookup("Invitation").unwrap();
    let back = frame_of(&kb, invitation).unwrap();
    assert_eq!(back.classes, vec!["TDL_EntityClass"]);
    assert_eq!(back.isa, vec!["Paper"]);
    assert_eq!(back.attrs.len(), 1);
    assert_eq!(back.constraints.len(), 1);
    // The reopened KB is still axiom-clean and queryable.
    assert!(conceptbase::telos::axioms::check_all(&kb).is_empty());
    let paper = kb.lookup("Paper").unwrap();
    assert!(kb.isa_ancestors(invitation).contains(&paper));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn untold_history_survives_reopen() {
    let path = tmp("history");
    let t_alive;
    {
        let mut kb = Kb::with_backend(KbBackend::log(&path).unwrap()).unwrap();
        let a = kb.individual("InvitationRel").unwrap();
        let c = kb.individual("DBPL_Rel").unwrap();
        let link = kb.instantiate(a, c).unwrap();
        t_alive = kb.now();
        kb.untell_cascade(link).unwrap();
        kb.sync().unwrap();
    }
    let kb = Kb::with_backend(KbBackend::log(&path).unwrap()).unwrap();
    let a = kb.lookup("InvitationRel").unwrap();
    assert!(kb.classes_of(a).is_empty(), "link no longer believed");
    assert_eq!(
        kb.classes_of_at(a, t_alive).len(),
        1,
        "temporal query sees it"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn many_objects_roundtrip() {
    let path = tmp("bulk");
    {
        let mut kb = Kb::with_backend(KbBackend::log(&path).unwrap()).unwrap();
        let class = kb.individual("DesignObjectToken").unwrap();
        for i in 0..500 {
            let o = kb.individual(&format!("obj{i}")).unwrap();
            kb.instantiate(o, class).unwrap();
        }
        kb.sync().unwrap();
    }
    let kb = Kb::with_backend(KbBackend::log(&path).unwrap()).unwrap();
    let class = kb.lookup("DesignObjectToken").unwrap();
    assert_eq!(kb.instances_of(class).len(), 500);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn dbpl_sources_stored_in_heap_file() {
    // The "sources recorded outside the GKB" (fig 2-5) can live in the
    // storage substrate: code frames in a slotted heap file.
    use conceptbase::langs::dbpl::DbplModule;
    use conceptbase::langs::mapping::{MappingStrategy, MoveDown};
    use conceptbase::langs::taxisdl::document_model;
    let path = tmp("heap");
    let out = MoveDown.map_hierarchy(&document_model(), "Paper").unwrap();
    let mut module = DbplModule::new("DocumentDB");
    for d in out.decls {
        module.add(d).unwrap();
    }
    let mut heap = HeapFile::open(&path, 8).unwrap();
    let mut rids = Vec::new();
    for d in &module.decls {
        let frame = module.code_frame(d.name()).unwrap();
        rids.push((d.name().to_string(), heap.insert(frame.as_bytes()).unwrap()));
    }
    heap.flush().unwrap();
    // Reopen and verify each code frame.
    let mut heap = HeapFile::open(&path, 8).unwrap();
    for (name, rid) in rids {
        let bytes = heap.get(rid).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains(&name), "{name} frame corrupted");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn kv_store_as_source_index() {
    use conceptbase::storage::KvStore;
    let path = tmp("kv");
    {
        let mut kv = KvStore::open(&path).unwrap();
        kv.set(
            b"design.tdl#Invitation",
            b"EntityClass Invitation isA Paper ...",
        )
        .unwrap();
        kv.set(b"design.tdl#Paper", b"EntityClass Paper ...")
            .unwrap();
        kv.set(
            b"dbpl://DocumentDB#InvitationRel",
            b"RELATION InvitationRel ...",
        )
        .unwrap();
        kv.sync().unwrap();
    }
    let kv = KvStore::open(&path).unwrap();
    let tdl_sources: Vec<_> = kv.scan_prefix(b"design.tdl#").collect();
    assert_eq!(tdl_sources.len(), 2);
    assert!(kv.get(b"dbpl://DocumentDB#InvitationRel").is_some());
    std::fs::remove_file(&path).unwrap();
}
