//! Integration: fig 3-4 — decision-based configurations and versions.
//!
//! "The second implementation, whose mapping dependency is derived via
//! the refinement decision on keys, is based on an assumption which is
//! inconsistent under the expanded design version with respect to
//! candidate keys."

use conceptbase::gkbms::scenario::Scenario;
use conceptbase::gkbms::DecisionDimension;

fn scenario_after_backtracking() -> Scenario {
    let mut s = Scenario::setup().unwrap();
    s.step2_map_invitations().unwrap();
    s.step3_normalize().unwrap();
    s.step4_substitute_keys().unwrap();
    let (_, conflicts) = s.step5_map_minutes().unwrap();
    assert!(!conflicts.is_empty());
    s.step6_backtrack().unwrap();
    s
}

#[test]
fn fig_3_4_version_space_renders_all_dimensions() {
    let s = scenario_after_backtracking();
    let vs = s.gkbms.render_version_space();
    // Mapping decisions (vertical, `==`), refinement (`--`), choice (`%%`).
    assert!(vs.contains("== mapInvitations [mapping]"));
    assert!(vs.contains("-- normalizeInvitations [refinement]"));
    assert!(vs.contains("%% chooseAssociativeKeys [choice] (retracted)"));
    assert!(vs.contains("== mapMinutes [mapping]"));
    assert!(vs.contains("=== Implementation ==="));
    assert!(vs.contains("=== Design ==="));
}

#[test]
fn fig_3_4_alternative_versions_tracked() {
    let s = scenario_after_backtracking();
    let cps = s.gkbms.choice_points();
    assert_eq!(cps.len(), 1);
    let cp = &cps[0];
    assert_eq!(cp.over, vec!["InvitationRel2"]);
    assert_eq!(cp.alternatives.len(), 1);
    assert!(
        !cp.alternatives[0].current,
        "the associative-key version was retracted"
    );
    assert_eq!(cp.alternatives[0].decision, "chooseAssociativeKeys");
}

#[test]
fn latest_complete_implementation_configuration() {
    // "Configure the latest complete DBPL database program system
    // version: this involves excluding all non-used versions of design
    // objects and ensuring consistency and sufficient completeness."
    let s = scenario_after_backtracking();
    let config = s.gkbms.configure_level("Implementation").unwrap();
    // Excludes the retracted @assoc versions.
    assert!(config.objects.iter().all(|o| !o.contains("@assoc")));
    // Includes the surviving implementation objects.
    for o in [
        "InvitationRel2",
        "InvReceivRel",
        "MinutesRel",
        "ConsInvitation",
    ] {
        assert!(config.objects.contains(&o.to_string()), "{o} missing");
    }
    // Justified by surviving decisions only.
    assert!(!config
        .justified_by
        .contains(&"chooseAssociativeKeys".to_string()));
    assert!(config
        .justified_by
        .contains(&"normalizeInvitations".to_string()));
    // Vertical configuration is allowable.
    assert!(s.gkbms.vertical_gaps("Implementation").unwrap().is_empty());
}

#[test]
fn versioning_without_duplicating_the_implementation() {
    // The decision log is the version store: two versions of the
    // implementation exist in history, but the believed state holds
    // only the chosen one.
    let s = scenario_after_backtracking();
    let records = s.gkbms.records();
    let key_rec = records
        .iter()
        .find(|r| r.name == "chooseAssociativeKeys")
        .unwrap();
    // Temporal navigation reaches the other version.
    let then = s.gkbms.objects_at(key_rec.tick);
    assert!(then.iter().any(|o| o.contains("@assoc")));
    let now = s.gkbms.objects_at(s.gkbms.kb().now());
    assert!(!now.iter().any(|o| o.contains("@assoc")));
}

#[test]
fn dimensions_partition_the_history() {
    let s = scenario_after_backtracking();
    let mut mapping = 0;
    let mut refinement = 0;
    let mut choice = 0;
    for r in s.gkbms.records() {
        // Look up the dimension through the public view.
        let vs = s.gkbms.render_version_space();
        let _ = &vs;
        match r.class.as_str() {
            "DecMoveDown" | "DecDistribute" | "DBPL_MappingDec" => mapping += 1,
            "DecNormalize" => refinement += 1,
            "DecKeySubst" => choice += 1,
            other => panic!("unexpected class {other}"),
        }
    }
    assert_eq!((mapping, refinement, choice), (2, 1, 1));
    let _ = DecisionDimension::Mapping; // dimension enum is part of the public API
}
