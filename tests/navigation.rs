//! Integration: §3.3.1 — navigation in decision histories along the
//! three dimensions, and the display tools over a real history.

use conceptbase::gkbms::scenario::Scenario;
use conceptbase::modelbase::display::dot::to_dot;
use conceptbase::modelbase::display::textdag::Bounds;
use conceptbase::modelbase::BrowseSession;

fn full() -> Scenario {
    let mut s = Scenario::setup().unwrap();
    s.step2_map_invitations().unwrap();
    s.step3_normalize().unwrap();
    s.step4_substitute_keys().unwrap();
    let (_, c) = s.step5_map_minutes().unwrap();
    assert!(!c.is_empty());
    s.step6_backtrack().unwrap();
    s
}

#[test]
fn status_oriented_browsing() {
    let s = full();
    let table = s.gkbms.status_view();
    let rendered = table.render();
    assert!(rendered.contains("Design"));
    assert!(rendered.contains("Implementation"));
    assert!(rendered.contains("InvitationRel2"));
    // Scrolling works on the same table.
    let window = table.render_window(0, 3, 30);
    assert!(window.contains("rows shown"));
}

#[test]
fn process_oriented_browsing() {
    let s = full();
    let chain = s.gkbms.causal_chain("InvReceivRel").unwrap();
    assert_eq!(chain, vec!["mapInvitations", "normalizeInvitations"]);
    // Consequences run the other way.
    let consequences = s.gkbms.consequences_of("InvitationRel");
    assert!(consequences.contains(&"InvitationRel2".to_string()));
}

#[test]
fn temporal_browsing_follows_object_history() {
    let s = full();
    let history = s.gkbms.object_history("InvitationRel2").unwrap();
    let events: Vec<&str> = history.iter().map(|(_, e)| e.as_str()).collect();
    assert!(events.contains(&"created by normalizeInvitations"));
    assert!(events.contains(&"used by chooseAssociativeKeys"));
    // Ticks are monotone.
    let ticks: Vec<i64> = history.iter().map(|(t, _)| *t).collect();
    assert!(ticks.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn switching_between_browsers_on_one_kb() {
    // "additionally, arbitrary switching between browsing of performed
    // decisions, design objects … and tool specifications is provided."
    let s = full();
    let kb = s.gkbms.kb();
    let mut session = BrowseSession::start(kb, "DBPL_Rel").unwrap();
    session.set_bounds(Bounds {
        depth: 2,
        width: 16,
    });
    let tree = session.instance_tree();
    assert!(tree.contains("NormalizedDBPL_Rel"));
    assert!(tree.contains("MinutesRel"));
    // Switch focus to a decision instance and inspect its links.
    session.focus_on("normalizeInvitations").unwrap();
    let attrs = session.attribute_table().render();
    assert!(attrs.contains("from"));
    assert!(attrs.contains("to"));
    assert!(attrs.contains("InvitationRel2"));
    // Back to where we came from.
    session.back().unwrap();
    assert_eq!(session.focus_name(), "DBPL_Rel");
}

#[test]
fn zooming_into_the_dependency_graph() {
    let mut s = full();
    let graph = s.gkbms.dependency_graph();
    let zoomed = graph.zoom("InvitationRel", 1);
    let rendered = zoomed.render();
    assert!(rendered.contains("InvitationRel"));
    assert!(rendered.contains("normalizeInvitations"));
    assert!(
        !rendered.contains("MinutesRel"),
        "outside the radius-1 neighbourhood"
    );
    // DOT export of the zoomed view.
    let dot = to_dot(&zoomed, "zoom");
    assert!(dot.contains("digraph"));
    assert!(dot.contains("InvitationRel"));
}

#[test]
fn exploration_starts_from_focus_and_shows_applicable_tools() {
    // "Such an exploration typically starts from a focus object or
    // decision; tool selection for this focus will also display which
    // of the above exploration directions are applicable."
    let s = full();
    let menu = s.gkbms.applicable_decisions("MinutesRel").unwrap();
    assert!(
        !menu.is_empty(),
        "a DBPL_Rel token has applicable decisions"
    );
    assert!(menu.iter().any(|(dc, _)| dc == "DecNormalize"));
}
