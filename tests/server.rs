//! Integration: the GKBMS as a concurrent service — many client
//! threads against one global knowledge base, with snapshot-isolated
//! reads (§4's global KBMS serving local workstations).

use conceptbase::gkbms::Gkbms;
use conceptbase::server::{Client, ClientError, Config, ErrorCode, Server};
use proptest::prelude::*;
use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cb-srv-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn quick_cfg() -> Config {
    Config {
        poll_interval: Duration::from_millis(20),
        ..Config::default()
    }
}

fn start(cfg: Config) -> (Server, std::net::SocketAddr) {
    let state = Gkbms::new().expect("fresh gkbms");
    let server = Server::bind("127.0.0.1:0", state, cfg).expect("bind");
    let addr = server.local_addr();
    (server, addr)
}

/// N client threads interleave TELLs and ASKs; afterwards the served
/// KB must equal a serial replay of the same TELLs, and every ASK a
/// thread saw must have been a consistent snapshot: a prefix-closed
/// subset of that thread's own writes (its own completed TELLs are
/// visible after refresh) with never a torn/partial frame.
#[test]
fn concurrent_tells_equal_serial_replay() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 8;
    let (server, addr) = start(quick_cfg());

    // Shared schema first, serially.
    {
        let mut c = Client::connect(addr).unwrap();
        let (s, _) = c.hello().unwrap();
        c.tell(s, "TELL Paper end").unwrap();
        c.bye(s).unwrap();
    }

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let (s, _) = c.hello().unwrap();
                for i in 0..PER_THREAD {
                    c.tell(s, &format!("TELL p_{t}_{i} in Paper end")).unwrap();
                    c.refresh(s).unwrap();
                    let seen = c.ask(s, "p", "Paper", "true").unwrap().answers;
                    // Own writes are prefix-closed under refresh: all
                    // of this thread's TELLs so far must be visible.
                    for j in 0..=i {
                        let mine = format!("p_{t}_{j}");
                        assert!(seen.contains(&mine), "{mine} missing after refresh");
                    }
                }
                c.bye(s).unwrap();
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    let served = server.shutdown().unwrap();

    // Serial replay of the same TELLs into a fresh GKBMS.
    let mut serial = Gkbms::new().unwrap();
    let tell = |g: &mut Gkbms, src: &str| {
        g.begin_write();
        let frames = conceptbase::objectbase::ObjectFrame::parse_all(src).unwrap();
        conceptbase::objectbase::transform::tell_all(g.kb_mut(), &frames).unwrap();
    };
    tell(&mut serial, "TELL Paper end");
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            tell(&mut serial, &format!("TELL p_{t}_{i} in Paper end"));
        }
    }

    let answers =
        |g: &Gkbms| conceptbase::objectbase::query::ask(g.kb(), "p", "Paper", "true").unwrap();
    let mut from_served = answers(&served);
    let mut from_serial = answers(&serial);
    from_served.sort();
    from_serial.sort();
    assert_eq!(from_served, from_serial, "final KB != serial replay");
    assert_eq!(from_served.len(), THREADS * PER_THREAD);
}

/// A reader session opened before a TELL must not observe it, however
/// many times it asks, until it refreshes.
#[test]
fn reader_opened_before_tell_does_not_observe_it() {
    let (server, addr) = start(quick_cfg());
    let mut writer = Client::connect(addr).unwrap();
    let (w, _) = writer.hello().unwrap();
    writer
        .tell(w, "TELL Paper end\nTELL before in Paper end")
        .unwrap();

    let mut reader = Client::connect(addr).unwrap();
    let (r, _) = reader.hello().unwrap();
    let baseline = reader.ask(r, "p", "Paper", "true").unwrap().answers;
    assert_eq!(baseline, vec!["before"]);

    writer.refresh(w).unwrap();
    writer.tell(w, "TELL after in Paper end").unwrap();
    writer.refresh(w).unwrap();
    assert_eq!(
        writer.ask(w, "p", "Paper", "true").unwrap().answers,
        vec!["after", "before"]
    );

    for _ in 0..3 {
        let pinned = reader.ask(r, "p", "Paper", "true").unwrap().answers;
        assert_eq!(pinned, vec!["before"], "snapshot must not move");
    }
    // UNTELL does not disturb the snapshot either.
    writer.untell(w, "before").unwrap();
    let pinned = reader.ask(r, "p", "Paper", "true").unwrap().answers;
    assert_eq!(pinned, vec!["before"], "snapshot survives UNTELL");

    reader.refresh(r).unwrap();
    assert_eq!(
        reader.ask(r, "p", "Paper", "true").unwrap().answers,
        vec!["after"]
    );
    server.shutdown().unwrap();
}

/// Saturating the admission gate yields typed Overloaded replies, and
/// the server recovers once load drains.
#[test]
fn overloaded_under_saturating_burst() {
    let (server, addr) = start(Config {
        max_inflight: 2,
        poll_interval: Duration::from_millis(20),
        ..Config::default()
    });
    {
        let mut c = Client::connect(addr).unwrap();
        let (s, _) = c.hello().unwrap();
        c.tell(s, "TELL Paper end").unwrap();
        c.bye(s).unwrap();
    }
    // Two sleepers occupy both slots; a burst of asks must then see
    // at least one Overloaded, never a hang or a protocol error.
    let sleepers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let (s, _) = c.hello().unwrap();
                c.sleep(s, 500).unwrap();
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));
    let mut c = Client::connect(addr).unwrap();
    let (s, _) = c.hello().unwrap();
    let mut overloaded = 0;
    for _ in 0..5 {
        match c.ask(s, "p", "Paper", "true") {
            Err(ClientError::Server(e)) if e.code == ErrorCode::Overloaded => overloaded += 1,
            Ok(_) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(overloaded > 0, "saturated server must shed load");
    for sl in sleepers {
        sl.join().unwrap();
    }
    // Recovered: the same ask now succeeds.
    assert!(c.ask(s, "p", "Paper", "true").is_ok());
    server.shutdown().unwrap();
}

/// SAVE over the wire, shut the server down, start a new one, LOAD —
/// the state round-trips across the restart.
#[test]
fn save_shutdown_load_roundtrip() {
    let path = tmp("roundtrip");
    let path_str = path.to_str().unwrap().to_string();

    let (server, addr) = start(quick_cfg());
    {
        let mut c = Client::connect(addr).unwrap();
        let (s, _) = c.hello().unwrap();
        c.tell(
            s,
            "TELL Paper end\nTELL kept in Paper end\nTELL gone in Paper end",
        )
        .unwrap();
        c.refresh(s).unwrap();
        c.untell(s, "gone").unwrap();
        c.refresh(s).unwrap();
        c.save(s, &path_str).unwrap();
        c.bye(s).unwrap();
    }
    server.shutdown().unwrap();

    // A brand-new server process-equivalent: fresh state, then LOAD.
    let (server, addr) = start(quick_cfg());
    {
        let mut c = Client::connect(addr).unwrap();
        let (s, _) = c.hello().unwrap();
        assert!(c.ask(s, "p", "Paper", "true").is_err(), "fresh KB is empty");
        c.load(s, &path_str).unwrap();
        let papers = c.ask(s, "p", "Paper", "true").unwrap().answers;
        assert_eq!(papers, vec!["kept"], "belief state survives restart");
        // The UNTELL replayed too: `gone` stays dead after the restart.
        assert!(c.holds(s, "kept in Paper").unwrap());
        assert!(c.holds(s, "gone in Paper").is_err(), "untold name unknown");
        c.bye(s).unwrap();
    }
    server.shutdown().unwrap();
    let _ = std::fs::remove_file(&path);
}

/// Graceful shutdown: an in-flight request completes with a response,
/// new work is refused, and join() drains everything.
#[test]
fn graceful_shutdown_drains() {
    let (server, addr) = start(quick_cfg());
    let mut a = Client::connect(addr).unwrap();
    let (sa, _) = a.hello().unwrap();
    let mut b = Client::connect(addr).unwrap();
    let (sb, _) = b.hello().unwrap();

    let inflight = std::thread::spawn(move || a.sleep(sa, 300));
    std::thread::sleep(Duration::from_millis(80));
    b.shutdown_server(sb).unwrap();
    // The in-flight sleep still gets its full response.
    assert_eq!(inflight.join().unwrap().unwrap(), "slept 300 ms");
    // New work on a draining server is refused (or the connection is
    // already gone, which is also a clean refusal).
    match b.ask(sb, "p", "Paper", "true") {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::ShuttingDown),
        Err(ClientError::Io(_)) => {}
        other => panic!("unexpected {other:?}"),
    }
    server.join().unwrap();
}

/// Decision ops over the wire: register, query applicability, execute,
/// inspect history, retract.
#[test]
fn decision_lifecycle_over_the_wire() {
    use conceptbase::server::{WireDecision, WireDischarge};
    let (server, addr) = start(quick_cfg());
    let mut c = Client::connect(addr).unwrap();
    let (s, _) = c.hello().unwrap();

    // Set up a minimal design world directly in the served state is
    // not possible over the wire for class definitions, so drive the
    // generic object path: register + history + navigation queries.
    c.tell(s, "TELL Specification end").unwrap();
    c.refresh(s).unwrap();
    c.register_object(s, "Spec1", "Specification", "spec1_src")
        .unwrap();
    c.refresh(s).unwrap();

    let applicable = c.applicable_decisions(s, "Spec1").unwrap();
    assert!(applicable.is_empty(), "no decision classes defined yet");

    // No decision has touched Spec1 yet, so its history is empty but
    // the query itself succeeds (the object is known).
    let hist = c.object_history(s, "Spec1").unwrap();
    assert!(hist.is_empty());
    let status = c.status(s).unwrap();
    assert!(status.contains("Spec1"), "{status}");

    // Executing against a missing decision class is a typed rejection,
    // not a hang or protocol error.
    let refused = c.execute(
        s,
        WireDecision {
            class: "NoSuchDecision".into(),
            name: "D1".into(),
            performer: "maria".into(),
            tool: None,
            inputs: vec!["Spec1".into()],
            outputs: vec![],
            discharges: vec![WireDischarge::Formal {
                obligation: "Ob1".into(),
            }],
        },
    );
    match refused {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::Rejected),
        other => panic!("unexpected {other:?}"),
    }
    match c.retract_decision(s, "D1") {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::Rejected),
        other => panic!("unexpected {other:?}"),
    }
    c.bye(s).unwrap();
    server.shutdown().unwrap();
}

/// Session statistics surface the snapshot watermark and the last
/// ASK's deductive counters.
#[test]
fn session_stats_reflect_last_ask() {
    let (server, addr) = start(quick_cfg());
    let mut c = Client::connect(addr).unwrap();
    let (s, watermark) = c.hello().unwrap();
    c.tell(s, "TELL Paper end\nTELL p1 in Paper end").unwrap();
    c.refresh(s).unwrap();

    let reply = c.ask(s, "p", "Paper", "true").unwrap();
    assert!(reply.probes > 0);
    let stats = c.session_stats(s).unwrap();
    assert_eq!(stats.session, s);
    assert!(stats.watermark > watermark, "refresh moved the watermark");
    assert_eq!(stats.probes, reply.probes);
    assert_eq!(stats.scanned, reply.scanned);
    assert!(stats.believed > 0);
    assert!(stats.requests >= 3);
    c.bye(s).unwrap();
    server.shutdown().unwrap();
}

/// Extracts the value of a Prometheus series from exposition text.
fn scrape(text: &str, series: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.starts_with(series) && l[series.len()..].starts_with(' '))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
}

/// A scripted session must show up in the metrics scrape: per-op
/// request counters, latency histogram counts, bytes in/out. The
/// registry is process-global and shared with concurrently running
/// tests, so every assertion compares deltas.
#[test]
fn metrics_observable_end_to_end() {
    let (server, addr) = start(quick_cfg());
    let mut c = Client::connect(addr).unwrap();
    let before = c.metrics().unwrap();
    let base = |s: &str| scrape(&before, s).unwrap_or(0.0);
    let (tell0, ask0, hist0, read0) = (
        base("gkbms_requests_total{op=\"tell\"}"),
        base("gkbms_requests_total{op=\"ask\"}"),
        base("gkbms_request_seconds_count{op=\"ask\"}"),
        base("gkbms_bytes_read_total"),
    );

    let (s, _) = c.hello().unwrap();
    c.tell(s, "TELL Paper end\nTELL p1 in Paper end").unwrap();
    c.refresh(s).unwrap();
    let reply = c.ask(s, "p", "Paper", "true").unwrap();
    assert_eq!(reply.answers, vec!["p1"]);

    let after = c.metrics().unwrap();
    let now = |s: &str| scrape(&after, s).unwrap_or(0.0);
    assert!(
        now("gkbms_requests_total{op=\"tell\"}") >= tell0 + 1.0,
        "tell counter:\n{after}"
    );
    assert!(
        now("gkbms_requests_total{op=\"ask\"}") >= ask0 + 1.0,
        "ask counter:\n{after}"
    );
    assert!(
        now("gkbms_request_seconds_count{op=\"ask\"}") >= hist0 + 1.0,
        "ask latency histogram:\n{after}"
    );
    assert!(
        now("gkbms_bytes_read_total") > read0,
        "request bytes:\n{after}"
    );
    // The deductive engine's cumulative counters moved with the ASK.
    assert!(
        now("datalog_index_probes_total") > 0.0,
        "datalog probes:\n{after}"
    );
    assert!(
        now("gkbms_sessions_opened_total") >= 1.0,
        "session counter:\n{after}"
    );
    // MVCC observability: Hello acquired a pinned version and the TELLs
    // published new ones (counters are global and monotone, so >= 1).
    assert!(
        now("gkbms_snapshot_acquires_total") >= 1.0,
        "snapshot acquires:\n{after}"
    );
    assert!(
        now("gkbms_versions_published_total") >= 1.0,
        "versions published:\n{after}"
    );
    assert!(
        scrape(&after, "gkbms_store_versions_live").is_some(),
        "live-version gauge:\n{after}"
    );
    c.bye(s).unwrap();
    server.shutdown().unwrap();
}

/// A saturated server still answers Metrics: the scrape is a control
/// request and bypasses the admission gate.
#[test]
fn metrics_scrape_bypasses_admission() {
    let (server, addr) = start(Config {
        max_inflight: 1,
        poll_interval: Duration::from_millis(20),
        ..Config::default()
    });
    let mut holder = Client::connect(addr).unwrap();
    let (hs, _) = holder.hello().unwrap();
    let hold = std::thread::spawn(move || holder.sleep(hs, 400).unwrap());
    std::thread::sleep(Duration::from_millis(100));
    let mut c = Client::connect(addr).unwrap();
    let text = c.metrics().unwrap();
    assert!(text.contains("# TYPE"), "{text}");
    hold.join().unwrap();
    server.shutdown().unwrap();
}

/// ASKs crossing the configured threshold land in the slow-query log
/// with their evaluation statistics.
#[test]
fn slow_query_log_records_over_threshold_asks() {
    let (server, addr) = start(Config {
        poll_interval: Duration::from_millis(20),
        // Zero threshold: every ASK is "slow".
        slow_query_threshold: Some(Duration::ZERO),
        ..Config::default()
    });
    let mut c = Client::connect(addr).unwrap();
    let (s, _) = c.hello().unwrap();
    c.tell(s, "TELL Paper end\nTELL p1 in Paper end").unwrap();
    c.refresh(s).unwrap();
    c.ask(s, "p", "Paper", "true").unwrap();
    let slow = server.slow_queries();
    assert!(!slow.is_empty(), "zero threshold must log the ASK");
    let q = slow.last().unwrap();
    assert_eq!(q.source, "ASK p/Paper WHERE true");
    assert!(q.index_probes > 0, "{q:?}");
    c.bye(s).unwrap();
    server.shutdown().unwrap();
}

/// Writes raw bytes to a fresh connection and returns whether the
/// write was accepted (the server may drop the connection at any
/// point, which is fine — what matters is the *other* session).
fn send_raw(addr: std::net::SocketAddr, bytes: &[u8]) {
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    let _ = s.write_all(bytes);
    let _ = s.flush();
    // Give the server a moment to read and react.
    std::thread::sleep(Duration::from_millis(60));
}

/// Hostile wire input — an oversized length prefix, a CRC-corrupt
/// frame, a mid-frame disconnect — must at worst kill that connection,
/// never the server or another session.
#[test]
fn hostile_frames_do_not_poison_other_sessions() {
    use conceptbase::storage::record::{self, MAX_RECORD_LEN};
    let (server, addr) = start(quick_cfg());
    let mut good = Client::connect(addr).unwrap();
    let (s, _) = good.hello().unwrap();
    good.tell(s, "TELL Paper end\nTELL p1 in Paper end")
        .unwrap();
    good.refresh(s).unwrap();

    // 1. Length prefix beyond MAX_RECORD_LEN.
    let oversized = ((MAX_RECORD_LEN + 1) as u32).to_le_bytes();
    let mut frame = oversized.to_vec();
    frame.extend_from_slice(&[0u8; 4]); // bogus crc
    send_raw(addr, &frame);

    // 2. CRC-corrupt frame: valid header, flipped payload byte.
    let mut buf = Vec::new();
    record::write_record(&mut buf, b"not a request").unwrap();
    let last = buf.len() - 1;
    buf[last] ^= 0xFF;
    send_raw(addr, &buf);

    // 3. Mid-frame disconnect: header promises 64 bytes, send 5, hang up.
    let mut partial = 64u32.to_le_bytes().to_vec();
    partial.extend_from_slice(&0u32.to_le_bytes());
    partial.extend_from_slice(b"stub!");
    send_raw(addr, &partial);

    // 4. Well-framed garbage payload: decodes as BadRequest, the
    // connection survives and answers the next (valid) frame.
    {
        let mut s2 = Client::connect(addr).unwrap();
        match s2.roundtrip(&conceptbase::server::Request::Hello) {
            Ok(conceptbase::server::Response::Welcome { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    // The well-behaved session is unaffected by all of the above.
    let reply = good.ask(s, "p", "Paper", "true").unwrap();
    assert_eq!(reply.answers, vec!["p1"]);
    good.bye(s).unwrap();
    server.shutdown().unwrap();
}

/// A server that accepts the connection but never answers must fail
/// the call with a typed Timeout within the configured budget — not
/// block forever (the bug this guards against: `Client::connect` +
/// blocking reads with no read timeout).
#[test]
fn stalled_server_yields_typed_timeout() {
    // A "server" that accepts and then sleeps, never writing a byte.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stall = std::thread::spawn(move || {
        let (_stream, _) = listener.accept().unwrap();
        std::thread::sleep(Duration::from_secs(10));
    });

    let timeout = Duration::from_millis(300);
    let mut c = Client::connect_with_timeout(addr, timeout).unwrap();
    assert_eq!(c.read_timeout(), timeout);
    let started = Instant::now();
    match c.ping() {
        Err(ClientError::Timeout(t)) => assert_eq!(t, timeout),
        other => panic!("expected Timeout, got {other:?}"),
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed >= timeout && elapsed < Duration::from_secs(5),
        "timeout fired at {elapsed:?}, budget {timeout:?}"
    );
    drop(c);
    drop(stall); // detach; the sleeping thread dies with the process
}

/// Superseded store versions are retained exactly as long as a session
/// pins them, and the chain converges back to one live version once
/// every session has moved on (Refresh) or closed (Bye).
#[test]
fn store_versions_converge_after_sessions_quiesce() {
    let (server, addr) = start(quick_cfg());
    let mut a = Client::connect(addr).unwrap();
    let (sa, _) = a.hello().unwrap();
    let mut b = Client::connect(addr).unwrap();
    let (sb, _) = b.hello().unwrap();
    assert_eq!(server.store_versions_live(), 1, "nothing published yet");

    a.tell(sa, "TELL Paper end").unwrap();
    for i in 0..5 {
        a.tell(sa, &format!("TELL r{i} in Paper end")).unwrap();
    }
    // Both sessions still pin the pre-TELL version; the five
    // intermediate versions were never pinned and are already gone.
    assert_eq!(server.store_versions_live(), 2, "pinned epoch + head");
    assert_eq!(server.pinned_store_epochs(), 1);

    b.refresh(sb).unwrap();
    assert_eq!(
        server.store_versions_live(),
        2,
        "session a still pins the old epoch"
    );
    a.bye(sa).unwrap();
    assert_eq!(server.store_versions_live(), 1, "last pinned reader left");
    b.bye(sb).unwrap();
    assert_eq!(server.pinned_store_epochs(), 0);
    assert_eq!(server.store_versions_live(), 1);
    server.shutdown().unwrap();
}

/// The ISSUE 6 bugfix, end to end: a session that is *leaked* — Hello,
/// then the client vanishes without Bye — must not pin its store
/// version forever. The idle-timeout sweep reaps it and reclamation
/// proceeds.
#[test]
fn leaked_idle_session_releases_its_pinned_version() {
    let (server, addr) = start(Config {
        idle_timeout: Duration::from_millis(200),
        poll_interval: Duration::from_millis(20),
        ..Config::default()
    });
    // Leak a session pinned at the empty epoch-0 store.
    let leaked = {
        let mut leaker = Client::connect(addr).unwrap();
        let (s, _) = leaker.hello().unwrap();
        s
    };
    // A writer advances the store and keeps its own pin on the head,
    // so only the leaked session retains history.
    let mut writer = Client::connect(addr).unwrap();
    let (w, _) = writer.hello().unwrap();
    writer.tell(w, "TELL Paper end").unwrap();
    writer.refresh(w).unwrap();
    writer.tell(w, "TELL p1 in Paper end").unwrap();
    writer.refresh(w).unwrap();
    assert_eq!(
        server.store_versions_live(),
        2,
        "leaked session retains the old version"
    );

    // No Bye ever arrives. Sweeps (on publishes and idle connection
    // polls) must still reap the leaked session and free its version.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.store_versions_live() > 1 {
        assert!(
            Instant::now() < deadline,
            "leaked session never released its pinned version"
        );
        std::thread::sleep(Duration::from_millis(30));
        writer.refresh(w).unwrap();
    }
    assert_eq!(server.pinned_store_epochs(), 1, "only the writer remains");
    // The leaked session is really gone, not just unpinned.
    match writer.ask(leaked, "p", "Paper", "true") {
        Err(ClientError::Server(e)) => assert!(
            e.code == ErrorCode::UnknownSession || e.code == ErrorCode::SessionExpired,
            "unexpected code {:?}",
            e.code
        ),
        other => panic!("leaked session still serves requests: {other:?}"),
    }
    writer.bye(w).unwrap();
    server.shutdown().unwrap();
}

/// Materialized views over the wire: register, maintain under TELL and
/// UNTELL churn, and serve snapshot-pinned reads — a session pinned
/// before a refresh never observes answers from a newer tick.
#[test]
fn registered_view_maintains_and_pins_over_the_wire() {
    let (server, addr) = start(quick_cfg());
    let mut c = Client::connect(addr).unwrap();
    let (s, _) = c.hello().unwrap();
    c.tell(s, "TELL Paper end").unwrap();
    c.tell(s, "TELL p1 in Paper end").unwrap();
    let done = c
        .register_view(s, "closure", "hasPaper(X) :- inT(X, \"Paper\").")
        .unwrap();
    assert!(done.contains("registered view `closure`"), "{done}");
    assert!(
        matches!(
            c.register_view(s, "closure", ""),
            Err(ClientError::Server(e)) if e.code == ErrorCode::Rejected
        ),
        "duplicate view name must be rejected"
    );
    c.refresh(s).unwrap();

    // A reader pinned now, before any further churn: its first read is
    // served from the materialized model (watermark >= as_of).
    let mut pinned = Client::connect(addr).unwrap();
    let (ps, _) = pinned.hello().unwrap();
    let before = pinned.view_ask(ps, "closure", "hasPaper").unwrap();
    assert_eq!(before, vec!["p1".to_string()]);

    // Churn refreshes the view at newer ticks; the writer (refreshed)
    // sees the new model, the pinned session must not.
    c.tell(s, "TELL p2 in Paper end").unwrap();
    c.refresh(s).unwrap();
    assert_eq!(
        c.view_ask(s, "closure", "hasPaper").unwrap(),
        vec!["p1".to_string(), "p2".to_string()]
    );
    let after = pinned.view_ask(ps, "closure", "hasPaper").unwrap();
    assert_eq!(after, before, "pinned reader observed a newer refresh");

    // UNTELL flows a delete delta through the same maintenance path.
    c.untell(s, "p2").unwrap();
    c.refresh(s).unwrap();
    assert_eq!(
        c.view_ask(s, "closure", "hasPaper").unwrap(),
        vec!["p1".to_string()]
    );

    // Unknown views are typed rejections, not protocol errors.
    match c.view_ask(s, "ghost", "hasPaper") {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::Rejected),
        other => panic!("unexpected {other:?}"),
    }

    // The maintenance engine is observable: refreshes ran and delta
    // tuples flowed (never a from-scratch recompute on the hot path).
    let text = c.metrics().unwrap();
    assert!(
        scrape(&text, "datalog_ivm_refreshes_total").unwrap_or(0.0) >= 2.0,
        "expected ivm refreshes in scrape"
    );
    assert!(
        scrape(&text, "datalog_ivm_delta_tuples_total").unwrap_or(0.0) >= 1.0,
        "expected ivm delta tuples in scrape"
    );
    pinned.bye(ps).unwrap();
    c.bye(s).unwrap();
    server.shutdown().unwrap();
}

/// The `Explain` wire op renders the evaluator's join plan and cost
/// estimate against the live KB — and extra rules sent with the
/// request are costed alongside the stored base.
#[test]
fn explain_renders_cost_estimates_over_the_wire() {
    let (server, addr) = start(quick_cfg());
    let mut c = Client::connect(addr).unwrap();
    let (s, _) = c.hello().unwrap();
    c.tell(s, "TELL Paper end").unwrap();
    c.tell(s, "TELL p1 in Paper end").unwrap();

    // The stored base alone: the closure strata are in the plan.
    let plan = c.explain(s, "").unwrap();
    assert!(plan.contains("estimated cost"), "{plan}");
    assert!(plan.contains("inT"), "{plan}");
    assert!(plan.contains("total estimated cost"), "{plan}");

    // Extra rules ride along and show up in the rendered plan.
    let plan = c.explain(s, "reach(X, Y) :- attr(X, next, Y).").unwrap();
    assert!(plan.contains("reach"), "{plan}");
    assert!(plan.contains("estimated cost"), "{plan}");

    // Broken extra rules are typed rejections, not protocol errors.
    match c.explain(s, "p(X) :- q(X") {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::Rejected),
        other => panic!("unexpected {other:?}"),
    }

    // Admission linting is incremental: the second lint of the same
    // rules is served from the fingerprint cache.
    c.lint(s, "win(X) :- in_(X, \"Paper\").").unwrap();
    c.lint(s, "win(X) :- in_(X, \"Paper\").").unwrap();
    let text = c.metrics().unwrap();
    assert!(
        scrape(&text, "gkbms_lint_fingerprint_hits_total").unwrap_or(0.0) >= 1.0,
        "expected fingerprint-cache hits in scrape"
    );
    c.bye(s).unwrap();
    server.shutdown().unwrap();
}

/// One step of a generated client script.
#[derive(Debug, Clone, Copy)]
enum ScriptOp {
    Tell,
    Untell,
    Ask,
    Refresh,
}

/// Weighted op pick: 3 TELL : 1 UNTELL : 3 ASK : 2 REFRESH.
fn script_op() -> impl Strategy<Value = ScriptOp> {
    (0u8..9).prop_map(|n| match n {
        0..=2 => ScriptOp::Tell,
        3 => ScriptOp::Untell,
        4..=6 => ScriptOp::Ask,
        _ => ScriptOp::Refresh,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The ISSUE 6 differential concurrency property, over the wire:
    /// N client threads run random TELL/UNTELL/ASK/REFRESH scripts
    /// concurrently; every ASK answer a pinned session observed must be
    /// byte-identical to a retrospective query on the final state at
    /// that session's watermark. Belief time is append-only with
    /// respect to pinned watermarks, so the final state *is* the serial
    /// replay of the committed interleaving.
    #[test]
    fn concurrent_interleavings_match_serial_replay_at_watermark(
        scripts in prop::collection::vec(
            prop::collection::vec(script_op(), 1..8),
            2..4,
        ),
    ) {
        let (server, addr) = start(quick_cfg());
        {
            let mut c = Client::connect(addr).unwrap();
            let (s, _) = c.hello().unwrap();
            c.tell(s, "TELL Paper end").unwrap();
            c.bye(s).unwrap();
        }
        let workers: Vec<_> = scripts
            .into_iter()
            .enumerate()
            .map(|(t, script)| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    let (s, mut watermark) = c.hello().unwrap();
                    let mut told: Vec<String> = Vec::new();
                    let mut next = 0usize;
                    let mut observations = Vec::new();
                    for op in script {
                        match op {
                            ScriptOp::Tell => {
                                let name = format!("q_{t}_{next}");
                                next += 1;
                                c.tell(s, &format!("TELL {name} in Paper end")).unwrap();
                                told.push(name);
                            }
                            ScriptOp::Untell => {
                                if let Some(name) = told.pop() {
                                    c.untell(s, &name).unwrap();
                                }
                            }
                            ScriptOp::Refresh => {
                                let done = c.refresh(s).unwrap();
                                watermark = done
                                    .strip_prefix("watermark ")
                                    .expect("refresh reply shape")
                                    .parse()
                                    .expect("watermark integer");
                            }
                            ScriptOp::Ask => {
                                let answers =
                                    c.ask(s, "p", "Paper", "true").unwrap().answers;
                                observations.push((watermark, answers));
                            }
                        }
                    }
                    c.bye(s).unwrap();
                    observations
                })
            })
            .collect();
        let mut observations = Vec::new();
        for w in workers {
            observations.extend(w.join().expect("client thread"));
        }
        prop_assert_eq!(server.store_versions_live(), 1, "sessions quiesced");
        let final_state = server.shutdown().unwrap();
        for (w, seen) in observations {
            let (replayed, _) = conceptbase::objectbase::query::ask_with_stats_at(
                final_state.kb(),
                w,
                "p",
                "Paper",
                "true",
            )
            .unwrap();
            prop_assert_eq!(&replayed, &seen, "serial replay diverged at watermark {}", w);
        }
    }
}

/// A peer that stalls *mid-frame* (sends a partial response header and
/// goes quiet) also times out instead of hanging the client.
#[test]
fn mid_frame_stall_yields_typed_timeout() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stall = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        // Send half a frame header, then stall.
        stream.write_all(&[9, 0]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_secs(10));
    });

    let mut c = Client::connect_with_timeout(addr, Duration::from_millis(300)).unwrap();
    let started = Instant::now();
    match c.ping() {
        Err(ClientError::Timeout(_)) => {}
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(started.elapsed() < Duration::from_secs(5));
    drop(c);
    drop(stall);
}
