//! Integration: the §2.1 scenario reproduces figs 2-1 … 2-4 across the
//! whole stack (gkbms + langs + modelbase + telos).

use conceptbase::gkbms::scenario::Scenario;
use conceptbase::langs::dbpl::DbplType;

fn full_history() -> Scenario {
    let mut s = Scenario::setup().unwrap();
    s.step2_map_invitations().unwrap();
    s.step3_normalize().unwrap();
    s.step4_substitute_keys().unwrap();
    s
}

#[test]
fn fig_2_1_browser_and_menu() {
    let s = Scenario::setup().unwrap();
    let r = s.step1_browse().unwrap();
    // The IsA window of fig 2-1.
    assert!(r.text.contains("Paper\n|- Invitation\n`- Minutes"));
    // The hierarchical menu with applicable decision classes and tools.
    assert!(r.text.contains("menu for `Invitation`"));
    assert!(r.text.contains("DecMoveDown"));
    assert!(r.text.contains("DecDistribute"));
    // The most specific classes precede the general mapping decision.
    let move_at = r.text.find("DecMoveDown").unwrap();
    let general_at = r.text.find("DBPL_MappingDec").unwrap();
    assert!(move_at < general_at);
}

#[test]
fn fig_2_2_dependencies_and_code_frames() {
    let mut s = Scenario::setup().unwrap();
    let r = s.step2_map_invitations().unwrap();
    // Dependency graph: FROM and TO links around the decision, BY to
    // the tool.
    assert!(r
        .text
        .contains("Invitation --from--> DecMoveDown:mapInvitations"));
    assert!(r
        .text
        .contains("DecMoveDown:mapInvitations --to--> InvitationRel"));
    assert!(r
        .text
        .contains("TDL-DBPL-Mapper --by--> DecMoveDown:mapInvitations"));
    // Code frame with the surrogate key and inherited attributes.
    assert!(r.text.contains("RELATION InvitationRel"));
    assert!(r.text.contains("KEY paperkey"));
    assert!(r.text.contains("ATTR receivers : SETOF Person"));
    // ConsPapers is the move-down constructor for the inner class.
    assert!(s.module.decl("ConsPapers").is_some());
}

#[test]
fn fig_2_3_normalization_objects() {
    let mut s = Scenario::setup().unwrap();
    s.step2_map_invitations().unwrap();
    let r = s.step3_normalize().unwrap();
    for name in [
        "InvitationRel2",
        "InvReceivRel",
        "InvitationsPaperIC",
        "ConsInvitation",
    ] {
        assert!(r.text.contains(name), "{name} missing from fig 2-3 report");
        assert!(s.gkbms.is_current(name), "{name} not current");
    }
    // Referential integrity selector and reconstruction constructor.
    assert!(r.text.contains("appears in InvitationRel2"));
    assert!(r.text.contains("nest receiver as receivers"));
    // The member relation holds (paperkey, receiver).
    let member = s.module.relation("InvReceivRel").unwrap();
    assert_eq!(member.key, vec!["paperkey", "receiver"]);
}

#[test]
fn fig_2_3_key_substitution() {
    let s = full_history();
    let base = s.module.relation("InvitationRel2").unwrap();
    assert_eq!(base.key, vec!["date", "author"]);
    assert!(base.column("paperkey").is_none());
    // Foreign key expanded in the member relation.
    let member = s.module.relation("InvReceivRel").unwrap();
    assert_eq!(member.key, vec!["date", "author", "receiver"]);
    assert_eq!(
        member.column("author").unwrap().ty,
        DbplType::Named("Person".into())
    );
    // The manual decision carries a signature discharge.
    let rec = s.gkbms.record("chooseAssociativeKeys").unwrap();
    assert_eq!(rec.discharges.len(), 1);
    // The choice shows up in the version space.
    let vs = s.gkbms.render_version_space();
    assert!(vs.contains("chooseAssociativeKeys [choice]"));
}

#[test]
fn fig_2_4_inconsistency_and_selective_backtracking() {
    let mut s = full_history();
    let (report, conflicts) = s.step5_map_minutes().unwrap();
    assert_eq!(conflicts.len(), 1, "exactly the candidate-key conflict");
    assert!(report.text.contains("INCONSISTENCY"));
    assert!(report.text.contains("ConsPapers"));

    let before_objects = s.gkbms.current_objects();
    let r = s.step6_backtrack().unwrap();
    assert!(r.text.contains("remaining conflicts: none"));
    // Only the key decision's consequences went out.
    let after_objects = s.gkbms.current_objects();
    let lost: Vec<&String> = before_objects
        .iter()
        .filter(|o| !after_objects.contains(o))
        .collect();
    assert!(lost.iter().all(|o| o.contains("@assoc")), "lost: {lost:?}");
    // The design survives: normalization outputs, Minutes mapping, TDL.
    for kept in [
        "InvitationRel2",
        "InvReceivRel",
        "MinutesRel",
        "Invitation",
        "Minutes",
    ] {
        assert!(s.gkbms.is_current(kept), "{kept} should survive");
    }
    // Documentation survives retraction (nothing is forgotten).
    assert!(s.gkbms.record("chooseAssociativeKeys").is_some());
    assert!(!s.gkbms.is_effective("chooseAssociativeKeys"));
}

#[test]
fn distribute_strategy_is_also_executable() {
    // The menu of fig 2-1 offers both strategies; run distribute.
    use conceptbase::langs::dbpl::DbplModule;
    use conceptbase::langs::mapping::{Distribute, MappingStrategy};
    use conceptbase::langs::taxisdl::document_model;
    let out = Distribute
        .map_hierarchy(&document_model(), "Paper")
        .unwrap();
    let mut module = DbplModule::new("M");
    for d in out.decls {
        module.add(d).unwrap();
    }
    // One relation per class, inclusion selectors for isa links.
    assert!(module.relation("PaperRel").is_some());
    assert!(module.relation("InvitationRel").is_some());
    assert!(module.relation("MinutesRel").is_some());
    assert!(module.decl("Inc_Invitation_Paper").is_some());
    assert!(module.decl("Inc_Minutes_Paper").is_some());
}

#[test]
fn decision_history_is_navigable_after_scenario() {
    let mut s = full_history();
    let (_, conflicts) = s.step5_map_minutes().unwrap();
    assert!(!conflicts.is_empty());
    s.step6_backtrack().unwrap();
    // Process view lists the surviving decisions in causal order.
    let process = s.gkbms.process_view().render();
    let map_at = process.find("mapInvitations").unwrap();
    let norm_at = process.find("normalizeInvitations").unwrap();
    let minutes_at = process.find("mapMinutes").unwrap();
    assert!(map_at < norm_at && norm_at < minutes_at);
    assert!(!process.contains("chooseAssociativeKeys"), "retracted");
    // Causal chain of the normalized relation.
    let chain = s.gkbms.causal_chain("InvitationRel2").unwrap();
    assert_eq!(chain, vec!["mapInvitations", "normalizeInvitations"]);
}
