//! Executing the generated DBPL module: the design-level key conflict
//! of fig 2-4 becomes an observable data-level violation.
//!
//! ```sh
//! cargo run --example run_database
//! ```

use conceptbase::langs::dbpl::{ConsKind, DbplModule, Decl};
use conceptbase::langs::keys::{check_union_key_conflicts, substitute_key};
use conceptbase::langs::mapping::{MappingStrategy, MoveDown};
use conceptbase::langs::normalize::{normalize, NormalizeNames};
use conceptbase::langs::runtime::{Db, Val};
use conceptbase::langs::taxisdl::document_model;

fn s(v: &str) -> Val {
    Val::Str(v.to_string())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Map + normalize + substitute keys, as in scenario steps 2–4.
    let out = MoveDown.map_hierarchy(&document_model(), "Paper")?;
    let mut module = DbplModule::new("DocumentDB");
    for d in out.decls {
        module.add(d)?;
    }
    normalize(
        &mut module,
        "InvitationRel",
        "receivers",
        NormalizeNames {
            base: "InvitationRel2".into(),
            member: "InvReceivRel".into(),
            member_column: "receiver".into(),
            selector: "InvitationsPaperIC".into(),
            constructor: "ConsInvitation".into(),
        },
    )?;
    substitute_key(&mut module, "InvitationRel2", &["date", "author"])?;
    // Step 5: ConsPapers unions the two leaves.
    if let Some(Decl::Constructor(c)) = module.decl("ConsPapers") {
        let mut c = c.clone();
        c.over = vec!["InvitationRel2".into(), "MinutesRel".into()];
        c.kind = ConsKind::Union;
        module.replace(Decl::Constructor(c))?;
    }

    println!("== design-level check ==");
    for conflict in check_union_key_conflicts(&module) {
        println!("  {conflict}");
    }

    println!("\n== data-level demonstration ==");
    let mut db = Db::new(module);
    db.insert(
        "InvitationRel2",
        &[
            ("author", s("maria")),
            ("date", s("1988-06-01")),
            ("sender", s("joe")),
        ],
    )?;
    db.insert(
        "InvReceivRel",
        &[
            ("author", s("maria")),
            ("date", s("1988-06-01")),
            ("receiver", s("ann")),
        ],
    )?;
    db.insert(
        "MinutesRel",
        &[
            ("author", s("maria")),
            ("date", s("1988-06-01")),
            ("approvedBy", s("boss")),
        ],
    )?;
    println!(
        "inserted: 1 invitation, 1 receiver entry, 1 minutes — maria's two papers of 1988-06-01"
    );

    println!("\nConsPapers (union view):");
    for row in db.eval_constructor("ConsPapers")? {
        let cells: Vec<String> = row.iter().map(|(c, v)| format!("{c}={v}")).collect();
        println!("  {}", cells.join(", "));
    }

    println!("\nintegrity check:");
    let violations = db.check_integrity();
    if violations.is_empty() {
        println!("  clean");
    }
    for v in &violations {
        println!("  VIOLATION {v}");
    }
    println!(
        "\n→ exactly the fig 2-4 inconsistency: the associative key (date, author)\n\
         does not identify papers across subclasses; the GKBMS resolution is to\n\
         selectively backtrack the key decision (see `meeting_scenario`)."
    );
    Ok(())
}
