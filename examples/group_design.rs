//! Group decision support (§3.3.3, \[HJ88\]): the key-choice debate as
//! an argumentation structure with multicriteria choice and conflict
//! detection, combined with the ATMS view in which both alternatives
//! coexist.
//!
//! ```sh
//! cargo run --example group_design
//! ```

use rms::atms::Atms;
use rms::group::{GroupBoard, Stance};

fn main() {
    // ---------- argumentation (IBIS) ----------
    let mut board = GroupBoard::new();
    let dev = board.stakeholder("developer");
    let maintainer = board.stakeholder("maintainer");
    board.criterion("user-friendliness", 2.0);
    board.criterion("robustness-under-evolution", 3.0);

    let issue = board.issue("How should the Invitation relation be keyed?");
    let surrogate = board.position(issue, "keep the artificial paperkey surrogate");
    let associative = board.position(issue, "use the associative key (date, author)");
    board.exclusive(surrogate, associative);

    board.argue(
        associative,
        Stance::Pro,
        dev,
        "makes the system more user-friendly (§2.1)",
        1.0,
    );
    board.argue(
        associative,
        Stance::Con,
        maintainer,
        "breaks as soon as Minutes, the second subclass of Papers, is mapped (fig 2-4)",
        2.0,
    );
    board.argue(
        surrogate,
        Stance::Pro,
        maintainer,
        "surrogates stay unique across the whole hierarchy",
        1.5,
    );
    board.score(surrogate, "robustness-under-evolution", 0.9);
    board.score(surrogate, "user-friendliness", 0.3);
    board.score(associative, "robustness-under-evolution", 0.2);
    board.score(associative, "user-friendliness", 0.9);

    // Conflicting endorsements surface for negotiation.
    board.endorse(associative, dev);
    board.endorse(surrogate, maintainer);
    println!("== argumentation board ==\n{board}");
    for c in board.conflicts() {
        println!(
            "CONFLICT on `{}`: {} endorses `{}`, {} endorses `{}`",
            board.issue_text(c.issue),
            board.stakeholder_name(c.left.1),
            board.position_text(c.left.0),
            board.stakeholder_name(c.right.1),
            board.position_text(c.right.0),
        );
    }

    println!("\n== multicriteria ranking ==");
    for (p, score) in board.rank(issue) {
        println!("  {score:+.3}  {}", board.position_text(p));
    }
    let (winner, _) = board.rank(issue)[0];
    board.resolve(issue, winner);
    println!("resolved: {}", board.position_text(winner));

    // ---------- ATMS: alternatives coexist until chosen ----------
    println!("\n== ATMS contexts (fig 3-4's coexisting implementations) ==");
    let mut atms = Atms::new();
    let a_sur = atms.assumption("choice: surrogate keys");
    let a_ass = atms.assumption("choice: associative keys");
    let a_min = atms.assumption("map Minutes");
    let impl_sur = atms.node("implementation v1 (paperkey)");
    let impl_ass = atms.node("implementation v2 (date, author)");
    let clash = atms.contradiction("union over ConsPapers loses its candidate key");
    atms.justify(impl_sur, &[a_sur]);
    atms.justify(impl_ass, &[a_ass]);
    atms.justify(clash, &[a_ass, a_min]);

    for (node, label) in [(impl_sur, "v1"), (impl_ass, "v2")] {
        println!(
            "{label}: believed in some consistent context: {}",
            atms.believed_somewhere(node)
        );
    }
    let with_minutes = atms.env_of(&[a_ass, a_min]);
    println!(
        "context {{associative, minutes}} consistent: {}",
        atms.consistent(&with_minutes)
    );
    let v1_ctx = atms.env_of(&[a_sur, a_min]);
    println!(
        "context {{surrogate, minutes}} consistent: {} (v1 holds there: {})",
        atms.consistent(&v1_ctx),
        atms.holds_in(impl_sur, &v1_ctx)
    );
}
