//! The DAIDA three-layer pipeline (fig 1-1): CML world/system model →
//! TaxisDL conceptual design → DBPL database programs.
//!
//! ```sh
//! cargo run --example daida_pipeline
//! ```

use langs::dbpl::DbplModule;
use langs::mapping::{map_transaction, Distribute, MappingStrategy, MoveDown};
use langs::world::meeting_world;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Layer 1: the CML world model with its embedded system model.
    println!("== layer 1: CML world/system model ==");
    let world = meeting_world()?;
    println!(
        "world-only classes : Meeting, Room, Activity (checked: {})",
        world.is_world_only("Meeting") && world.is_world_only("Room")
    );
    println!(
        "system classes     : {}\n",
        world.system_classes().join(", ")
    );

    // Layer 2: the mapping assistant derives the TaxisDL design.
    println!("== layer 2: derived TaxisDL conceptual design ==");
    let tdl = world.derive_taxisdl()?;
    println!("{}", tdl);

    // Layer 3: both mapping strategies produce DBPL modules.
    for strategy in [&MoveDown as &dyn MappingStrategy, &Distribute] {
        println!("== layer 3: DBPL module via `{}` ==", strategy.name());
        let outcome = strategy.map_hierarchy(&tdl, "Paper")?;
        let mut module = DbplModule::new(format!("DocumentDB_{}", strategy.name()));
        for d in outcome.decls {
            module.add(d)?;
        }
        println!("{}", module);
        println!("dependency trace:");
        for e in &outcome.trace {
            println!("  {} --[{}]--> {}", e.from, e.rule, e.to);
        }
        println!();
    }

    // Transactions ride along.
    println!("== transaction mapping ==");
    let full = langs::taxisdl::document_model();
    let tx = map_transaction(&full.transactions[0], &full, "Paper")?;
    match &tx {
        langs::dbpl::Decl::Transaction(t) => {
            println!("TxSendInvitation body: {}", t.body.join("; "));
        }
        _ => unreachable!("map_transaction returns a transaction"),
    }
    Ok(())
}
