//! Quickstart: a tour through every layer of the stack.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! 1. TELL frames into the proposition processor (fig 3-2);
//! 2. ASK open queries and run the deductive engines;
//! 3. check consistency;
//! 4. define a decision class + tool, execute a decision and inspect
//!    the dependency graph (fig 2-6).

use gkbms::{DecisionClass, DecisionRequest, Gkbms, ToolSpec};
use objectbase::query::{ask, DeductiveView, Engine};
use objectbase::{frame::ObjectFrame, transform};
use telos::Kb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------- 1. proposition + object processor ----------
    println!("== TELL frames (object transformer, fig 3-2) ==");
    let mut kb = Kb::new();
    let frames = ObjectFrame::parse_all(
        "TELL TDL_EntityClass isA Class end\n\
         TELL Person end\n\
         TELL Paper in TDL_EntityClass with attribute author : Person end\n\
         TELL Invitation in TDL_EntityClass isA Paper with\n\
           attribute sender : Person\n\
           constraint hasSender : $ forall i/Invitation i.sender defined $\n\
         end\n\
         TELL maria in Person end\n\
         TELL inv42 in Invitation with attribute sender : maria; author : maria end",
    )?;
    transform::tell_all(&mut kb, &frames)?;
    let invitation = kb.expect("Invitation")?;
    println!(
        "Invitation as a frame again:\n{}\n",
        transform::frame_of(&kb, invitation)?
    );

    // ---------- 2. queries ----------
    println!("== ASK (assertion language) ==");
    let senders = ask(&kb, "i", "Invitation", "i.sender = maria")?;
    println!("invitations sent by maria: {senders:?}");

    println!("\n== deductive view (inference engines) ==");
    let view = DeductiveView::new(&kb, "")?;
    for engine in [Engine::BottomUp, Engine::TopDown, Engine::Magic] {
        let papers = view.instances_of("Paper", engine)?;
        println!("{engine:?}: instances of Paper (with inheritance) = {papers:?}");
    }

    // ---------- 3. consistency ----------
    println!("\n== consistency checker ==");
    let (violations, stats) = objectbase::consistency::check_full(&kb);
    println!(
        "violations: {} (constraints evaluated: {})",
        violations.len(),
        stats.constraints_evaluated
    );

    // ---------- 4. the GKBMS ----------
    println!("\n== GKBMS: a documented, tool-aided decision (fig 2-6) ==");
    let mut g = Gkbms::new()?;
    g.define_decision_class(
        DecisionClass::new("TDL_MappingDec", gkbms::DecisionDimension::Mapping)
            .from_classes(&["TDL_EntityClass"])
            .to_classes(&["DBPL_Rel"])
            .precondition("x in TDL_EntityClass"),
    )?;
    g.register_tool(ToolSpec::new("TDL-DBPL-Mapper", true).executes("TDL_MappingDec"))?;
    g.register_object("Invitation", "TDL_EntityClass", "design.tdl#Invitation")?;

    println!("menu for `Invitation`:");
    for (dc, tools) in g.applicable_decisions("Invitation")? {
        println!("  {dc} (tools: {})", tools.join(", "));
    }

    g.execute(
        DecisionRequest::new("TDL_MappingDec", "mapInvitations", "you")
            .with_tool("TDL-DBPL-Mapper")
            .input("Invitation")
            .output("InvitationRel", "DBPL_Rel"),
    )?;
    println!("\ndependency graph:\n{}", g.dependency_graph().render());
    println!("status view:\n{}", g.status_view().render());
    println!(
        "explanation of InvitationRel:\n{}",
        g.explain("InvitationRel")?
    );

    println!("retracting the decision (selective backtracking)…");
    let affected = g.retract_decision("mapInvitations")?;
    println!("objects taken out: {affected:?}");
    println!("replayability: {:?}", g.replayability("mapInvitations")?);
    g.replay_decision("mapInvitations", "mapInvitations-v2")?;
    println!(
        "replayed; InvitationRel current again: {}",
        g.is_current("InvitationRel")
    );
    Ok(())
}
