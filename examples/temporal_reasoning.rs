//! The embedded time calculus (§3.1): Allen interval networks
//! \[ALLE83\] and the event calculus \[KS86\], plus the two-dimensional
//! time of propositions (the paper's `P1` / `P1'` example).
//!
//! ```sh
//! cargo run --example temporal_reasoning
//! ```

use telos::time::allen::{AllenNetwork, AllenRel, RelSet};
use telos::time::events::{EventCalculus, Fluent};
use telos::{Interval, Kb};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------- Allen constraint network ----------
    println!("== Allen network over project phases ==");
    // 0 = requirements, 1 = design, 2 = implementation, 3 = review.
    let mut net = AllenNetwork::new(4);
    net.assert_rel(0, 1, RelSet::of(AllenRel::Before));
    net.assert_rel(1, 2, RelSet::of(AllenRel::Before));
    net.assert_rel(3, 2, RelSet::of(AllenRel::During));
    let consistent = net.propagate();
    println!("consistent: {consistent}");
    println!("requirements vs implementation: {}", net.get(0, 2));
    println!("requirements vs review        : {}", net.get(0, 3));

    // An inconsistent cycle is detected.
    let mut bad = AllenNetwork::new(3);
    bad.assert_rel(0, 1, RelSet::of(AllenRel::Before));
    bad.assert_rel(1, 2, RelSet::of(AllenRel::Before));
    bad.assert_rel(2, 0, RelSet::of(AllenRel::Before));
    println!("before-cycle consistent: {}\n", bad.propagate());

    // ---------- event calculus ----------
    println!("== event calculus over design versions ==");
    let mut ec = EventCalculus::new();
    let valid = Fluent(0);
    ec.happens(17, &[valid], &[]); // version 17 created
    ec.happens(21, &[], &[valid]); // superseded
    ec.happens(25, &[valid], &[]); // reinstated after backtracking
    println!("valid at 18: {}", ec.holds_at(valid, 18));
    println!("valid at 23: {}", ec.holds_at(valid, 23));
    println!("validity periods: {:?}\n", ec.periods(valid));

    // ---------- two time dimensions on propositions ----------
    println!("== history vs belief time (the P1/P1' example) ==");
    let mut kb = Kb::new();
    let invitation = kb.individual("Invitation")?;
    let class = kb.builtins().simple_class;
    // "The time component of P1, version17, stands for the time
    // interval during which version 17 of the design is regarded as
    // valid"; belief starts when the programmer tells the KB.
    let instanceof = kb.intern("instanceof");
    let link = kb.create_raw(
        invitation,
        instanceof,
        class,
        Interval::between(17, 18)?, // history: version17
    )?;
    let p = kb.get(link)?;
    println!("P1  history (valid during)  : {}", p.history);
    println!("P1' belief  (known since)   : {}", p.belief);
    kb.tick();
    kb.untell(link)?;
    let p = kb.get(link)?;
    println!(
        "after UNTELL, belief interval: {} (history untouched: {})",
        p.belief, p.history
    );
    Ok(())
}
