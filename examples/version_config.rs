//! Decision-based versions and configurations (§3.3.2, fig 3-4).
//!
//! ```sh
//! cargo run --example version_config
//! ```
//!
//! Replays the scenario's decision history and then answers the
//! §3.3.2 queries: "configure the latest complete DBPL database
//! program system version", show the vertical/horizontal/choice
//! structure, and demonstrate that the retracted alternative remains
//! recorded.

use gkbms::scenario::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = Scenario::setup()?;
    s.step2_map_invitations()?;
    s.step3_normalize()?;
    s.step4_substitute_keys()?;
    let (_, conflicts) = s.step5_map_minutes()?;
    if !conflicts.is_empty() {
        s.step6_backtrack()?;
    }

    println!("== fig 3-4: decision-based configurations and versions ==\n");
    println!("{}", s.gkbms.render_version_space());

    println!("== configure the latest complete Implementation version ==");
    let config = s.gkbms.configure_level("Implementation")?;
    println!("objects    : {}", config.objects.join(", "));
    println!("justified  : {}", config.justified_by.join(", "));
    let gaps = s.gkbms.vertical_gaps("Implementation")?;
    println!(
        "vertical configuration: {}",
        if gaps.is_empty() {
            "allowable (every object mapped from a current design object)".to_string()
        } else {
            format!("gaps at {}", gaps.join(", "))
        }
    );

    println!("\n== choice points (alternative versions) ==");
    for cp in s.gkbms.choice_points() {
        println!("over {}:", cp.over.join(", "));
        for alt in cp.alternatives {
            println!(
                "  {} {} -> {}",
                if alt.current {
                    "[chosen]  "
                } else {
                    "[retracted]"
                },
                alt.decision,
                alt.objects.join(", ")
            );
        }
    }

    println!("\n== the process view (causal ordering) ==");
    println!("{}", s.gkbms.process_view().render());
    Ok(())
}
