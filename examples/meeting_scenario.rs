//! The §2.1 meeting-documents scenario, end to end (figs 2-1 … 2-4).
//!
//! ```sh
//! cargo run --example meeting_scenario
//! ```
//!
//! Steps: browse the design (2-1) → move-down mapping (2-2) →
//! normalization + key substitution (2-3) → inconsistency on Minutes +
//! selective backtracking (2-4).

use gkbms::scenario::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for report in Scenario::run_all()? {
        println!("================ fig {} ================", report.figure);
        println!("{}", report.text);
    }
    Ok(())
}
