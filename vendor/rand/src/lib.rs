//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny subset of `rand`'s API it actually uses:
//! a seedable deterministic generator ([`rngs::StdRng`]) and the
//! [`Rng`] convenience methods. The generator is splitmix64 — not
//! cryptographic, but statistically fine for workload generation and
//! property tests, and fully reproducible from a `u64` seed.

/// Core trait: a source of random `u64`s.
pub trait RngCore {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring the `rand::Rng` subset the
/// workspace uses.
pub trait Rng: RngCore {
    /// A bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// A uniform value in `[range.start, range.end)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        range.start + self.next_u64() % span
    }
}

impl<T: RngCore> Rng for T {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(7);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = r.gen_range(5..9);
            assert!((5..9).contains(&v));
        }
    }
}
