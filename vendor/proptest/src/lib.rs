//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors a small, self-contained property-testing harness that keeps
//! the `proptest` surface the repo uses source-compatible:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`Strategy`] with `prop_map`, implemented for integer ranges and
//!   tuples,
//! * [`collection::vec`] and [`any`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics
//! with the generated inputs Debug-printed, which together with the
//! deterministic per-test seeding is enough to reproduce and debug.

/// Deterministic RNG used to drive generation.
pub mod test_runner {
    /// splitmix64, seeded from the test name and case index so every
    /// run of a given test explores the same sequence of cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// The next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty range");
            self.next_u64() % n
        }
    }
}

/// Per-test configuration (number of cases).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many generated cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range");
                    let span = (hi - lo) as u128;
                    (lo + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "empty range");
                    let span = (hi - lo) as u128 + 1;
                    (lo + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.generate(rng),)*)
                }
            }
        };
    }

    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, G);
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy for `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `Vec`s of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy {
            element,
            min: size.start,
            max: size.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The `prop::` namespace used by `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each listed `fn` runs once per generated
/// case, with its arguments drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(
                        &($strat), &mut __rng);)*
                    let __case_desc = format!(
                        concat!("case {}: ", $(stringify!($arg), " = {:?} ",)* ""),
                        __case $(, &$arg)*
                    );
                    let __result = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(|| { $body }),
                    );
                    if let Err(e) = __result {
                        eprintln!("proptest failure in {}: {}", stringify!($name), __case_desc);
                        std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3i64..17, y in 0u8..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn prop_map_applies(pair in (0i64..10, 1i64..5).prop_map(|(a, d)| (a, a + d))) {
            prop_assert!(pair.1 > pair.0);
        }
    }

    #[test]
    fn deterministic_generation() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u64..1000, 1..10);
        let a = s.generate(&mut TestRng::for_case("t", 3));
        let b = s.generate(&mut TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }
}
