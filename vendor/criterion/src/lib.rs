//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the API subset its benches use: [`Criterion`] with builder
//! configuration, benchmark groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurements are
//! genuine wall-clock timings (median of `sample_size` samples, each
//! sample long enough to amortize timer overhead); statistics,
//! comparisons and HTML reports are out of scope.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget for the samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            config: self.clone(),
            name: name.into(),
            _criterion: std::marker::PhantomData,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().label;
        run_one(self, &label, &mut f);
        self
    }
}

/// A named benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// How `iter_batched` amortizes setup cost (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every routine call.
    PerIteration,
}

/// A group of related benchmarks sharing (and possibly overriding) the
/// criterion config.
pub struct BenchmarkGroup<'a> {
    config: Criterion,
    name: String,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Overrides the warm-up time for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Runs `f` as the benchmark `id` in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&self.config, &label, &mut f);
        self
    }

    /// Runs `f` with `input` as the benchmark `id` in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&self.config, &label, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(criterion: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        config: criterion.clone(),
        ns_per_iter: None,
        iters: 0,
    };
    f(&mut b);
    match b.ns_per_iter {
        Some(ns) => {
            let time = if ns >= 1_000_000.0 {
                format!("{:.3} ms", ns / 1_000_000.0)
            } else if ns >= 1_000.0 {
                format!("{:.3} µs", ns / 1_000.0)
            } else {
                format!("{ns:.1} ns")
            };
            println!("{label:<55} time: {time:>12}/iter  ({} iters)", b.iters);
        }
        None => println!("{label:<55} (no measurement)"),
    }
}

/// Passed to each benchmark closure to drive the measured routine.
pub struct Bencher {
    config: Criterion,
    /// Median nanoseconds per iteration, once measured.
    ns_per_iter: Option<f64>,
    iters: u64,
}

impl Bencher {
    /// Measures `routine` called in a tight loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: how many calls fit the warm-up
        // budget tells us the batch size for each timed sample.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        let mut calls: u64 = 0;
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            calls += 1;
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let per_call = warm_start.elapsed().as_secs_f64() / calls as f64;

        let samples = self.config.sample_size.max(1);
        let budget = self.config.measurement_time.as_secs_f64();
        let per_sample = budget / samples as f64;
        let batch = ((per_sample / per_call.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let mut times: Vec<f64> = Vec::with_capacity(samples);
        let mut total_iters = 0u64;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            times.push(start.elapsed().as_secs_f64() / batch as f64);
            total_iters += batch;
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = times[times.len() / 2];
        self.ns_per_iter = Some(median * 1e9);
        self.iters = total_iters;
    }

    /// Measures `routine` over fresh inputs from `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        let mut warm_time = Duration::ZERO;
        let mut calls: u64 = 0;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            warm_time += start.elapsed();
            calls += 1;
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let per_call = (warm_time.as_secs_f64() / calls as f64).max(1e-9);

        let samples = self.config.sample_size.max(1);
        let budget = self.config.measurement_time.as_secs_f64();
        let batch = ((budget / samples as f64 / per_call) as u64).clamp(1, 1_000_000);

        let mut times: Vec<f64> = Vec::with_capacity(samples);
        let mut total_iters = 0u64;
        for _ in 0..samples {
            let mut sample_time = Duration::ZERO;
            for _ in 0..batch {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                sample_time += start.elapsed();
            }
            times.push(sample_time.as_secs_f64() / batch as f64);
            total_iters += batch;
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = times[times.len() / 2];
        self.ns_per_iter = Some(median * 1e9);
        self.iters = total_iters;
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion = $config;
                $target(&mut criterion);
            )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("test");
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn iter_batched_runs_setup_per_input() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        c.bench_function("batched", |b| {
            b.iter_batched(
                Vec::<u8>::new,
                |mut v| {
                    v.push(1);
                    v
                },
                BatchSize::SmallInput,
            )
        });
    }
}
