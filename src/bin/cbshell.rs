//! `cbshell` — an interactive shell over the proposition and object
//! processors, in the spirit of ConceptBase's dialog manager.
//!
//! ```sh
//! cargo run --bin cbshell                 # in-memory KB
//! cargo run --bin cbshell -- mykb.log     # persistent KB
//! echo 'ask p/Paper : true' | cargo run --bin cbshell
//! ```
//!
//! Commands (one per line; frames may span lines until `end`):
//!
//! ```text
//! tell <frame…> end        TELL a frame
//! untell <name>            UNTELL an object (cascading)
//! ask <var>/<class> : <expr>   open query
//! holds <expr>             closed query
//! show <name>              the object as a frame
//! isa <name>               the specialization tree below <name>
//! instances <name>         the classification tree below <name>
//! attrs <name>             relational display of the attributes
//! check                    full consistency check
//! stats                    KB statistics
//! help / quit
//! ```

use conceptbase::modelbase::BrowseSession;
use conceptbase::objectbase::consistency::check_full;
use conceptbase::objectbase::frame::ObjectFrame;
use conceptbase::objectbase::query::ask;
use conceptbase::objectbase::transform::{frame_of, tell, untell_object};
use conceptbase::telos::assertion;
use conceptbase::telos::backend::KbBackend;
use conceptbase::telos::Kb;
use std::io::{BufRead, Write};

/// Executes one complete command line; returns the response text or
/// `None` on `quit`.
fn dispatch(kb: &mut Kb, line: &str) -> Option<String> {
    let line = line.trim();
    let (cmd, rest) = match line.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None => (line, ""),
    };
    let out = match cmd {
        "" => String::new(),
        "quit" | "exit" => return None,
        "help" => {
            "commands: tell untell ask holds show isa instances attrs check stats quit".to_string()
        }
        "tell" => match ObjectFrame::parse(&format!("TELL {rest}")) {
            Err(e) => format!("error: {e}"),
            Ok(frame) => match tell(kb, &frame) {
                Err(e) => format!("error: {e}"),
                Ok(receipt) => format!(
                    "ok: {} ({} propositions)",
                    kb.display(receipt.object),
                    receipt.created.len()
                ),
            },
        },
        "untell" => match untell_object(kb, rest) {
            Err(e) => format!("error: {e}"),
            Ok(untold) => format!("ok: {} propositions untold", untold.len()),
        },
        "ask" => {
            // ask <var>/<class> : <expr>
            let parts: Option<(&str, &str)> = rest.split_once(':');
            match parts {
                None => "usage: ask <var>/<class> : <expr>".to_string(),
                Some((binding, expr)) => match binding.trim().split_once('/') {
                    None => "usage: ask <var>/<class> : <expr>".to_string(),
                    Some((var, class)) => match ask(kb, var.trim(), class.trim(), expr.trim()) {
                        Err(e) => format!("error: {e}"),
                        Ok(hits) if hits.is_empty() => "no answers".to_string(),
                        Ok(hits) => hits.join("\n"),
                    },
                },
            }
        }
        "holds" => match assertion::parse(rest) {
            Err(e) => format!("error: {e}"),
            Ok(expr) => match assertion::eval(kb, &expr, &mut assertion::Env::new()) {
                Err(e) => format!("error: {e}"),
                Ok(v) => v.to_string(),
            },
        },
        "show" => match kb.lookup(rest) {
            None => format!("error: unknown object `{rest}`"),
            Some(id) => match frame_of(kb, id) {
                Err(e) => format!("error: {e}"),
                Ok(frame) => frame.to_string(),
            },
        },
        "isa" | "instances" => match BrowseSession::start(kb, rest) {
            Err(e) => format!("error: {e}"),
            Ok(session) => {
                if cmd == "isa" {
                    session.isa_tree()
                } else {
                    session.instance_tree()
                }
            }
        },
        "attrs" => match BrowseSession::start(kb, rest) {
            Err(e) => format!("error: {e}"),
            Ok(session) => session.attribute_table().render(),
        },
        "check" => {
            let (violations, stats) = check_full(kb);
            if violations.is_empty() {
                format!(
                    "consistent ({} constraints over {} classes)",
                    stats.constraints_evaluated, stats.classes_visited
                )
            } else {
                violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            }
        }
        "stats" => format!(
            "propositions: {} total, {} believed; belief tick: {}",
            kb.len(),
            kb.believed_count(),
            kb.now()
        ),
        other => format!("unknown command `{other}` (try `help`)"),
    };
    Some(out)
}

/// Accumulates lines of a multi-line `tell … end` command.
fn needs_more(buffer: &str) -> bool {
    let mut words = buffer.split_whitespace();
    let first = words.next().unwrap_or("");
    // The frame is complete only when `end` stands as its own word
    // (identifiers like `Friend` must not terminate accumulation).
    first == "tell" && buffer.split_whitespace().next_back() != Some("end")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let mut kb = match args.next() {
        Some(path) => Kb::with_backend(KbBackend::log(path)?)?,
        None => Kb::new(),
    };
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    let interactive = atty_guess();
    if interactive {
        println!("ConceptBase-rs shell — `help` for commands, `quit` to leave.");
    }
    let mut buffer = String::new();
    loop {
        if interactive {
            print!("{}", if buffer.is_empty() { "cb> " } else { "...> " });
            out.flush()?;
        }
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        buffer.push_str(&line);
        if needs_more(&buffer) {
            continue;
        }
        let complete = std::mem::take(&mut buffer);
        match dispatch(&mut kb, &complete) {
            None => break,
            Some(response) => {
                if !response.is_empty() {
                    println!("{response}");
                }
            }
        }
    }
    kb.sync()?;
    Ok(())
}

/// Conservative interactivity guess without a TTY crate: assume
/// non-interactive when stdin is redirected (heuristic via env).
fn atty_guess() -> bool {
    std::env::var("CBSHELL_BANNER")
        .map(|v| v == "1")
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_kb() -> Kb {
        let mut kb = Kb::new();
        for cmd in [
            "tell Person end",
            "tell Paper end",
            "tell Invitation isA Paper end",
            "tell inv1 in Invitation end",
        ] {
            dispatch(&mut kb, cmd).unwrap();
        }
        kb
    }

    #[test]
    fn tell_and_show() {
        let mut kb = seeded_kb();
        let shown = dispatch(&mut kb, "show Invitation").unwrap();
        assert!(shown.contains("isA Paper"));
        let r = dispatch(&mut kb, "tell x in Ghost end").unwrap();
        assert!(r.starts_with("error"));
    }

    #[test]
    fn ask_and_holds() {
        let mut kb = seeded_kb();
        let hits = dispatch(&mut kb, "ask p/Paper : true").unwrap();
        assert_eq!(hits, "inv1");
        assert_eq!(dispatch(&mut kb, "holds inv1 in Paper").unwrap(), "true");
        assert_eq!(dispatch(&mut kb, "holds inv1 in Person").unwrap(), "false");
        assert!(dispatch(&mut kb, "ask nonsense")
            .unwrap()
            .starts_with("usage"));
    }

    #[test]
    fn browse_commands() {
        let mut kb = seeded_kb();
        let isa = dispatch(&mut kb, "isa Paper").unwrap();
        assert!(isa.contains("`- Invitation"));
        let inst = dispatch(&mut kb, "instances Paper").unwrap();
        assert!(inst.contains("inv1"));
        assert!(dispatch(&mut kb, "attrs Invitation")
            .unwrap()
            .contains("attribute"));
    }

    #[test]
    fn untell_check_stats() {
        let mut kb = seeded_kb();
        assert!(dispatch(&mut kb, "check")
            .unwrap()
            .starts_with("consistent"));
        let r = dispatch(&mut kb, "untell inv1").unwrap();
        assert!(r.starts_with("ok"));
        assert!(dispatch(&mut kb, "stats").unwrap().contains("believed"));
        assert!(dispatch(&mut kb, "untell inv1")
            .unwrap()
            .starts_with("error"));
    }

    #[test]
    fn quit_and_unknown() {
        let mut kb = seeded_kb();
        assert!(dispatch(&mut kb, "quit").is_none());
        assert!(dispatch(&mut kb, "frobnicate")
            .unwrap()
            .contains("unknown command"));
        assert_eq!(dispatch(&mut kb, "").unwrap(), "");
    }

    #[test]
    fn multiline_accumulation() {
        assert!(needs_more("tell Invitation isA Paper with"));
        assert!(
            needs_more("tell x in Friend"),
            "identifiers ending in 'end' must not terminate the frame"
        );
        assert!(!needs_more("tell x in Friend end"));
        assert!(!needs_more(
            "tell Invitation isA Paper with attribute s : P end"
        ));
        assert!(!needs_more("ask p/Paper : true"));
    }
}
