//! `cbshell` — an interactive shell over the proposition and object
//! processors, in the spirit of ConceptBase's dialog manager.
//!
//! ```sh
//! cargo run --bin cbshell                       # in-memory KB
//! cargo run --bin cbshell -- mykb.log           # persistent KB
//! echo 'ask p/Paper : true' | cargo run --bin cbshell
//! cargo run --bin cbshell -- --listen 127.0.0.1:4711   # serve a KB
//! cargo run --bin cbshell -- --listen 127.0.0.1:4711 --journal kbdir \
//!     --fsync group:2 --checkpoint-every 1000          # durable server
//! cargo run --bin cbshell -- --listen 127.0.0.1:4712 --journal replica \
//!     --follow 127.0.0.1:4711 --max-lag 100            # read replica
//! cargo run --bin cbshell -- --connect 127.0.0.1:4711  # talk to one
//! ```
//!
//! With `--journal <dir>` the served KB recovers from `<dir>` (snapshot
//! plus WAL tail) and journals every committed mutation before it is
//! acknowledged. `--fsync` picks the durability policy (`always`,
//! `group[:<ms>]`, `none`); `--checkpoint-every <n>` compacts the WAL
//! into a fresh snapshot after every `n` journaled ops.
//!
//! With `--follow <addr>` the server starts as a read replica of the
//! leader at `<addr>`: it subscribes with its applied position, applies
//! the shipped log, serves reads at its applied watermark, and redirects
//! writes to the leader. `--max-lag <n>` rejects reads outright once the
//! replica falls more than `n` ops behind. `\promote` (connected mode)
//! turns a follower into a writable leader under a new sequence epoch.
//!
//! Commands (one per line; frames may span lines until `end`):
//!
//! ```text
//! tell <frame…> end        TELL a frame
//! untell <name>            UNTELL an object (cascading)
//! ask <var>/<class> : <expr>   open query
//! holds <expr>             closed query
//! show <name>              the object as a frame
//! isa <name>               the specialization tree below <name>
//! instances <name>         the classification tree below <name>
//! attrs <name>             relational display of the attributes
//! check                    full consistency check
//! stats                    KB statistics
//! \stats                   index probes / tuples scanned of the last ASK
//! \metrics                 process metrics (Prometheus text format)
//! \lint <file>             statically analyze a script without admitting it
//! \explain [rules…]        join plan + cost estimate of the rule base
//! help / quit
//! ```
//!
//! Connected mode additionally understands `refresh` (re-pin the
//! session snapshot), `history`, `status`, `save <path>`,
//! `load <path>`, `\checkpoint` (compact the server journal),
//! `\replstatus` (replication role and lag), `\promote` (make a
//! follower the writable leader),
//! `\view <name> [: <rules>]` (register a materialized deductive view,
//! maintained incrementally under TELL/UNTELL),
//! `\viewask <name> <pred>` (read one predicate of a view, snapshot
//! pinned at the session watermark),
//! `\explain [rules…]` (the evaluator's join plan and cost estimate,
//! via the `Explain` wire op), and
//! `shutdown`; reads are snapshot-isolated at the session watermark,
//! and the shell refreshes automatically after its own successful
//! writes so they stay visible.
//!
//! When a script is piped in (non-interactive), any `error:` response
//! makes the process exit non-zero, so CI can assert on scripts.

use conceptbase::modelbase::BrowseSession;
use conceptbase::objectbase::consistency::check_full;
use conceptbase::objectbase::frame::ObjectFrame;
use conceptbase::objectbase::query::ask_with_stats;
use conceptbase::objectbase::transform::{frame_of, tell, untell_object};
use conceptbase::server::{Client, ClientError, Config, Server};
use conceptbase::telos::assertion;
use conceptbase::telos::backend::KbBackend;
use conceptbase::telos::Kb;
use std::io::{BufRead, Write};

/// Local-mode shell state: the KB plus the counters of the last ASK.
struct Shell {
    kb: Kb,
    last_ask: Option<(usize, usize)>, // (index_probes, tuples_scanned)
}

/// Executes one complete command line; returns the response text or
/// `None` on `quit`.
fn dispatch(shell: &mut Shell, line: &str) -> Option<String> {
    let line = line.trim();
    let (cmd, rest) = match line.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None => (line, ""),
    };
    let kb = &mut shell.kb;
    let out = match cmd {
        "" => String::new(),
        "quit" | "exit" => return None,
        "help" => "commands: tell untell ask holds show isa instances attrs check stats \\stats \
             \\metrics \\lint \\explain quit"
            .to_string(),
        "tell" => match ObjectFrame::parse(&format!("TELL {rest}")) {
            Err(e) => format!("error: {e}"),
            Ok(frame) => match tell(kb, &frame) {
                Err(e) => format!("error: {e}"),
                Ok(receipt) => format!(
                    "ok: {} ({} propositions)",
                    kb.display(receipt.object),
                    receipt.created.len()
                ),
            },
        },
        "untell" => match untell_object(kb, rest) {
            Err(e) => format!("error: {e}"),
            Ok(untold) => format!("ok: {} propositions untold", untold.len()),
        },
        "ask" => {
            // ask <var>/<class> : <expr>
            let parts: Option<(&str, &str)> = rest.split_once(':');
            match parts {
                None => "usage: ask <var>/<class> : <expr>".to_string(),
                Some((binding, expr)) => match binding.trim().split_once('/') {
                    None => "usage: ask <var>/<class> : <expr>".to_string(),
                    Some((var, class)) => {
                        match ask_with_stats(kb, var.trim(), class.trim(), expr.trim()) {
                            Err(e) => format!("error: {e}"),
                            Ok((hits, stats)) => {
                                shell.last_ask = Some((stats.index_probes, stats.tuples_scanned));
                                if hits.is_empty() {
                                    "no answers".to_string()
                                } else {
                                    hits.join("\n")
                                }
                            }
                        }
                    }
                },
            }
        }
        "holds" => match assertion::parse(rest) {
            Err(e) => format!("error: {e}"),
            Ok(expr) => match assertion::eval(kb, &expr, &mut assertion::Env::new()) {
                Err(e) => format!("error: {e}"),
                Ok(v) => v.to_string(),
            },
        },
        "show" => match kb.lookup(rest) {
            None => format!("error: unknown object `{rest}`"),
            Some(id) => match frame_of(kb, id) {
                Err(e) => format!("error: {e}"),
                Ok(frame) => frame.to_string(),
            },
        },
        "isa" | "instances" => match BrowseSession::start(kb, rest) {
            Err(e) => format!("error: {e}"),
            Ok(session) => {
                if cmd == "isa" {
                    session.isa_tree()
                } else {
                    session.instance_tree()
                }
            }
        },
        "attrs" => match BrowseSession::start(kb, rest) {
            Err(e) => format!("error: {e}"),
            Ok(session) => session.attribute_table().render(),
        },
        "check" => {
            let (violations, stats) = check_full(kb);
            if violations.is_empty() {
                format!(
                    "consistent ({} constraints over {} classes)",
                    stats.constraints_evaluated, stats.classes_visited
                )
            } else {
                violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            }
        }
        "stats" => format!(
            "propositions: {} total, {} believed; belief tick: {}",
            kb.len(),
            kb.believed_count(),
            kb.now()
        ),
        "\\stats" => match shell.last_ask {
            None => "no ASK yet".to_string(),
            Some((probes, scanned)) => {
                format!("last ask: {probes} index probes, {scanned} tuples scanned")
            }
        },
        "\\metrics" => conceptbase::obs::render_prometheus(),
        "\\lint" => {
            if rest.is_empty() {
                "usage: \\lint <file>".to_string()
            } else {
                match std::fs::read_to_string(rest) {
                    Err(e) => format!("error: cannot read {rest}: {e}"),
                    Ok(src) => {
                        let ctx = conceptbase::analysis::LintContext::from_kb(kb);
                        let diags = conceptbase::analysis::lint_source(&src, &ctx);
                        conceptbase::analysis::render(rest, &src, &diags)
                            .trim_end()
                            .to_string()
                    }
                }
            }
        }
        // \explain [rules…] — the evaluator's join plan and cost
        // estimate for the base program, the stored rules, and any
        // extra inline rules.
        "\\explain" => {
            let ctx = conceptbase::analysis::LintContext::from_kb(kb);
            match conceptbase::analysis::explain_source(rest, &ctx) {
                Ok(plan) => plan.trim_end().to_string(),
                Err(e) => format!("error: {e}"),
            }
        }
        other => format!("unknown command `{other}` (try `help`)"),
    };
    Some(out)
}

/// Executes one command against a remote server; `None` on `quit`.
fn dispatch_remote(client: &mut Client, session: u64, line: &str) -> Option<String> {
    let line = line.trim();
    let (cmd, rest) = match line.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None => (line, ""),
    };
    let text = |r: Result<String, ClientError>| match r {
        Ok(t) => t,
        Err(e) => format!("error: {e}"),
    };
    // The session's reads are pinned at its watermark; refresh after a
    // successful write so the shell user sees their own work.
    let write_then_refresh = |client: &mut Client, r: Result<String, ClientError>| match r {
        Ok(t) => {
            let _ = client.refresh(session);
            t
        }
        Err(e) => format!("error: {e}"),
    };
    let out = match cmd {
        "" => String::new(),
        "quit" | "exit" => {
            let _ = client.bye(session);
            return None;
        }
        "help" => "commands: tell untell ask holds show refresh history status \\stats \
                   \\metrics \\lint \\explain \\view \\viewask \\recall \\checkpoint \
                   \\replstatus \\promote save load shutdown quit"
            .to_string(),
        "tell" => {
            let r = client.tell(session, &format!("TELL {rest}"));
            write_then_refresh(client, r)
        }
        "untell" => {
            let r = client.untell(session, rest);
            write_then_refresh(client, r)
        }
        "ask" => match rest.split_once(':') {
            None => "usage: ask <var>/<class> : <expr>".to_string(),
            Some((binding, expr)) => match binding.trim().split_once('/') {
                None => "usage: ask <var>/<class> : <expr>".to_string(),
                Some((var, class)) => {
                    match client.ask(session, var.trim(), class.trim(), expr.trim()) {
                        Err(e) => format!("error: {e}"),
                        Ok(reply) if reply.answers.is_empty() => "no answers".to_string(),
                        Ok(reply) => reply.answers.join("\n"),
                    }
                }
            },
        },
        "holds" => match client.holds(session, rest) {
            Err(e) => format!("error: {e}"),
            Ok(v) => v.to_string(),
        },
        "show" => text(client.show(session, rest)),
        "refresh" => text(client.refresh(session)),
        "history" => text(client.history(session)),
        "status" => text(client.status(session)),
        "save" => text(client.save(session, rest)),
        "\\checkpoint" | "checkpoint" => text(client.checkpoint(session)),
        "load" => {
            let r = client.load(session, rest);
            write_then_refresh(client, r)
        }
        "shutdown" => text(client.shutdown_server(session)),
        "stats" | "\\stats" => match client.session_stats(session) {
            Err(e) => format!("error: {e}"),
            Ok(s) => format!(
                "session {}: watermark {}, kb tick {}, {} requests, {} believed; \
                 last ask: {} index probes, {} tuples scanned",
                s.session, s.watermark, s.kb_now, s.requests, s.believed, s.probes, s.scanned
            ),
        },
        "\\metrics" => text(client.metrics()),
        "\\promote" | "promote" => text(client.promote(session)),
        "\\replstatus" | "replstatus" => match client.repl_status() {
            Err(e) => format!("error: {e}"),
            Ok(s) if s.is_leader => {
                format!("leader: epoch {}, {} op(s) applied", s.epoch, s.applied_seq)
            }
            Ok(s) => format!(
                "replica of {} ({}): epoch {}, applied {} of {} ({} behind)",
                s.leader,
                if s.connected {
                    "connected"
                } else {
                    "disconnected"
                },
                s.epoch,
                s.applied_seq,
                s.leader_seq,
                s.lag()
            ),
        },
        "\\lint" => {
            if rest.is_empty() {
                "usage: \\lint <file>".to_string()
            } else {
                match std::fs::read_to_string(rest) {
                    Err(e) => format!("error: cannot read {rest}: {e}"),
                    Ok(src) => match client.lint(session, &src) {
                        Err(e) => format!("error: {e}"),
                        Ok(diags) => render_wire_diags(rest, &diags),
                    },
                }
            }
        }
        // \explain [rules…] — the server-side join plan and cost
        // estimate (the `Explain` wire op).
        "\\explain" | "explain" => text(client.explain(session, rest)),
        // \view <name> [: <datalog rules>] — register a maintained view.
        "\\view" | "view" => {
            let (name, rules) = match rest.split_once(':') {
                Some((n, r)) => (n.trim(), r.trim()),
                None => (rest, ""),
            };
            if name.is_empty() {
                "usage: \\view <name> [: <rules>]".to_string()
            } else {
                let r = client.register_view(session, name, rules);
                write_then_refresh(client, r)
            }
        }
        // \viewask <name> <pred> — read one predicate of a view.
        "\\viewask" | "viewask" => match rest.split_once(char::is_whitespace) {
            None => "usage: \\viewask <name> <pred>".to_string(),
            Some((name, pred)) => match client.view_ask(session, name.trim(), pred.trim()) {
                Err(e) => format!("error: {e}"),
                Ok(rows) if rows.is_empty() => "no tuples".to_string(),
                Ok(rows) => rows.join("\n"),
            },
        },
        // \recall <decision> [limit] — structurally similar precedents.
        "\\recall" | "recall" => {
            let (name, limit) = match rest.split_once(char::is_whitespace) {
                Some((n, l)) => (n.trim(), l.trim().parse().unwrap_or(10)),
                None => (rest, 10),
            };
            if name.is_empty() {
                "usage: \\recall <decision> [limit]".to_string()
            } else {
                match client.recall(session, name, limit) {
                    Err(e) => format!("error: {e}"),
                    Ok(hits) if hits.is_empty() => "no similar decisions".to_string(),
                    Ok(hits) => hits
                        .iter()
                        .map(|(d, score, retracted)| {
                            let mark = if *retracted { "  (retracted)" } else { "" };
                            format!("{d}  {score:.3}{mark}")
                        })
                        .collect::<Vec<_>>()
                        .join("\n"),
                }
            }
        }
        other => format!("unknown command `{other}` (try `help`)"),
    };
    Some(out)
}

/// Renders the server's lint verdict, one diagnostic per line plus a
/// summary, mirroring the offline `cblint` one-line form.
fn render_wire_diags(origin: &str, diags: &[conceptbase::server::WireDiagnostic]) -> String {
    let mut lines: Vec<String> = diags
        .iter()
        .map(|d| match d.line {
            Some(n) => format!("{origin}:{n}: {}", d.one_line()),
            None => format!("{origin}: {}", d.one_line()),
        })
        .collect();
    let errors = diags.iter().filter(|d| d.is_error).count();
    lines.push(format!(
        "{origin}: {} error(s), {} warning(s)",
        errors,
        diags.len() - errors
    ));
    lines.join("\n")
}

/// Accumulates lines of a multi-line `tell … end` command.
fn needs_more(buffer: &str) -> bool {
    let mut words = buffer.split_whitespace();
    let first = words.next().unwrap_or("");
    // The frame is complete only when `end` stands as its own word
    // (identifiers like `Friend` must not terminate accumulation).
    first == "tell" && buffer.split_whitespace().next_back() != Some("end")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--listen") => {
            let opts = ListenOpts::parse(&args[1..])?;
            return listen(&opts);
        }
        Some("--connect") => {
            let addr = args
                .get(1)
                .ok_or("usage: cbshell --connect <host:port>")?
                .clone();
            return connect(&addr);
        }
        _ => {}
    }
    let kb = match args.first() {
        Some(path) => Kb::with_backend(KbBackend::log(path)?)?,
        None => Kb::new(),
    };
    let mut shell = Shell { kb, last_ask: None };
    let interactive = atty_guess();
    if interactive {
        println!("ConceptBase-rs shell — `help` for commands, `quit` to leave.");
    }
    let had_error = repl(interactive, |line| dispatch(&mut shell, line))?;
    shell.kb.sync()?;
    script_exit(interactive, had_error)
}

/// `--listen` options: address plus durability knobs.
struct ListenOpts {
    addr: String,
    journal: Option<std::path::PathBuf>,
    fsync: conceptbase::gkbms::FsyncPolicy,
    checkpoint_every: Option<u64>,
    strict_lint: bool,
    follow: Option<String>,
    max_lag: Option<u64>,
}

impl ListenOpts {
    /// Parses everything after `--listen`: an optional bare address
    /// followed by `--journal <dir>`, `--fsync <policy>`,
    /// `--checkpoint-every <n>`, `--strict-lint`, `--follow <addr>`
    /// and `--max-lag <n>` in any order.
    fn parse(args: &[String]) -> Result<ListenOpts, String> {
        let mut opts = ListenOpts {
            addr: "127.0.0.1:4711".to_string(),
            journal: None,
            fsync: Config::default().fsync,
            checkpoint_every: None,
            strict_lint: false,
            follow: None,
            max_lag: None,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--journal" => opts.journal = Some(value("--journal")?.into()),
                "--fsync" => {
                    let v = value("--fsync")?;
                    opts.fsync = conceptbase::gkbms::FsyncPolicy::parse(&v)
                        .map_err(|e| format!("--fsync: {e}"))?;
                }
                "--checkpoint-every" => {
                    let v = value("--checkpoint-every")?;
                    opts.checkpoint_every = Some(
                        v.parse()
                            .map_err(|_| format!("bad --checkpoint-every `{v}`"))?,
                    );
                }
                "--strict-lint" => opts.strict_lint = true,
                "--follow" => opts.follow = Some(value("--follow")?),
                "--max-lag" => {
                    let v = value("--max-lag")?;
                    opts.max_lag = Some(v.parse().map_err(|_| format!("bad --max-lag `{v}`"))?);
                }
                other if other.starts_with("--") => {
                    return Err(format!("unknown --listen flag `{other}`"));
                }
                addr => opts.addr = addr.to_string(),
            }
        }
        Ok(opts)
    }
}

/// Serves a GKBMS on the configured address until a client sends
/// `shutdown`. With `--journal` the state recovers from (and journals
/// into) the given directory; otherwise it is fresh and in-memory.
fn listen(opts: &ListenOpts) -> Result<(), Box<dyn std::error::Error>> {
    let state = match &opts.journal {
        Some(dir) => {
            let (g, report) = conceptbase::gkbms::Gkbms::recover(dir)?;
            println!(
                "gkbms: recovered from {} (snapshot: {}, {} WAL op(s) replayed in {:?})",
                dir.display(),
                if report.snapshot_loaded { "yes" } else { "no" },
                report.replayed_ops,
                report.elapsed
            );
            if report.skipped_ops > 0 {
                println!(
                    "gkbms: completed an interrupted checkpoint ({} covered WAL op(s) dropped)",
                    report.skipped_ops
                );
            }
            g
        }
        None => conceptbase::gkbms::Gkbms::new()?,
    };
    let cfg = Config {
        fsync: opts.fsync,
        checkpoint_every: opts.checkpoint_every,
        strict_lint: opts.strict_lint,
        follow: opts.follow.clone(),
        max_lag: opts.max_lag,
        ..Config::default()
    };
    let server = Server::bind(opts.addr.as_str(), state, cfg)?;
    if let Some(leader) = &opts.follow {
        println!("gkbms: replica of {leader}");
    }
    println!("gkbms: listening on {}", server.local_addr());
    server.join()?;
    println!("gkbms: stopped");
    Ok(())
}

/// Connects to a server and runs the shell loop against it.
fn connect(addr: &str) -> Result<(), Box<dyn std::error::Error>> {
    let mut client = Client::connect(addr)?;
    let (session, watermark) = client
        .hello()
        .map_err(|e| format!("handshake failed: {e}"))?;
    let interactive = atty_guess();
    if interactive {
        println!("connected to {addr} — session {session}, snapshot at tick {watermark}");
    }
    let had_error = repl(interactive, |line| {
        dispatch_remote(&mut client, session, line)
    })?;
    script_exit(interactive, had_error)
}

/// The line loop shared by local and connected modes. Returns whether
/// any command produced an `error:` response.
fn repl(
    interactive: bool,
    mut dispatch_one: impl FnMut(&str) -> Option<String>,
) -> Result<bool, Box<dyn std::error::Error>> {
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    let mut buffer = String::new();
    let mut had_error = false;
    loop {
        if interactive {
            print!("{}", if buffer.is_empty() { "cb> " } else { "...> " });
            out.flush()?;
        }
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        buffer.push_str(&line);
        if needs_more(&buffer) {
            continue;
        }
        let complete = std::mem::take(&mut buffer);
        match dispatch_one(&complete) {
            None => break,
            Some(response) => {
                if response.starts_with("error:") || response.starts_with("unknown command") {
                    had_error = true;
                }
                if !response.is_empty() {
                    println!("{response}");
                }
            }
        }
    }
    Ok(had_error)
}

/// Scripted runs (stdin redirected) exit non-zero on any error so CI
/// can assert on piped scripts; interactive sessions always exit 0.
fn script_exit(interactive: bool, had_error: bool) -> Result<(), Box<dyn std::error::Error>> {
    if !interactive && had_error {
        std::process::exit(1);
    }
    Ok(())
}

/// Conservative interactivity guess without a TTY crate: assume
/// non-interactive when stdin is redirected (heuristic via env).
fn atty_guess() -> bool {
    std::env::var("CBSHELL_BANNER")
        .map(|v| v == "1")
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_shell() -> Shell {
        let mut shell = Shell {
            kb: Kb::new(),
            last_ask: None,
        };
        for cmd in [
            "tell Person end",
            "tell Paper end",
            "tell Invitation isA Paper end",
            "tell inv1 in Invitation end",
        ] {
            dispatch(&mut shell, cmd).unwrap();
        }
        shell
    }

    #[test]
    fn tell_and_show() {
        let mut shell = seeded_shell();
        let shown = dispatch(&mut shell, "show Invitation").unwrap();
        assert!(shown.contains("isA Paper"));
        let r = dispatch(&mut shell, "tell x in Ghost end").unwrap();
        assert!(r.starts_with("error"));
    }

    #[test]
    fn ask_and_holds() {
        let mut shell = seeded_shell();
        let hits = dispatch(&mut shell, "ask p/Paper : true").unwrap();
        assert_eq!(hits, "inv1");
        assert_eq!(dispatch(&mut shell, "holds inv1 in Paper").unwrap(), "true");
        assert_eq!(
            dispatch(&mut shell, "holds inv1 in Person").unwrap(),
            "false"
        );
        assert!(dispatch(&mut shell, "ask nonsense")
            .unwrap()
            .starts_with("usage"));
    }

    #[test]
    fn browse_commands() {
        let mut shell = seeded_shell();
        let isa = dispatch(&mut shell, "isa Paper").unwrap();
        assert!(isa.contains("`- Invitation"));
        let inst = dispatch(&mut shell, "instances Paper").unwrap();
        assert!(inst.contains("inv1"));
        assert!(dispatch(&mut shell, "attrs Invitation")
            .unwrap()
            .contains("attribute"));
    }

    #[test]
    fn untell_check_stats() {
        let mut shell = seeded_shell();
        assert!(dispatch(&mut shell, "check")
            .unwrap()
            .starts_with("consistent"));
        let r = dispatch(&mut shell, "untell inv1").unwrap();
        assert!(r.starts_with("ok"));
        assert!(dispatch(&mut shell, "stats").unwrap().contains("believed"));
        assert!(dispatch(&mut shell, "untell inv1")
            .unwrap()
            .starts_with("error"));
    }

    #[test]
    fn backslash_stats_tracks_last_ask() {
        let mut shell = seeded_shell();
        assert_eq!(dispatch(&mut shell, "\\stats").unwrap(), "no ASK yet");
        dispatch(&mut shell, "ask p/Paper : true").unwrap();
        let stats = dispatch(&mut shell, "\\stats").unwrap();
        assert!(stats.contains("index probes"), "{stats}");
        assert!(stats.contains("tuples scanned"), "{stats}");
        assert!(
            !stats.contains(" 0 index probes"),
            "deductive ask must probe indexes: {stats}"
        );
    }

    #[test]
    fn quit_and_unknown() {
        let mut shell = seeded_shell();
        assert!(dispatch(&mut shell, "quit").is_none());
        assert!(dispatch(&mut shell, "frobnicate")
            .unwrap()
            .contains("unknown command"));
        assert_eq!(dispatch(&mut shell, "").unwrap(), "");
    }

    #[test]
    fn multiline_accumulation() {
        assert!(needs_more("tell Invitation isA Paper with"));
        assert!(
            needs_more("tell x in Friend"),
            "identifiers ending in 'end' must not terminate the frame"
        );
        assert!(!needs_more("tell x in Friend end"));
        assert!(!needs_more(
            "tell Invitation isA Paper with attribute s : P end"
        ));
        assert!(!needs_more("ask p/Paper : true"));
    }

    #[test]
    fn remote_shell_roundtrip() {
        let state = conceptbase::gkbms::Gkbms::new().unwrap();
        let server = Server::bind("127.0.0.1:0", state, Config::default()).unwrap();
        let addr = server.local_addr();
        let mut client = Client::connect(addr).unwrap();
        let (session, _) = client.hello().unwrap();
        let r = dispatch_remote(&mut client, session, "tell Paper end").unwrap();
        assert!(r.starts_with("told"), "{r}");
        let r = dispatch_remote(&mut client, session, "tell p1 in Paper end").unwrap();
        assert!(r.starts_with("told"), "{r}");
        let hits = dispatch_remote(&mut client, session, "ask p/Paper : true").unwrap();
        assert_eq!(hits, "p1");
        let stats = dispatch_remote(&mut client, session, "\\stats").unwrap();
        assert!(stats.contains("index probes"), "{stats}");
        let bad = dispatch_remote(&mut client, session, "ask x/Ghost : true").unwrap();
        assert!(bad.starts_with("error:"), "{bad}");
        assert!(dispatch_remote(&mut client, session, "quit").is_none());
        server.shutdown().unwrap();
    }

    #[test]
    fn listen_opts_parse_flags() {
        let opts = ListenOpts::parse(&[]).unwrap();
        assert_eq!(opts.addr, "127.0.0.1:4711");
        assert!(opts.journal.is_none());
        assert!(opts.checkpoint_every.is_none());

        let args: Vec<String> = [
            "127.0.0.1:9999",
            "--journal",
            "/tmp/kbdir",
            "--fsync",
            "group:5",
            "--checkpoint-every",
            "1000",
            "--follow",
            "127.0.0.1:4711",
            "--max-lag",
            "64",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = ListenOpts::parse(&args).unwrap();
        assert_eq!(opts.addr, "127.0.0.1:9999");
        assert_eq!(opts.follow.as_deref(), Some("127.0.0.1:4711"));
        assert_eq!(opts.max_lag, Some(64));
        assert_eq!(
            opts.journal.as_deref(),
            Some(std::path::Path::new("/tmp/kbdir"))
        );
        assert_eq!(
            opts.fsync,
            conceptbase::gkbms::FsyncPolicy::Group(std::time::Duration::from_millis(5))
        );
        assert_eq!(opts.checkpoint_every, Some(1000));

        assert!(ListenOpts::parse(&["--fsync".to_string(), "bogus".to_string()]).is_err());
        assert!(ListenOpts::parse(&["--journal".to_string()]).is_err());
        assert!(ListenOpts::parse(&["--frob".to_string()]).is_err());
        assert!(ListenOpts::parse(&["--follow".to_string()]).is_err());
        assert!(ListenOpts::parse(&["--max-lag".to_string(), "lots".to_string()]).is_err());
        assert!(ListenOpts::parse(&[]).unwrap().follow.is_none());
        assert!(ListenOpts::parse(&[]).unwrap().max_lag.is_none());

        assert!(!ListenOpts::parse(&[]).unwrap().strict_lint);
        assert!(
            ListenOpts::parse(&["--strict-lint".to_string()])
                .unwrap()
                .strict_lint
        );
    }

    #[test]
    fn remote_checkpoint_against_journaled_server() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("cb-shell-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (state, _) = conceptbase::gkbms::Gkbms::recover(&dir).unwrap();
        let server = Server::bind("127.0.0.1:0", state, Config::default()).unwrap();
        let addr = server.local_addr();
        let mut client = Client::connect(addr).unwrap();
        let (session, _) = client.hello().unwrap();
        let r = dispatch_remote(&mut client, session, "tell Paper end").unwrap();
        assert!(r.starts_with("told"), "{r}");
        let r = dispatch_remote(&mut client, session, "\\checkpoint").unwrap();
        assert!(r.contains("compacted"), "{r}");
        server.shutdown().unwrap();
        assert!(dir.join("snapshot").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lint_command_local_and_remote() {
        let mut path = std::env::temp_dir();
        path.push(format!("cb-shell-lint-{}.dl", std::process::id()));
        std::fs::write(&path, "% query: p\np(X) :- q(X, Y), not r(Y, Z).\n").unwrap();
        let file = path.to_str().unwrap().to_string();

        let mut shell = seeded_shell();
        let local = dispatch(&mut shell, &format!("\\lint {file}")).unwrap();
        assert!(local.contains("error[CB001]"), "{local}");
        assert!(
            dispatch(&mut shell, "\\lint").unwrap().starts_with("usage"),
            "bare \\lint needs a usage hint"
        );

        let state = conceptbase::gkbms::Gkbms::new().unwrap();
        let server = Server::bind("127.0.0.1:0", state, Config::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let (session, _) = client.hello().unwrap();
        let remote = dispatch_remote(&mut client, session, &format!("\\lint {file}")).unwrap();
        assert!(remote.contains("error[CB001]"), "{remote}");
        assert!(remote.contains("error(s)"), "{remote}");
        server.shutdown().unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn explain_command_local_and_remote() {
        let mut shell = seeded_shell();
        let local = dispatch(&mut shell, "\\explain").unwrap();
        assert!(local.contains("estimated cost"), "{local}");
        assert!(local.contains("inT"), "{local}");
        let with_rules = dispatch(&mut shell, "\\explain reach(X, Y) :- attr(X, n, Y).").unwrap();
        assert!(with_rules.contains("reach"), "{with_rules}");
        let bad = dispatch(&mut shell, "\\explain p(X) :- q(X").unwrap();
        assert!(bad.starts_with("error"), "{bad}");

        let state = conceptbase::gkbms::Gkbms::new().unwrap();
        let server = Server::bind("127.0.0.1:0", state, Config::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let (session, _) = client.hello().unwrap();
        let remote = dispatch_remote(&mut client, session, "\\explain").unwrap();
        assert!(remote.contains("estimated cost"), "{remote}");
        let bad = dispatch_remote(&mut client, session, "\\explain p(X) :- q(X").unwrap();
        assert!(bad.starts_with("error"), "{bad}");
        server.shutdown().unwrap();
    }

    #[test]
    fn view_commands_remote() {
        let state = conceptbase::gkbms::Gkbms::new().unwrap();
        let server = Server::bind("127.0.0.1:0", state, Config::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let (session, _) = client.hello().unwrap();
        dispatch_remote(&mut client, session, "tell Paper end").unwrap();
        let r = dispatch_remote(&mut client, session, "\\view closure").unwrap();
        assert!(r.contains("registered view"), "{r}");
        let dup = dispatch_remote(&mut client, session, "\\view closure").unwrap();
        assert!(dup.starts_with("error"), "{dup}");
        dispatch_remote(&mut client, session, "tell p1 in Paper end").unwrap();
        let rows = dispatch_remote(&mut client, session, "\\viewask closure inT").unwrap();
        assert!(rows.contains("p1 Paper"), "{rows}");
        assert!(dispatch_remote(&mut client, session, "\\viewask closure")
            .unwrap()
            .starts_with("usage"));
        assert!(dispatch_remote(&mut client, session, "\\view")
            .unwrap()
            .starts_with("usage"));
        server.shutdown().unwrap();
    }

    #[test]
    fn recall_command_remote() {
        use conceptbase::gkbms::synth;
        let mut state = conceptbase::gkbms::Gkbms::new().unwrap();
        let h = synth::generate_into(
            &mut state,
            &synth::SynthConfig {
                seed: 5,
                decisions: 30,
                ..synth::SynthConfig::default()
            },
        )
        .unwrap();
        assert!(h.executed() > 1, "corpus needs precedents");
        let server = Server::bind("127.0.0.1:0", state, Config::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let (session, _) = client.hello().unwrap();
        // `syn0` is always the first executed decision of a corpus.
        let out = dispatch_remote(&mut client, session, "\\recall syn0 5").unwrap();
        assert!(!out.starts_with("error"), "{out}");
        assert!(out.contains("syn"), "hits name decisions: {out}");
        assert!(
            dispatch_remote(&mut client, session, "\\recall")
                .unwrap()
                .starts_with("usage"),
            "bare \\recall needs a usage hint"
        );
        let bad = dispatch_remote(&mut client, session, "\\recall ghost").unwrap();
        assert!(bad.starts_with("error"), "{bad}");
        server.shutdown().unwrap();
    }

    #[test]
    fn local_metrics_render() {
        let mut shell = seeded_shell();
        dispatch(&mut shell, "ask p/Paper : true").unwrap();
        let text = dispatch(&mut shell, "\\metrics").unwrap();
        assert!(text.contains("# TYPE"), "{text}");
        assert!(text.contains("objectbase_asks_total"), "{text}");
    }
}
