//! ConceptBase-rs facade crate.
//!
//! Re-exports the full stack described in DESIGN.md: the storage
//! substrate, the CML/Telos proposition processor, the inference
//! engines, the object and model processors, the reason maintenance
//! system, the DAIDA language stack, and the GKBMS itself.
//!
//! See `examples/quickstart.rs` for a tour.

pub use analysis;
pub use datalog;
pub use gkbms;
pub use langs;
pub use modelbase;
pub use objectbase;
pub use obs;
pub use rms;
pub use server;
pub use storage;
pub use telos;
